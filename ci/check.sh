#!/usr/bin/env bash
# The full pre-merge gate, runnable locally or from CI:
#
#   ./ci/check.sh
#
# Steps (in order, fail-fast):
#   1. cargo fmt --check        — formatting drift
#   2. cargo clippy -D warnings — lints (unwrap_used etc.; see clippy.toml)
#   3. xtask lint               — the determinism static-analysis pass
#   4. cargo build --release    — tier-1: release build
#   5. cargo test               — tier-1: root-package tests
#   6. cargo test --workspace   — every crate's unit + integration tests
#   7. ci/trace_gate.sh         — trace determinism: two same-seed runs
#                                 byte-identical under `xtask trace diff`,
#                                 for exp04 and for exp16's fault campaign
#   7b. exp16 smoke             — one quick exp16_resilience run must
#                                 exit 0 and write all four CSVs
#   8. ci/perf_smoke.sh         — routing hot-path qps within 5x of the
#                                 committed floors, plus the exp16 event
#                                 rate covering the burned-down gnutella/
#                                 kademlia/bittorrent paths
#                                 (docs/PERFORMANCE.md)
#   9. xtask analyze            — call-graph purity/panic/registry proofs
#                                 (docs/STATIC_ANALYSIS.md) against
#                                 ci/analyze_panic_baseline.txt
#   10. xtask analyze --pass=alloc — hot-path allocation discipline against
#                                 ci/analyze_alloc_baseline.txt; its PERF
#                                 line shares the analyzer's 120s wall
#                                 budget (WallTimer-enforced in xtask)
#   11. xtask analyze --pass=par  — parallel-region discipline: every
#                                 thread-spawn site declared in
#                                 xtask::boundaries::PARALLEL_REGIONS,
#                                 workers free of undeclared determinism
#                                 hazards (docs/STATIC_ANALYSIS.md)
#   12. xtask analyze --pass=cast — truncating-cast ratchet against
#                                 ci/analyze_cast_baseline.txt; new
#                                 sim-reachable `as` narrowings fail
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

step "determinism lint (cargo run -p xtask -- lint)"
cargo run -q -p xtask -- lint

step "cargo build --release"
cargo build --release -q

step "cargo test (root package)"
cargo test -q

step "cargo test --workspace"
cargo test --workspace -q

step "trace determinism gate (ci/trace_gate.sh)"
./ci/trace_gate.sh

step "exp16 resilience smoke"
E16_OUT="$(mktemp -d)"
trap 'rm -rf "$E16_OUT"' EXIT
cargo run --release -q -p uap-bench --bin exp16_resilience -- \
  --quick --seed 42 --out "$E16_OUT" > "$E16_OUT/stdout.txt"
for csv in exp16_reachability exp16_gnutella exp16_kademlia exp16_bittorrent; do
  [ -s "$E16_OUT/$csv.csv" ] || { echo "missing $csv.csv" >&2; exit 1; }
done

step "routing perf smoke (ci/perf_smoke.sh)"
./ci/perf_smoke.sh

step "sim-purity analyzer (cargo run -p xtask -- analyze)"
cargo run -q -p xtask -- analyze

step "hot-path allocation pass (cargo run -p xtask -- analyze --pass=alloc)"
cargo run -q -p xtask -- analyze --pass=alloc

step "parallel-region discipline (cargo run -p xtask -- analyze --pass=par)"
cargo run -q -p xtask -- analyze --pass=par

step "truncating-cast ratchet (cargo run -p xtask -- analyze --pass=cast)"
cargo run -q -p xtask -- analyze --pass=cast

printf '\nAll checks passed.\n'
