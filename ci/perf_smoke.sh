#!/usr/bin/env bash
# Perf-smoke gate for the routing hot path:
#
#   ./ci/perf_smoke.sh
#
# Runs the routing microbench in quick mode and fails if the small-size
# path / transfer query rates drop more than 5x below the committed
# floors. The floors are the post-CSR/route-cache rates measured on the
# reference dev box (path ~440M qps, transfer ~90M qps); the 5x slack
# absorbs machine-to-machine and noisy-neighbor variance while still
# catching a reintroduced per-query allocation or table walk, which
# costs an order of magnitude.
#
# Also runs exp16_resilience in quick mode and gates its event rate:
# exp16 drives the gnutella flood, kademlia lookup and bittorrent swarm
# paths end-to-end, so it covers the scratch-buffer burn-down the alloc
# pass ratchets (~7.3k events/sec after the burn-down; see
# docs/PERFORMANCE.md "Allocation discipline" evidence).
#
# Also runs exp17_fault_scale in quick mode and gates the medium-size
# incremental repair rate (fault epochs repaired per second): ~8.3k
# epochs/sec measured on the reference dev box, floor 6000. A regression
# here means fault epochs silently went back to paying full all-pairs
# rebuild cost (see docs/PERFORMANCE.md "Incremental repair").
#
# Also runs exp18_congestion in quick mode and gates the max-min flow
# allocator's cycle rate (full begin/add-256-flows/allocate cycles per
# second): ~3.7k cycles/sec measured on the reference dev box, floor
# 3000. A regression here means the per-round allocation recompute grew
# a hidden quadratic or started allocating (see docs/BANDWIDTH.md).
#
# Floors are in queries/sec (routing), events/sec (exp16), repaired
# epochs/sec (exp17), and allocate cycles/sec (exp18). Update them
# (with a note in docs/PERFORMANCE.md) only when a deliberate trade-off
# changes the hot-path cost model.
set -euo pipefail
cd "$(dirname "$0")/.."

PATH_QPS_FLOOR=440000000
TRANSFER_QPS_FLOOR=90000000
EXP16_EPS_FLOOR=7000
EXP17_REPAIR_EPS_FLOOR=6000
FLOW_ALLOC_CPS_FLOOR=3000
SLACK=5

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "routing microbench (quick)"
cargo run --release -q -p uap-bench --bin bench_routing -- \
  --quick --out "$WORK" | tee "$WORK/stdout.txt"

line="$(grep '^PERF size=small ' "$WORK/stdout.txt")"
path_qps="$(sed -n 's/.* path_qps=\([0-9]*\).*/\1/p' <<<"$line")"
transfer_qps="$(sed -n 's/.* transfer_qps=\([0-9]*\).*/\1/p' <<<"$line")"

if [[ -z "$path_qps" || -z "$transfer_qps" ]]; then
  echo "FAIL: could not parse PERF line: $line" >&2
  exit 1
fi

check() { # check <label> <measured> <floor>
  local min=$(($3 / SLACK))
  if (($2 < min)); then
    echo "FAIL: $1 = $2 qps, below $min (floor $3 / ${SLACK}x slack)" >&2
    exit 1
  fi
  echo "ok: $1 = $2 qps (>= $min)"
}

check path_qps "$path_qps" "$PATH_QPS_FLOOR"
check transfer_qps "$transfer_qps" "$TRANSFER_QPS_FLOOR"

echo "exp16 resilience event-rate smoke (quick)"
cargo run --release -q -p uap-bench --bin exp16_resilience -- \
  --quick --seed 42 --out "$WORK/e16" | tee "$WORK/e16_stdout.txt"

e16_line="$(grep '^PERF exp16_resilience ' "$WORK/e16_stdout.txt")"
e16_eps="$(sed -n 's/.* events_per_sec=\([0-9]*\).*/\1/p' <<<"$e16_line")"
if [[ -z "$e16_eps" ]]; then
  echo "FAIL: could not parse PERF line: $e16_line" >&2
  exit 1
fi
check exp16_events_per_sec "$e16_eps" "$EXP16_EPS_FLOOR"

echo "exp17 fault-scale repair-throughput smoke (quick)"
cargo run --release -q -p uap-bench --bin exp17_fault_scale -- \
  --quick --seed 42 --out "$WORK/e17" | tee "$WORK/e17_stdout.txt"

e17_line="$(grep '^PERF fault_scale size=medium ' "$WORK/e17_stdout.txt")"
e17_repair_eps="$(sed -n 's/.* repair_eps=\([0-9]*\).*/\1/p' <<<"$e17_line")"
if [[ -z "$e17_repair_eps" ]]; then
  echo "FAIL: could not parse PERF line: $e17_line" >&2
  exit 1
fi
check exp17_repair_epochs_per_sec "$e17_repair_eps" "$EXP17_REPAIR_EPS_FLOOR"

echo "exp18 flow-allocator throughput smoke (quick)"
cargo run --release -q -p uap-bench --bin exp18_congestion -- \
  --quick --seed 42 --out "$WORK/e18" | tee "$WORK/e18_stdout.txt"

e18_line="$(grep '^PERF flow_alloc ' "$WORK/e18_stdout.txt")"
e18_cps="$(sed -n 's/.* allocs_per_sec=\([0-9]*\).*/\1/p' <<<"$e18_line")"
if [[ -z "$e18_cps" ]]; then
  echo "FAIL: could not parse PERF line: $e18_line" >&2
  exit 1
fi
check flow_alloc_cycles_per_sec "$e18_cps" "$FLOW_ALLOC_CPS_FLOOR"

echo "perf smoke passed."
