#!/usr/bin/env bash
# Trace-determinism gate: two same-seed runs of one experiment binary
# must produce byte-identical JSONL traces and RunReport JSON (modulo
# the wall-clock lines, which `xtask trace diff` exempts).
#
#   ./ci/trace_gate.sh [seed]
#
# Uses exp04 (Gnutella message counts) because it exercises the engine,
# the overlay, the oracle and the underlay accounting in one run.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-42}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run() { # run <dir>
  mkdir -p "$1"
  cargo run --release -q -p uap-bench --bin exp04_message_counts -- \
    --quick --seed "$SEED" --out "$1" --trace "$1/exp04.trace.jsonl" \
    > "$1/stdout.txt"
}

echo "run A (seed $SEED)"
run "$WORK/a"
echo "run B (seed $SEED)"
run "$WORK/b"

echo "trace diff (JSONL)"
cargo run --release -q -p xtask -- trace diff \
  "$WORK/a/exp04.trace.jsonl" "$WORK/b/exp04.trace.jsonl"

echo "trace diff (RunReport JSON)"
cargo run --release -q -p xtask -- trace diff \
  "$WORK/a/exp04_message_counts.report.json" \
  "$WORK/b/exp04_message_counts.report.json"

echo "trace summary"
cargo run --release -q -p xtask -- trace summary "$WORK/a/exp04.trace.jsonl"

echo "trace gate passed."
