#!/usr/bin/env bash
# Trace-determinism gate: two same-seed runs of one experiment binary
# must produce byte-identical JSONL traces and RunReport JSON (modulo
# the wall-clock lines, which `xtask trace diff` exempts).
#
#   ./ci/trace_gate.sh [seed]
#
# Uses exp04 (Gnutella message counts) because it exercises the engine,
# the overlay, the oracle and the underlay accounting in one run, and
# exp16 (resilience) because its non-empty FaultPlan drives routing
# rebuilds, route-cache invalidation and every overlay's recovery path —
# the layers most likely to smuggle nondeterminism in. exp17 (fault-scale
# repair) double-runs the incremental routing-repair path itself: its
# routing.repair events and report must be byte-identical, which pins
# dirty-source selection and the CSR splice to a deterministic order.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-42}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run() { # run <bin> <name> <dir>
  mkdir -p "$3"
  cargo run --release -q -p uap-bench --bin "$1" -- \
    --quick --seed "$SEED" --out "$3" --trace "$3/$2.trace.jsonl" \
    > "$3/stdout.txt"
}

gate() { # gate <bin> <name>
  echo "run A ($1, seed $SEED)"
  run "$1" "$2" "$WORK/$2/a"
  echo "run B ($1, seed $SEED)"
  run "$1" "$2" "$WORK/$2/b"

  echo "trace diff (JSONL)"
  cargo run --release -q -p xtask -- trace diff \
    "$WORK/$2/a/$2.trace.jsonl" "$WORK/$2/b/$2.trace.jsonl"

  echo "trace diff (RunReport JSON)"
  cargo run --release -q -p xtask -- trace diff \
    "$WORK/$2/a/$1.report.json" \
    "$WORK/$2/b/$1.report.json"

  echo "trace summary"
  cargo run --release -q -p xtask -- trace summary "$WORK/$2/a/$2.trace.jsonl"

  echo "trace check (causal integrity)"
  cargo run --release -q -p xtask -- trace check "$WORK/$2/a/$2.trace.jsonl"
  cargo run --release -q -p xtask -- trace check "$WORK/$2/b/$2.trace.jsonl"
}

gate exp04_message_counts exp04

gate exp16_resilience exp16

# The fault campaign must actually fire in the gated run.
if ! grep -q '"k":"fault.epoch"' "$WORK/exp16/a/exp16.trace.jsonl"; then
  echo "exp16 trace contains no fault.epoch events — FaultPlan not applied" >&2
  exit 1
fi

# The streaming sink must produce byte-identical output to the buffered
# sink (same binary, same seed, write-through instead of in-memory).
echo "streaming sink byte identity (exp16)"
mkdir -p "$WORK/exp16/s"
cargo run --release -q -p uap-bench --bin exp16_resilience -- \
  --quick --seed "$SEED" --out "$WORK/exp16/s" \
  --trace "$WORK/exp16/s/exp16.trace.jsonl" --trace-stream \
  > "$WORK/exp16/s/stdout.txt"
cmp "$WORK/exp16/a/exp16.trace.jsonl" "$WORK/exp16/s/exp16.trace.jsonl"

echo "trace spans (exp16)"
cargo run --release -q -p xtask -- trace spans "$WORK/exp16/a/exp16.trace.jsonl"

# Provenance smoke: a download.retry must explain back to a fault.epoch
# root — the causal chain the fault campaign exists to exercise.
echo "trace explain (exp16 download.retry provenance)"
RETRY_SEQ="$(grep -m1 '"k":"download.retry"' "$WORK/exp16/a/exp16.trace.jsonl" \
  | sed -E 's/^\{"seq":([0-9]+).*/\1/')"
if [ -z "$RETRY_SEQ" ]; then
  echo "exp16 trace contains no download.retry events — recovery path not exercised" >&2
  exit 1
fi
EXPLAIN="$(cargo run --release -q -p xtask -- trace explain \
  "$WORK/exp16/a/exp16.trace.jsonl" "$RETRY_SEQ")"
echo "$EXPLAIN"
if ! echo "$EXPLAIN" | grep -q 'fault.epoch'; then
  echo "download.retry seq $RETRY_SEQ does not trace back to a fault.epoch root" >&2
  exit 1
fi

gate exp17_fault_scale exp17

# The incremental-repair path must actually fire in the gated run.
if ! grep -q '"k":"routing.repair"' "$WORK/exp17/a/exp17.trace.jsonl"; then
  echo "exp17 trace contains no routing.repair events — repair path not exercised" >&2
  exit 1
fi

gate exp18_congestion exp18

# The flow allocator must actually back the swarm transfers in the gated
# run: per-round flow-set deltas appear as flow.open/flow.close events.
if ! grep -q '"k":"flow.open"' "$WORK/exp18/a/exp18.trace.jsonl"; then
  echo "exp18 trace contains no flow.open events — flow model not exercised" >&2
  exit 1
fi

echo "trace gate passed."
