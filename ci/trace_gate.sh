#!/usr/bin/env bash
# Trace-determinism gate: two same-seed runs of one experiment binary
# must produce byte-identical JSONL traces and RunReport JSON (modulo
# the wall-clock lines, which `xtask trace diff` exempts).
#
#   ./ci/trace_gate.sh [seed]
#
# Uses exp04 (Gnutella message counts) because it exercises the engine,
# the overlay, the oracle and the underlay accounting in one run, and
# exp16 (resilience) because its non-empty FaultPlan drives routing
# rebuilds, route-cache invalidation and every overlay's recovery path —
# the layers most likely to smuggle nondeterminism in.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-42}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run() { # run <bin> <name> <dir>
  mkdir -p "$3"
  cargo run --release -q -p uap-bench --bin "$1" -- \
    --quick --seed "$SEED" --out "$3" --trace "$3/$2.trace.jsonl" \
    > "$3/stdout.txt"
}

gate() { # gate <bin> <name>
  echo "run A ($1, seed $SEED)"
  run "$1" "$2" "$WORK/$2/a"
  echo "run B ($1, seed $SEED)"
  run "$1" "$2" "$WORK/$2/b"

  echo "trace diff (JSONL)"
  cargo run --release -q -p xtask -- trace diff \
    "$WORK/$2/a/$2.trace.jsonl" "$WORK/$2/b/$2.trace.jsonl"

  echo "trace diff (RunReport JSON)"
  cargo run --release -q -p xtask -- trace diff \
    "$WORK/$2/a/$1.report.json" \
    "$WORK/$2/b/$1.report.json"

  echo "trace summary"
  cargo run --release -q -p xtask -- trace summary "$WORK/$2/a/$2.trace.jsonl"
}

gate exp04_message_counts exp04

gate exp16_resilience exp16

# The fault campaign must actually fire in the gated run.
if ! grep -q '"k":"fault.epoch"' "$WORK/exp16/a/exp16.trace.jsonl"; then
  echo "exp16 trace contains no fault.epoch events — FaultPlan not applied" >&2
  exit 1
fi

echo "trace gate passed."
