//! Offline drop-in subset of the `bytes` crate.
//!
//! Backed by plain `Vec<u8>` with an offset cursor instead of refcounted
//! shared buffers — the wire codecs in this workspace only need the
//! reader/writer API, not zero-copy performance.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: s.to_vec(),
            start: 0,
        }
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-buffer of the remaining bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x + 1,
            Bound::Excluded(&x) => x,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.as_slice()[lo..hi].to_vec(),
            start: 0,
        }
    }

    /// Splits off and returns the first `n` remaining bytes, advancing
    /// this buffer past them.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to past end");
        let head = self.as_slice()[..n].to_vec();
        self.start += n;
        Bytes {
            data: head,
            start: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, start: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Reader interface over a consuming buffer.
pub trait Buf {
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Fills `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for Bytes {
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let b = self.take(2);
        u16::from_le_bytes([b[0], b[1]])
    }

    fn get_u32(&mut self) -> u32 {
        let b = self.take(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    fn get_u32_le(&mut self) -> u32 {
        let b = self.take(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take(dst.len());
        dst.copy_from_slice(src);
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Writer interface over a growable buffer.
pub trait BufMut {
    /// Writes one byte.
    fn put_u8(&mut self, v: u8);
    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u32(0xAABBCCDD);
        w.put_u32_le(0x11223344);
        w.put_slice(b"xyz");
        assert_eq!(w.len(), 1 + 2 + 4 + 4 + 3);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32(), 0xAABBCCDD);
        assert_eq!(r.get_u32_le(), 0x11223344);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn split_and_slice() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*b, &[3, 4, 5]);
        let s = b.slice(..2);
        assert_eq!(&*s, &[3, 4]);
        assert_eq!(b.len(), 3, "slice must not consume");
    }
}
