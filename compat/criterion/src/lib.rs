//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container has no registry access, so the real criterion cannot be
//! resolved; this stub implements exactly the surface the workspace's
//! benches use — [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size` / `warm_up_time` / `measurement_time` / `finish`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement loop
//! (median of `sample_size` samples). It reports timings to stdout but
//! produces no HTML reports and does no statistical regression analysis.
//!
//! Wall-clock time here is fine: benches measure the host, they are not
//! part of the deterministic simulation (and `compat/` is outside the
//! determinism lint's scan set for exactly this reason).

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration timing callback handle, passed to the bench closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a batch of iterations, accumulating into the sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

fn run_one(id: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // which also gives a per-iteration time estimate.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += 1;
    }
    let est = warm_elapsed
        .checked_div(warm_iters as u32)
        .unwrap_or_default();
    // Size each sample so all samples together roughly fill the
    // measurement budget.
    let per_sample = settings.measurement_time.as_nanos() / settings.sample_size.max(1) as u128;
    let iters = if est.as_nanos() == 0 {
        1
    } else {
        (per_sample / est.as_nanos()).clamp(1, 1_000_000) as u64
    };
    let mut samples: Vec<Duration> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        samples.push(b.elapsed.checked_div(iters as u32).unwrap_or_default());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{id:<40} time: [{lo:>10.2?} {median:>10.2?} {hi:>10.2?}]  ({iters} iter/sample)");
}

/// The benchmark driver. One instance is threaded through every
/// registered bench function by [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &self.settings, &mut f);
        self
    }

    /// Opens a named group of benchmarks sharing measurement settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A group of benchmarks with shared (overridable) settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up budget before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &self.settings, &mut f);
        self
    }

    /// Ends the group (a no-op in this stub; exists for API parity).
    pub fn finish(self) {}
}

/// Bundles bench functions under one group name, mirroring criterion's
/// macro of the same name (simple `(name, targets…)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main`, running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.benchmark_group("demo")
            .sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
