//! Offline drop-in subset of the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which postdates
//! crossbeam's scoped-thread API).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// A scope handle; closures passed to [`Scope::spawn`] receive a fresh
    /// reference to it, mirroring crossbeam's signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing local state can be
    /// spawned; all are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic here
    /// instead of surfacing it through the returned `Result` (std's scope
    /// semantics); callers that `.expect()` the result see the same
    /// abort-on-panic behaviour either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }
}
