//! Offline drop-in subset of the `parking_lot` crate.
//!
//! [`Mutex`] wraps `std::sync::Mutex`, exposing parking_lot's
//! poison-free API: `lock()` returns the guard directly and a poisoned
//! std mutex is transparently recovered (parking_lot has no poisoning).

#![forbid(unsafe_code)]

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
