//! Offline drop-in subset of the `proptest` crate.
//!
//! Implements the slice of proptest's API this workspace's property tests
//! use: the [`proptest!`] macro, range/tuple/`Just`/`any`/vec/char-class
//! string strategies, `prop_map`, [`prop_oneof!`], the `prop_assert_*`
//! macros, and `prop_assume!`. Differences from upstream:
//!
//! * **Deterministic cases.** Each test function derives its case RNG from
//!   a fixed seed and the case index — no env-dependent entropy, so a
//!   failing case reproduces unconditionally. (Upstream persists failing
//!   seeds to a regressions file instead.)
//! * **No shrinking.** A failing case reports its values via `Debug` in
//!   the assertion message where the test supplies one.

#![forbid(unsafe_code)]

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`; panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs (upstream `proptest::test_runner::Config`).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// Generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A value generator (upstream `proptest::strategy::Strategy`, minus
    /// shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    // A strategy behind any pointer is a strategy (upstream has the same
    // blanket impls; needed so `prop_oneof!` can box heterogeneous arms).
    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    /// Char-class regex strings: `"[class]{lo,hi}"` (the only regex form
    /// the workspace's tests use) generates strings of `lo..=hi` chars
    /// drawn from the class. Ranges (`a-z`) and literals are supported.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (class, lo, hi) = parse_char_class(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
        let bad = || -> ! {
            panic!(
                "unsupported regex strategy {pattern:?}: only \"[class]{{lo,hi}}\" is implemented"
            )
        };
        let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad());
        let close = rest.find(']').unwrap_or_else(|| bad());
        let (class_src, tail) = rest.split_at(close);
        let tail = tail
            .strip_prefix(']')
            .and_then(|t| t.strip_prefix('{'))
            .and_then(|t| t.strip_suffix('}'))
            .unwrap_or_else(|| bad());
        let (lo, hi) = match tail.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok(), h.trim().parse().ok()),
            None => (tail.trim().parse().ok(), tail.trim().parse().ok()),
        };
        let (lo, hi) = match (lo, hi) {
            (Some(l), Some(h)) if l <= h => (l, h),
            _ => bad(),
        };
        let mut class = Vec::new();
        let chars: Vec<char> = class_src.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                assert!(a <= b, "bad char range in {pattern:?}");
                for c in a..=b {
                    class.push(c);
                }
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        assert!(!class.is_empty(), "empty char class in {pattern:?}");
        (class, lo, hi)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Whole-type generation ([`any`]).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// Strategy over a type's full value range.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (upstream `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            lo: len.start,
            hi: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Upstream-compatible `prop::` paths (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Sentinel message marking a rejected (assumed-away) case.
#[doc(hidden)]
pub const REJECT_SENTINEL: &str = "__proptest_compat_reject__";

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::REJECT_SENTINEL.to_string());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Declares property tests (upstream `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Stable per-test seed: the function name hashed FNV-1a.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                let mut rejected = 0u32;
                let mut case = 0u32;
                while case < config.cases {
                    let mut proptest_rng =
                        $crate::TestRng::new(seed ^ ((case as u64 + rejected as u64) << 32));
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut proptest_rng);)+
                    let outcome: ::core::result::Result<(), String> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err(e) if e == $crate::REJECT_SENTINEL => {
                            rejected += 1;
                            assert!(
                                rejected < 1_000,
                                "{}: too many rejected cases (prop_assume)",
                                stringify!($name)
                            );
                        }
                        Err(e) => panic!("{} failed at case {case}: {e}", stringify!($name)),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 3u32..10, v in prop::collection::vec(0u64..5, 1..8)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn maps_and_unions(p in prop_oneof![
            Just(0u64),
            (1u64..5, 1u64..5).prop_map(|(a, b)| a * b),
        ]) {
            prop_assert!(p == 0 || (1u64..25).contains(&p));
        }

        #[test]
        fn string_classes(s in "[a-c0-1]{2,6}") {
            prop_assert!((2..=6).contains(&s.len()));
            prop_assert!(s.chars().all(|c| "abc01".contains(c)));
        }

        #[test]
        fn assume_rejects(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn runs_the_generated_tests() {
        ranges_and_vecs();
        maps_and_unions();
        string_classes();
        assume_rejects();
    }
}
