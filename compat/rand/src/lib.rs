//! Offline drop-in subset of the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of `rand`'s API it actually uses: a seedable
//! [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — statistically solid and, crucially for this workspace,
//! **deterministic**: the stream is a pure function of the `u64` seed on
//! every platform. Stream values differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which upstream documents as a non-guarantee anyway.

#![forbid(unsafe_code)]

/// Uniform sampling support for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's raw 64-bit stream.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening multiply (unbiased
/// enough for simulation purposes and, above all, deterministic).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up onto the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Raw 64-bit generator interface (object-safe core of [`Rng`]).
pub trait RngCore {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferable type from the uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64. Fills the role of
    /// `rand::rngs::StdRng`: a statistically strong, seedable generator
    /// whose exact stream is unspecified by the upstream API contract.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
