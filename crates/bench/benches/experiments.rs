//! End-to-end experiment benchmarks: `cargo bench` runs a scaled-down
//! version of every table/figure harness, so the full reproduction path
//! is continuously exercised and timed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use uap_bittorrent::{run_swarm, SwarmConfig, TrackerPolicy};
use uap_core::experiments::{
    e01_hierarchy, e02_cost, e03_coordinates, e04_messages, e05_clustering, e06_exchange,
    e07_testlab, e09_kademlia, e11_challenges, e12_overhead, NetParams,
};
use uap_core::impact;
use uap_sim::SimTime;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(8));

    g.bench_function("e01_hierarchy", |b| {
        b.iter(|| black_box(e01_hierarchy::run(&e01_hierarchy::Params::quick(1))))
    });
    g.bench_function("e02_cost", |b| {
        b.iter(|| black_box(e02_cost::run(&e02_cost::Params::full())))
    });
    g.bench_function("e03_ics_example", |b| {
        b.iter(|| black_box(e03_coordinates::example_table()))
    });
    g.bench_function("e03_accuracy_quick", |b| {
        b.iter(|| {
            black_box(e03_coordinates::run_accuracy(
                &e03_coordinates::Params::quick(2),
            ))
        })
    });
    g.bench_function("e04_message_counts_quick", |b| {
        let mut p = e04_messages::Params::quick(3);
        p.duration = SimTime::from_mins(4);
        b.iter(|| black_box(e04_messages::run(&p)))
    });
    g.bench_function("e05_clustering_quick", |b| {
        let mut p = e05_clustering::Params::quick(4);
        p.duration = SimTime::from_mins(3);
        b.iter(|| black_box(e05_clustering::run(&p)))
    });
    g.bench_function("e06_exchange_quick", |b| {
        let mut p = e06_exchange::Params::quick(5);
        p.duration = SimTime::from_mins(4);
        b.iter(|| black_box(e06_exchange::run(&p)))
    });
    g.bench_function("e07_testlab_quick", |b| {
        let mut p = e07_testlab::Params::quick(6);
        p.duration = SimTime::from_mins(4);
        b.iter(|| black_box(e07_testlab::run(&p)))
    });
    g.bench_function("e08_impact_quick", |b| {
        b.iter(|| {
            black_box(impact::run(
                &NetParams::quick(150, 7),
                SimTime::from_mins(4),
            ))
        })
    });
    g.bench_function("e09_kademlia_quick", |b| {
        let mut p = e09_kademlia::Params::quick(8);
        p.lookups = 40;
        b.iter(|| black_box(e09_kademlia::run(&p)))
    });
    g.bench_function("e10_swarm_quick", |b| {
        b.iter(|| {
            let cfg = SwarmConfig {
                n_leechers: 50,
                n_seeds: 4,
                n_pieces: 32,
                tracker: TrackerPolicy::Bns {
                    internal: 16,
                    external: 4,
                },
                ..Default::default()
            };
            black_box(run_swarm(NetParams::quick(80, 9).build(), cfg, 9))
        })
    });
    g.bench_function("e11_challenges_quick", |b| {
        let p = e11_challenges::Params::quick(10);
        b.iter(|| {
            black_box((
                e11_challenges::run_asymmetry(&p),
                e11_challenges::run_long_hop(&p),
                e11_challenges::run_mobility(&p),
            ))
        })
    });
    g.bench_function("e12_overhead_quick", |b| {
        let p = e12_overhead::Params::quick(11);
        b.iter(|| black_box(e12_overhead::run_overhead(&p)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
