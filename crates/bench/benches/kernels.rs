//! Criterion benchmarks of the hot kernels every experiment leans on:
//! the event queue, valley-free routing, coordinate maths, flooding,
//! DHT lookups and swarm rounds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uap_coords::{IcsSystem, Matrix, VivaldiConfig, VivaldiNode};
use uap_gnutella::Overlay;
use uap_kademlia::{DhtConfig, DhtNetwork, Key, ProximityMode};
use uap_net::{
    HostId, PopulationSpec, Routing, RoutingMode, TopologyKind, TopologySpec, Underlay,
    UnderlayConfig,
};
use uap_sim::{EventQueue, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<SimTime> = (0..10_000)
            .map(|_| SimTime::from_micros(rng.below(1_000_000)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut acc = 0usize;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn hierarchical_underlay(n_hosts: usize, seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let g = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 3,
        tier2_per_tier1: 3,
        tier3_per_tier2: 4,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        g,
        &PopulationSpec::leaf(n_hosts),
        UnderlayConfig::default(),
        &mut rng,
    )
}

fn bench_routing(c: &mut Criterion) {
    let u = hierarchical_underlay(10, 2);
    c.bench_function("net/valley_free_apsp_48as", |b| {
        b.iter(|| black_box(Routing::compute(&u.graph, RoutingMode::ValleyFree)))
    });
    c.bench_function("net/latency_lookup", |b| {
        let u = hierarchical_underlay(500, 3);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(17);
            black_box(u.latency_us(HostId(i % 500), HostId((i / 2) % 500)))
        })
    });
}

fn bench_coords(c: &mut Criterion) {
    c.bench_function("coords/vivaldi_update", |b| {
        let cfg = VivaldiConfig::default();
        let mut rng = SimRng::new(4);
        let mut a = VivaldiNode::new(cfg);
        let remote = VivaldiNode::new(cfg);
        b.iter(|| {
            a.update(&remote, 55.0, &mut rng);
            black_box(a.error)
        })
    });
    c.bench_function("coords/jacobi_eigen_20x20", |b| {
        let mut rng = SimRng::new(5);
        let n = 20;
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rng.f64_range(1.0, 100.0);
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        b.iter(|| black_box(d.symmetric_eigen()))
    });
    c.bench_function("coords/ics_build_20_beacons", |b| {
        let mut rng = SimRng::new(6);
        let n = 20;
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rng.f64_range(1.0, 100.0);
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        b.iter(|| black_box(IcsSystem::build(&d, 5)))
    });
}

fn bench_flood(c: &mut Criterion) {
    let u = hierarchical_underlay(500, 7);
    let mut rng = SimRng::new(8);
    let mut overlay = Overlay::new(500);
    for i in 0..500 {
        overlay.set_online(HostId(i), true);
    }
    // Random degree-6 overlay.
    while overlay.edge_count() < 1_500 {
        let a = HostId(rng.below(500) as u32);
        let b = HostId(rng.below(500) as u32);
        if a != b {
            overlay.add_edge(&u, a, b);
        }
    }
    c.bench_function("gnutella/flood_ttl4_500nodes", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(13);
            black_box(overlay.flood(HostId(i % 500), 4))
        })
    });
}

fn bench_dht(c: &mut Criterion) {
    c.bench_function("kademlia/lookup_256nodes", |b| {
        let mut rng = SimRng::new(9);
        // One network reused across iterations: lookups keep refreshing the
        // routing tables, which is exactly the steady-state workload.
        let mut net = DhtNetwork::build(
            hierarchical_underlay(256, 10),
            DhtConfig {
                proximity: ProximityMode::PnsPr,
                ..Default::default()
            },
            &mut rng,
        );
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(29);
            let k = Key::random(&mut rng);
            black_box(net.lookup(HostId(i % 256), &k, &mut rng))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_routing,
    bench_coords,
    bench_flood,
    bench_dht
);
criterion_main!(benches);
