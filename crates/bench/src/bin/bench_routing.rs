//! Routing hot-path microbench: queries/sec for the three underlay
//! queries every overlay decision bottoms out in — `latency_us` (oracle
//! ranking, proximity neighbor selection), `path_links` (traffic
//! accounting) and `transfer_time` (download estimation) — at three
//! topology sizes, plus the all-pairs routing-table build time.
//!
//! Emits `BENCH_routing.json` (schema in `docs/PERFORMANCE.md`) and one
//! `PERF size=<name> …` line per size for `ci/perf_smoke.sh` to parse.
//! The measured rates are the perf trajectory of the hot path; they are
//! intentionally not deterministic (see the `BENCH_*.json` contract in
//! the crate docs).

use std::hint::black_box;
use uap_bench::Cli;
use uap_core::report::artifact_line;
use uap_net::{
    AsId, HostId, PopulationSpec, Routing, RoutingMode, TopologyKind, TopologySpec, Underlay,
    UnderlayConfig,
};
use uap_sim::{SimRng, WallTimer};

/// One benchmark topology size.
struct SizeSpec {
    name: &'static str,
    tier1: usize,
    tier2_per_tier1: usize,
    tier3_per_tier2: usize,
    hosts: usize,
}

const SIZES: [SizeSpec; 3] = [
    SizeSpec {
        name: "small",
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        hosts: 400,
    },
    SizeSpec {
        name: "medium",
        tier1: 3,
        tier2_per_tier1: 4,
        tier3_per_tier2: 6,
        hosts: 1_500,
    },
    SizeSpec {
        name: "large",
        tier1: 4,
        tier2_per_tier1: 6,
        tier3_per_tier2: 8,
        hosts: 4_000,
    },
];

/// Per-size measurement results.
struct SizeResult {
    name: &'static str,
    ases: usize,
    links: usize,
    hosts: usize,
    routing_build_secs: f64,
    latency_qps: f64,
    path_qps: f64,
    transfer_qps: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn measure(spec: &SizeSpec, seed: u64, queries: usize) -> SizeResult {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: spec.tier1,
        tier2_per_tier1: spec.tier2_per_tier1,
        tier3_per_tier2: spec.tier3_per_tier2,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    let ases = graph.len();
    let links = graph.links.len();

    // Routing-table build time (the parallel all-pairs construction),
    // averaged over a few rounds so small topologies aren't all noise.
    let build_rounds = 5;
    let w = WallTimer::start();
    for _ in 0..build_rounds {
        black_box(Routing::compute(&graph, RoutingMode::ValleyFree));
    }
    let routing_build_secs = w.elapsed_secs() / build_rounds as f64;

    let u = Underlay::build(
        graph,
        &PopulationSpec::leaf(spec.hosts),
        UnderlayConfig::default(),
        &mut rng,
    );

    // Deterministic query workload: random host pairs (and their AS pairs
    // for the path query), fixed up front so the timed loops do no RNG work.
    let n = u.n_hosts() as u64;
    let pairs: Vec<(HostId, HostId)> = (0..8_192)
        .map(|_| (HostId(rng.below(n) as u32), HostId(rng.below(n) as u32)))
        .collect();
    let as_pairs: Vec<(AsId, AsId)> = pairs
        .iter()
        .map(|&(a, b)| (u.hosts.as_of(a), u.hosts.as_of(b)))
        .collect();

    let w = WallTimer::start();
    let mut acc = 0u64;
    for i in 0..queries {
        let (a, b) = pairs[i & 8_191];
        acc = acc.wrapping_add(u.latency_us(a, b).unwrap_or(0));
    }
    black_box(acc);
    let latency_qps = queries as f64 / w.elapsed_secs();

    let w = WallTimer::start();
    let mut acc = 0u64;
    for i in 0..queries {
        let (a, b) = as_pairs[i & 8_191];
        acc = acc.wrapping_add(
            u.routing
                .path_links(a, b)
                .map(|p| p.len() as u64)
                .unwrap_or(0),
        );
    }
    black_box(acc);
    let path_qps = queries as f64 / w.elapsed_secs();

    let w = WallTimer::start();
    let mut acc = 0u64;
    for i in 0..queries {
        let (a, b) = pairs[i & 8_191];
        acc = acc.wrapping_add(
            u.transfer_time(a, b, 262_144)
                .map(|t| t.as_micros())
                .unwrap_or(0),
        );
    }
    black_box(acc);
    let transfer_qps = queries as f64 / w.elapsed_secs();

    let (cache_hits, cache_misses) = u.route_cache_stats();
    SizeResult {
        name: spec.name,
        ases,
        links,
        hosts: spec.hosts,
        routing_build_secs,
        latency_qps,
        path_qps,
        transfer_qps,
        cache_hits,
        cache_misses,
    }
}

fn main() {
    let cli = Cli::parse();
    let queries: usize = if cli.quick { 200_000 } else { 1_000_000 };
    let mut results = Vec::new();
    for spec in &SIZES {
        let r = measure(spec, cli.seed, queries);
        println!(
            "PERF size={} ases={} latency_qps={:.0} path_qps={:.0} transfer_qps={:.0} \
             build_secs={:.6}",
            r.name, r.ases, r.latency_qps, r.path_qps, r.transfer_qps, r.routing_build_secs
        );
        results.push(r);
        if cli.quick && results.len() == 2 {
            break; // quick mode: skip the large topology
        }
    }

    let mut sizes_json = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            sizes_json.push_str(",\n");
        }
        sizes_json.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"ases\": {},\n      \"links\": {},\n      \
             \"hosts\": {},\n      \"routing_build_secs\": {:?},\n      \"latency_qps\": {:?},\n      \
             \"path_qps\": {:?},\n      \"transfer_qps\": {:?},\n      \"cache_hits\": {},\n      \
             \"cache_misses\": {}\n    }}",
            r.name,
            r.ases,
            r.links,
            r.hosts,
            r.routing_build_secs,
            r.latency_qps,
            r.path_qps,
            r.transfer_qps,
            r.cache_hits,
            r.cache_misses
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"bench_routing\",\n  \"seed\": {},\n  \"quick\": {},\n  \
         \"queries\": {},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        cli.seed, cli.quick, queries, sizes_json
    );
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
    }
    let path = cli.out.join("BENCH_routing.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("{}", artifact_line("bench", &path)),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
