//! E1 — Figure 1: Internet hierarchy census.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e01_hierarchy::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp01_hierarchy");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp01_hierarchy", &out.table);
    println!(
        "monetary flow: {} transit links billed customer->provider; {} settlement-free peerings",
        out.transit_links, out.peering_links
    );
    tel.table(&out.table);
    tel.report
        .value("transit_links", out.transit_links)
        .value("peering_links", out.peering_links)
        .value("valley_free_reachability", out.valley_free_reachability);
    tel.finish(0);
}
