//! E1 — Figure 1: Internet hierarchy census.
use uap_bench::{emit, Cli};
use uap_core::experiments::e01_hierarchy::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp01_hierarchy", &out.table);
    println!(
        "monetary flow: {} transit links billed customer->provider; {} settlement-free peerings",
        out.transit_links, out.peering_links
    );
}
