//! E2 — Figure 2: transit vs peering cost curves.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e02_cost::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp02_cost_relations");
    let p = if cli.quick {
        Params::quick()
    } else {
        Params::full()
    };
    let out = run(&p);
    emit(&cli, "exp02_cost_relations", &out.table);
    println!(
        "per-Mbps crossover (peering becomes cheaper): {:.1} Mbps",
        out.crossover_mbps
    );
    tel.table(&out.table);
    tel.report.value("crossover_mbps", out.crossover_mbps);
    tel.finish(0);
}
