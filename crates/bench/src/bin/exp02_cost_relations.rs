//! E2 — Figure 2: transit vs peering cost curves.
use uap_bench::{emit, Cli};
use uap_core::experiments::e02_cost::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick()
    } else {
        Params::full()
    };
    let out = run(&p);
    emit(&cli, "exp02_cost_relations", &out.table);
    println!(
        "per-Mbps crossover (peering becomes cheaper): {:.1} Mbps",
        out.crossover_mbps
    );
}
