//! E3 — Figure 4 / Examples 4-5: the ICS coordinate system + accuracy sweep.
use uap_bench::{emit, Cli};
use uap_core::experiments::e03_coordinates::{example_table, run_accuracy, Params};

fn main() {
    let cli = Cli::parse();
    emit(&cli, "exp03_ics_example", &example_table());
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    emit(&cli, "exp03_accuracy", &run_accuracy(&p));
}
