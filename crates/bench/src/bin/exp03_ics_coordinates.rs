//! E3 — Figure 4 / Examples 4-5: the ICS coordinate system + accuracy sweep.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e03_coordinates::{example_table, run_accuracy, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp03_ics_coordinates");
    let example = example_table();
    emit(&cli, "exp03_ics_example", &example);
    tel.table(&example);
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let accuracy = run_accuracy(&p);
    emit(&cli, "exp03_accuracy", &accuracy);
    tel.table(&accuracy);
    tel.finish(0);
}
