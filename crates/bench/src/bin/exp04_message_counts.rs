//! E4 — Table 1: Gnutella message counts, unbiased vs oracle-biased.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e04_messages::{run_traced, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp04_message_counts");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run_traced(&p, &mut tel.tracer);
    emit(&cli, "exp04_message_counts", &out.table);
    for (name, r) in &out.reports {
        println!("--- {name} ---\n{r}");
    }
    tel.table(&out.table);
    let events: u64 = out.reports.iter().map(|(_, r)| r.events).sum();
    tel.finish(events);
}
