//! E4 — Table 1: Gnutella message counts, unbiased vs oracle-biased.
use uap_bench::{emit, Cli};
use uap_core::experiments::e04_messages::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp04_message_counts", &out.table);
    for (name, r) in &out.reports {
        println!("--- {name} ---\n{r}");
    }
}
