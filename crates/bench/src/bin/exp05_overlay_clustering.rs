//! E5 — Figures 5/6: overlay structure under neighbor-selection policies.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e05_clustering::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp05_overlay_clustering");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp05_overlay_clustering", &out.table);
    // Edge lists for external plotting (the "visualization" of Fig. 5/6).
    for snap in &out.snapshots {
        let mut t = uap_core::report::Table::new("", &["a", "b"]);
        for &(a, b) in &snap.edges {
            t.row(&[a.0.to_string(), b.0.to_string()]);
        }
        let name = format!("exp05_edges_{}", snap.label.replace(' ', "_"));
        if let Err(e) = t.write_csv(cli.out.join(format!("{name}.csv"))) {
            eprintln!("warning: {e}");
        }
    }
    tel.table(&out.table);
    tel.finish(0);
}
