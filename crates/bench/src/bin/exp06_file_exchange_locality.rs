//! E6 — §4: intra-AS share of file exchanges (6.5/7.3/10.02/40.57 %).
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e06_exchange::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp06_file_exchange_locality");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp06_file_exchange_locality", &out.table);
    tel.table(&out.table);
    tel.finish(0);
}
