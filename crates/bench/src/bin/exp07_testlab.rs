//! E7 — §5 testlab: 45 Gnutella nodes on ring/star/tree/mesh.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e07_testlab::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp07_testlab");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp07_testlab", &out.table);
    tel.table(&out.table);
    tel.finish(0);
}
