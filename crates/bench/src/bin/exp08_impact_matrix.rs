//! E8 — Table 2: the measured impact matrix.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::NetParams;
use uap_core::impact;
use uap_sim::SimTime;

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp08_impact_matrix");
    let (net, duration) = if cli.quick {
        (NetParams::quick(200, cli.seed), SimTime::from_mins(8))
    } else {
        (NetParams::full(cli.seed), SimTime::from_mins(30))
    };
    let m = impact::run(&net, duration);
    emit(&cli, "exp08_impact_matrix", &m.table);
    println!(
        "agreement with the paper's Table 2 (effect vs neutral): {:.0}%",
        100.0 * m.agreement()
    );
    tel.table(&m.table);
    tel.report.value("agreement", m.agreement());
    tel.finish(0);
}
