//! E8 — Table 2: the measured impact matrix.
use uap_bench::{emit, Cli};
use uap_core::experiments::NetParams;
use uap_core::impact;
use uap_sim::SimTime;

fn main() {
    let cli = Cli::parse();
    let (net, duration) = if cli.quick {
        (NetParams::quick(200, cli.seed), SimTime::from_mins(8))
    } else {
        (NetParams::full(cli.seed), SimTime::from_mins(30))
    };
    let m = impact::run(&net, duration);
    emit(&cli, "exp08_impact_matrix", &m.table);
    println!(
        "agreement with the paper's Table 2 (effect vs neutral): {:.0}%",
        100.0 * m.agreement()
    );
}
