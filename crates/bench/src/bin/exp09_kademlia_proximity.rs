//! E9 — proximity neighbor selection in Kademlia (Kaune et al. \[17\]).
use uap_bench::{emit, Cli};
use uap_core::experiments::e09_kademlia::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp09_kademlia_proximity", &out.table);
}
