//! E9 — proximity neighbor selection in Kademlia (Kaune et al. \[17\]).
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e09_kademlia::{run_traced, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp09_kademlia_proximity");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run_traced(&p, &mut tel.tracer);
    emit(&cli, "exp09_kademlia_proximity", &out.table);
    tel.table(&out.table);
    let rpcs: f64 = out
        .modes
        .iter()
        .map(|m| m.mean_rpcs * p.lookups as f64)
        .sum();
    tel.finish(rpcs as u64);
}
