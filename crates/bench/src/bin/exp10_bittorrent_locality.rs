//! E10 — swarm locality and ISP bills (BNS \[3\], CAT \[32\]).
use uap_bench::{emit, Cli};
use uap_core::experiments::e10_bittorrent::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp10_bittorrent_locality", &out.table);
}
