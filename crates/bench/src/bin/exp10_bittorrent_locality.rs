//! E10 — swarm locality and ISP bills (BNS \[3\], CAT \[32\]).
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e10_bittorrent::{run_traced, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp10_bittorrent_locality");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run_traced(&p, &mut tel.tracer);
    emit(&cli, "exp10_bittorrent_locality", &out.table);
    tel.table(&out.table);
    let rounds: u64 = out.policies.iter().map(|p| p.rounds as u64).sum();
    tel.finish(rounds);
}
