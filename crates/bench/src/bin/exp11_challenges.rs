//! E11 — §6 challenges: asymmetry, long hop, mobility.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e11_challenges::{run_asymmetry, run_long_hop, run_mobility, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp11_challenges");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    for (name, table) in [
        ("exp11_asymmetry", run_asymmetry(&p)),
        ("exp11_long_hop", run_long_hop(&p)),
        ("exp11_mobility", run_mobility(&p)),
    ] {
        emit(&cli, name, &table);
        tel.table(&table);
    }
    tel.finish(0);
}
