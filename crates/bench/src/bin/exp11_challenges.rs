//! E11 — §6 challenges: asymmetry, long hop, mobility.
use uap_bench::{emit, Cli};
use uap_core::experiments::e11_challenges::{run_asymmetry, run_long_hop, run_mobility, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    emit(&cli, "exp11_asymmetry", &run_asymmetry(&p));
    emit(&cli, "exp11_long_hop", &run_long_hop(&p));
    emit(&cli, "exp11_mobility", &run_mobility(&p));
}
