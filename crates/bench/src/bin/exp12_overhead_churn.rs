//! E12 — §5.4 open issues: awareness overhead and churn robustness.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e12_overhead::{run_churn, run_overhead, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp12_overhead_churn");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    for (name, table) in [
        ("exp12_overhead", run_overhead(&p)),
        ("exp12_churn", run_churn(&p)),
    ] {
        emit(&cli, name, &table);
        tel.table(&table);
    }
    tel.finish(0);
}
