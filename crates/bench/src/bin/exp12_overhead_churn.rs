//! E12 — §5.4 open issues: awareness overhead and churn robustness.
use uap_bench::{emit, Cli};
use uap_core::experiments::e12_overhead::{run_churn, run_overhead, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    emit(&cli, "exp12_overhead", &run_overhead(&p));
    emit(&cli, "exp12_churn", &run_churn(&p));
}
