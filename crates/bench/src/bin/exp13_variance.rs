//! E13 (extension) — seed sensitivity of the headline effects.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e13_variance::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp13_variance");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp13_variance", &out.table);
    tel.table(&out.table);
    tel.finish(0);
}
