//! E13 (extension) — seed sensitivity of the headline effects.
use uap_bench::{emit, Cli};
use uap_core::experiments::e13_variance::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp13_variance", &out.table);
}
