//! E14 — geographically scoped hashing (Leopard \[33\]) vs a plain DHT.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e14_gsh::{run, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp14_gsh");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp14_gsh", &out.table);
    tel.table(&out.table);
    tel.finish(0);
}
