//! E14 — geographically scoped hashing (Leopard \[33\]) vs a plain DHT.
use uap_bench::{emit, Cli};
use uap_core::experiments::e14_gsh::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp14_gsh", &out.table);
}
