//! E15 — ISP-location collection techniques: quality vs overhead.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e15_collection::{run_traced, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp15_collection");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run_traced(&p, &mut tel.tracer);
    emit(&cli, "exp15_collection", &out.table);
    tel.table(&out.table);
    let messages: u64 = out.techniques.iter().map(|t| t.messages).sum();
    tel.finish(messages);
}
