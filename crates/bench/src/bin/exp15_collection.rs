//! E15 — ISP-location collection techniques: quality vs overhead.
use uap_bench::{emit, Cli};
use uap_core::experiments::e15_collection::{run, Params};

fn main() {
    let cli = Cli::parse();
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run(&p);
    emit(&cli, "exp15_collection", &out.table);
}
