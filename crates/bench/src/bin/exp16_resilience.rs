//! E16 — fault-campaign resilience: degradation and recovery curves.
use uap_bench::{emit, Cli, Run};
use uap_core::experiments::e16_resilience::{run_traced, Params};

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp16_resilience");
    let p = if cli.quick {
        Params::quick(cli.seed)
    } else {
        Params::full(cli.seed)
    };
    let out = run_traced(&p, &mut tel.tracer);
    for (name, table) in [
        ("exp16_reachability", &out.reachability),
        ("exp16_gnutella", &out.gnutella),
        ("exp16_kademlia", &out.kademlia),
        ("exp16_bittorrent", &out.bittorrent),
    ] {
        emit(&cli, name, table);
        tel.table(table);
    }
    let rpcs: u64 = out.kad_phases.iter().map(|p| p.rpcs).sum();
    tel.finish(rpcs);
}
