//! E17 — fault-scale routing repair: incremental-repair throughput at
//! fault epochs across topology sizes.
//!
//! Sweeps AS-graph size × fault-epoch count, driving localized fault
//! epochs (rotating peering-link failures composed with latency
//! inflation windows) through [`uap_net::Underlay::apply_fault_state`]
//! and timing each incremental repair against the from-scratch
//! `Routing::compute_with_mask` rebuild the pre-repair code paid at
//! every epoch.
//!
//! Deterministic outputs (same seed → byte-identical): the summary
//! table, `exp17_fault_scale.report.json`, and the `routing.repair`
//! trace events (`ci/trace_gate.sh` double-runs these). Wall-clock
//! outputs (intentionally nondeterministic): `BENCH_fault_repair.json`
//! with per-epoch repair/full-rebuild timings and the
//! `PERF fault_scale size=…` lines `ci/perf_smoke.sh` parses.

use uap_bench::{emit, Cli, Run};
use uap_core::report::{artifact_line, Table};
use uap_net::{
    FaultState, LinkKind, PopulationSpec, Routing, Tier, TopologyKind, TopologySpec, Underlay,
    UnderlayConfig,
};
use uap_sim::{SimRng, TraceLevel, WallTimer};

/// One benchmark topology size.
struct SizeSpec {
    name: &'static str,
    tier1: usize,
    tier2_per_tier1: usize,
    tier3_per_tier2: usize,
    hosts: usize,
}

const SIZES: [SizeSpec; 3] = [
    SizeSpec {
        name: "small",
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        hosts: 200,
    },
    SizeSpec {
        name: "medium",
        tier1: 3,
        tier2_per_tier1: 4,
        tier3_per_tier2: 6,
        hosts: 600,
    },
    SizeSpec {
        name: "large",
        tier1: 4,
        tier2_per_tier1: 6,
        tier3_per_tier2: 8,
        hosts: 1_200,
    },
];

/// Per-size measurement results.
struct SizeResult {
    name: &'static str,
    ases: usize,
    links: usize,
    epochs: usize,
    changed_links: u64,
    sources_recomputed: u64,
    sources_total: u64,
    full_fallbacks: u64,
    repair_secs: f64,
    full_secs: f64,
}

/// Link indices suitable for localized fault epochs: peering links away
/// from the Tier-1 core (their loss re-routes a subtree, not the
/// backbone). Falls back to any peering, then any link, so every
/// topology yields a non-empty rotation set.
fn localized_links(u: &Underlay) -> Vec<usize> {
    let peripheral: Vec<usize> = u
        .graph
        .links
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            l.kind == LinkKind::Peering
                && u.graph.nodes[l.a.idx()].tier != Tier::Tier1
                && u.graph.nodes[l.b.idx()].tier != Tier::Tier1
        })
        .map(|(i, _)| i)
        .collect();
    if !peripheral.is_empty() {
        return peripheral;
    }
    let any_peering: Vec<usize> = u
        .graph
        .links
        .iter()
        .enumerate()
        .filter(|(_, l)| l.kind == LinkKind::Peering)
        .map(|(i, _)| i)
        .collect();
    if !any_peering.is_empty() {
        return any_peering;
    }
    (0..u.graph.links.len()).collect()
}

fn measure(spec: &SizeSpec, seed: u64, epochs: usize, tel: &mut Run) -> SizeResult {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: spec.tier1,
        tier2_per_tier1: spec.tier2_per_tier1,
        tier3_per_tier2: spec.tier3_per_tier2,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    let mut u = Underlay::build(
        graph,
        &PopulationSpec::leaf(spec.hosts),
        UnderlayConfig::default(),
        &mut rng,
    );
    let ases = u.n_ases();
    let links = u.graph.links.len();
    let rotation = localized_links(&u);

    let mut changed_links = 0u64;
    let mut repair_secs = 0.0f64;
    let mut full_secs = 0.0f64;
    for e in 0..epochs {
        // Localized epochs alternating fault and heal boundaries: even
        // epochs down one rotating peering link (two every fourth
        // rotation step), odd epochs heal everything, and a
        // latency-inflation window opens every eighth epoch — always
        // far under 10% of links changing per boundary.
        let mut state = FaultState::clear();
        let mask = if e % 2 == 0 {
            let step = e / 2;
            let mut mask = vec![false; links];
            mask[rotation[step % rotation.len()]] = true;
            if step % 4 == 3 && rotation.len() > 1 {
                mask[rotation[(step + 1) % rotation.len()]] = true;
            }
            Some(mask)
        } else {
            None
        };
        state.mask.clone_from(&mask);
        if e % 8 >= 4 {
            state.latency_factor = 1.5;
        }
        let w = WallTimer::start();
        let stats = u.apply_fault_state(&state);
        repair_secs += w.elapsed_secs();
        changed_links += stats.changed_links as u64;
        tel.tracer.emit(
            uap_sim::SimTime::ZERO,
            "net",
            TraceLevel::Info,
            "routing.repair",
            |f| {
                f.str("size", spec.name)
                    .u64("boundary", e as u64)
                    .u64("changed_links", stats.changed_links as u64)
                    .u64("dirty_sources", stats.dirty_sources as u64)
                    .u64("sources_total", stats.sources_total as u64)
                    .bool("full_rebuild", stats.full_rebuild);
            },
        );
        // The pre-repair cost of the same epoch: a from-scratch masked
        // all-pairs rebuild.
        let w = WallTimer::start();
        std::hint::black_box(Routing::compute_with_mask(
            &u.graph,
            u.config.routing,
            mask.as_deref(),
        ));
        full_secs += w.elapsed_secs();
    }
    let (sources_recomputed, sources_total, full_fallbacks) = u.repair_totals();
    SizeResult {
        name: spec.name,
        ases,
        links,
        epochs,
        changed_links,
        sources_recomputed,
        sources_total,
        full_fallbacks,
        repair_secs,
        full_secs,
    }
}

fn main() {
    let cli = Cli::parse();
    let epochs: usize = if cli.quick { 16 } else { 48 };
    let mut tel = Run::start(&cli, "exp17_fault_scale");
    tel.report.config("epochs", epochs);

    let mut results = Vec::new();
    for spec in &SIZES {
        let r = measure(spec, cli.seed, epochs, &mut tel);
        let repair_eps = r.epochs as f64 / r.repair_secs.max(1e-9);
        let full_eps = r.epochs as f64 / r.full_secs.max(1e-9);
        println!(
            "PERF fault_scale size={} ases={} links={} epochs={} repair_eps={:.0} \
             full_eps={:.0} speedup={:.2} recomputed_frac={:.4}",
            r.name,
            r.ases,
            r.links,
            r.epochs,
            repair_eps,
            full_eps,
            repair_eps / full_eps.max(1e-9),
            r.sources_recomputed as f64 / r.sources_total.max(1) as f64,
        );
        results.push(r);
        if cli.quick && results.len() == 2 {
            break; // quick mode: skip the large topology
        }
    }

    // Deterministic summary: repair work per size (no wall-clock cells,
    // so the report stays byte-identical across same-seed runs).
    let mut table = Table::new(
        "E17 — incremental routing repair at fault epochs",
        &[
            "size",
            "ases",
            "links",
            "epochs",
            "changed links",
            "sources recomputed",
            "sources total",
            "full fallbacks",
        ],
    );
    for r in &results {
        table.row(&[
            r.name.to_string(),
            r.ases.to_string(),
            r.links.to_string(),
            r.epochs.to_string(),
            r.changed_links.to_string(),
            r.sources_recomputed.to_string(),
            r.sources_total.to_string(),
            r.full_fallbacks.to_string(),
        ]);
    }
    emit(&cli, "exp17_fault_scale", &table);
    tel.table(&table);

    // The wall-clock sample: per-size repair vs full-rebuild timings.
    let mut sizes_json = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            sizes_json.push_str(",\n");
        }
        let per_epoch_repair = r.repair_secs / r.epochs as f64;
        let per_epoch_full = r.full_secs / r.epochs as f64;
        sizes_json.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"ases\": {},\n      \"links\": {},\n      \
             \"epochs\": {},\n      \"repair_secs\": {:?},\n      \"full_secs\": {:?},\n      \
             \"per_epoch_repair_secs\": {:?},\n      \"per_epoch_full_secs\": {:?},\n      \
             \"speedup\": {:?},\n      \"sources_recomputed\": {},\n      \
             \"sources_total\": {},\n      \"full_fallbacks\": {}\n    }}",
            r.name,
            r.ases,
            r.links,
            r.epochs,
            r.repair_secs,
            r.full_secs,
            per_epoch_repair,
            per_epoch_full,
            per_epoch_full / per_epoch_repair.max(1e-12),
            r.sources_recomputed,
            r.sources_total,
            r.full_fallbacks,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"exp17_fault_scale\",\n  \"seed\": {},\n  \"quick\": {},\n  \
         \"epochs\": {},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        cli.seed, cli.quick, epochs, sizes_json
    );
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
    }
    let path = cli.out.join("BENCH_fault_repair.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("{}", artifact_line("bench", &path)),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    let total_epochs: u64 = results.iter().map(|r| r.epochs as u64).sum();
    tel.finish(total_epochs);
}
