//! E18 — flow-level congestion: swarm behavior under max-min fair
//! bandwidth sharing.
//!
//! Sweeps seed/leecher ratio × access-link heterogeneity × tracker
//! policy, running the flow-backed BitTorrent swarm on each combination.
//! With the [`uap_net::FlowAllocator`] model every transfer competes for
//! the sender's uplink, the receiver's downlink and the AS links on its
//! path, so seed-starved swarms and uniform (cable-only) populations
//! show their real completion-time cost instead of the old per-flow
//! `downlink/2` approximation.
//!
//! Deterministic outputs (same seed → byte-identical): the two summary
//! tables and their CSVs (`exp18_completion.csv`, `exp18_locality.csv`),
//! `exp18_congestion.report.json`, and the trace (`flow.open` /
//! `flow.close` deltas per round; `ci/trace_gate.sh` double-runs these).
//! Wall-clock outputs (intentionally nondeterministic):
//! `BENCH_flow.json` and the `PERF flow_alloc …` line
//! `ci/perf_smoke.sh` parses, plus the standard
//! `PERF exp18_congestion …` throughput sample.

use uap_bench::{emit, Cli, Run};
use uap_bittorrent::{run_swarm_with, SwarmConfig, SwarmReport, TrackerPolicy};
use uap_core::report::{artifact_line, f, pct, Table};
use uap_net::{
    FlowAllocator, HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use uap_sim::{SimRng, WallTimer};

/// Hosts in every swarm underlay.
const HOSTS: usize = 120;
/// Leechers in every swarm (seeds vary per spec).
const LEECHERS: usize = 56;
/// Seed counts swept: starved, balanced, seed-rich.
const SEED_COUNTS: [usize; 3] = [2, 8, 24];

/// One sweep row's outcome.
struct Outcome {
    access: &'static str,
    seeds: usize,
    tracker: &'static str,
    report: SwarmReport,
}

fn build_underlay(seed: u64, uniform: bool) -> Underlay {
    let mut rng = SimRng::new(seed);
    let g = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 3,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.4,
    })
    .build(&mut rng);
    let mut u = Underlay::build(
        g,
        &PopulationSpec::leaf(HOSTS),
        UnderlayConfig::default(),
        &mut rng,
    );
    if uniform {
        // Heterogeneity off: every host becomes the same mid-tier cable
        // line, so the sweep isolates what access diversity contributes.
        for h in &mut u.hosts.hosts {
            h.down_kbps = 16_000;
            h.up_kbps = 1_500;
        }
    }
    u
}

fn swarm_cfg(seeds: usize, tracker: TrackerPolicy) -> SwarmConfig {
    SwarmConfig {
        n_leechers: LEECHERS,
        n_seeds: seeds,
        n_pieces: 48,
        piece_bytes: 256 * 1024,
        tracker,
        ..Default::default()
    }
}

/// Allocator microbench: one full begin/add/allocate cycle per
/// iteration over a fixed 256-flow set, reporting cycles per second.
/// This is the per-round cost the swarm pays at every flow-set change.
fn flow_alloc_bench(seed: u64, iters: usize) -> (usize, f64) {
    let u = build_underlay(seed, false);
    let n = u.n_hosts() as u32;
    let mut a = FlowAllocator::new(&u);
    let w = WallTimer::start();
    for _ in 0..iters {
        a.begin();
        for k in 0..256u32 {
            let src = HostId(k % n);
            let dst = HostId((k * 7 + 13) % n);
            if src != dst {
                a.add_flow(k as u64, src, dst, &u);
            }
        }
        a.allocate();
        std::hint::black_box(a.n_flows());
    }
    (iters, w.elapsed_secs())
}

fn main() {
    let cli = Cli::parse();
    let mut tel = Run::start(&cli, "exp18_congestion");
    tel.report.config("hosts", HOSTS);
    tel.report.config("leechers", LEECHERS);

    let trackers: [(&str, TrackerPolicy); 2] = [
        ("random", TrackerPolicy::Random),
        (
            "bns",
            TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            },
        ),
    ];
    let seed_counts: &[usize] = if cli.quick {
        &SEED_COUNTS[..2] // quick mode: skip the seed-rich sweep point
    } else {
        &SEED_COUNTS
    };

    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut total_rounds = 0u64;
    for &(access, uniform) in &[("mixed", false), ("uniform", true)] {
        for &seeds in seed_counts {
            for &(tname, tracker) in &trackers {
                let u = build_underlay(cli.seed, uniform);
                let (report, _) =
                    run_swarm_with(u, swarm_cfg(seeds, tracker), cli.seed, &mut tel.tracer);
                total_rounds += report.rounds as u64;
                outcomes.push(Outcome {
                    access,
                    seeds,
                    tracker: tname,
                    report,
                });
            }
        }
    }

    let mut completion = Table::new(
        "E18 — swarm completion under max-min fair bandwidth sharing",
        &[
            "config",
            "access",
            "seeds",
            "tracker",
            "completed",
            "rounds",
            "mean completion s",
            "payload MB",
        ],
    );
    let mut locality = Table::new(
        "E18 — traffic locality under max-min fair bandwidth sharing",
        &["config", "access", "seeds", "tracker", "intra-AS traffic"],
    );
    for o in &outcomes {
        let name = format!("{}/s{}/{}", o.access, o.seeds, o.tracker);
        completion.row(&[
            name.clone(),
            o.access.to_string(),
            o.seeds.to_string(),
            o.tracker.to_string(),
            format!("{}/{}", o.report.completed, o.report.leechers),
            o.report.rounds.to_string(),
            f(o.report.mean_completion_secs()),
            f(o.report.payload_bytes as f64 / 1e6),
        ]);
        locality.row(&[
            name,
            o.access.to_string(),
            o.seeds.to_string(),
            o.tracker.to_string(),
            pct(o.report.intra_as_fraction),
        ]);
    }
    emit(&cli, "exp18_completion", &completion);
    emit(&cli, "exp18_locality", &locality);
    tel.table(&completion);
    tel.table(&locality);

    // Allocator throughput sample for the perf-smoke gate: wall-clock
    // only, never folded into the deterministic report.
    let iters = if cli.quick { 400 } else { 2_000 };
    let (cycles, secs) = flow_alloc_bench(cli.seed, iters);
    let alloc_cps = cycles as f64 / secs.max(1e-9);
    println!(
        "PERF flow_alloc flows=256 cycles={} allocs_per_sec={:.0}",
        cycles, alloc_cps
    );
    let json = format!(
        "{{\n  \"experiment\": \"exp18_congestion\",\n  \"seed\": {},\n  \"quick\": {},\n  \
         \"flow_alloc\": {{\n    \"flows\": 256,\n    \"cycles\": {},\n    \
         \"wall_secs\": {:?},\n    \"allocs_per_sec\": {:?}\n  }}\n}}\n",
        cli.seed, cli.quick, cycles, secs, alloc_cps
    );
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
    }
    let path = cli.out.join("BENCH_flow.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("{}", artifact_line("bench", &path)),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    tel.finish(total_rounds);
}
