//! # uap-bench — experiment binaries and benchmarks
//!
//! One binary per paper artifact (run with `cargo run --release -p
//! uap-bench --bin expNN_…`), each printing the table/series the paper
//! reports and writing a CSV under `results/`. Common flags:
//!
//! * `--quick` — the fast test-scale parameters (default is the full,
//!   paper-scale configuration);
//! * `--seed <u64>` — experiment seed (default 42);
//! * `--out <dir>` — CSV output directory (default `results`).
//!
//! The Criterion benches (`cargo bench -p uap-bench`) time the hot kernels
//! (event queue, routing, coordinates, flooding, DHT lookups, swarm
//! rounds) and run scaled-down versions of the experiments so the whole
//! reproduction path is exercised by `cargo bench`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use uap_core::report::Table;

/// Parsed common CLI flags.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Fast parameters instead of paper-scale.
    pub quick: bool,
    /// Experiment seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out: PathBuf,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Cli {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli {
            quick: false,
            seed: 42,
            out: PathBuf::from("results"),
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    cli.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--out" => {
                    let v = it.next().unwrap_or_else(|| usage("--out needs a value"));
                    cli.out = PathBuf::from(v);
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        cli
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--quick] [--seed <u64>] [--out <dir>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Prints a table and writes its CSV under the output directory.
pub fn emit(cli: &Cli, name: &str, table: &Table) {
    println!("{}", table.render());
    let path = cli.out.join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {})\n", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let c = Cli::parse_from(Vec::<String>::new());
        assert!(!c.quick);
        assert_eq!(c.seed, 42);
        assert_eq!(c.out, PathBuf::from("results"));
    }

    #[test]
    fn parse_flags() {
        let c = Cli::parse_from(
            ["--quick", "--seed", "7", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(c.quick);
        assert_eq!(c.seed, 7);
        assert_eq!(c.out, PathBuf::from("/tmp/x"));
    }
}
