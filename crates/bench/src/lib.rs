//! # uap-bench — experiment binaries and benchmarks
//!
//! One binary per paper artifact (run with `cargo run --release -p
//! uap-bench --bin expNN_…`), each printing the table/series the paper
//! reports, writing a CSV under `results/`, and emitting the structured
//! telemetry files described below. Common flags:
//!
//! * `--quick` — the fast test-scale parameters (default is the full,
//!   paper-scale configuration);
//! * `--seed <u64>` — experiment seed (default 42);
//! * `--out <dir>` — output directory (default `results`);
//! * `--trace <path>` — also write the run's structured trace as JSONL
//!   to `<path>` (see `docs/OBSERVABILITY.md` for the event schema);
//! * `--trace-stream` — with `--trace`, write the JSONL through the
//!   streaming sink (buffered write-through, O(1) memory) instead of
//!   accumulating the run in RAM. Byte-identical output either way.
//!
//! ## Telemetry files
//!
//! Every binary writes, next to its CSVs:
//!
//! * **`<name>.report.json`** — the deterministic
//!   [`uap_sim::RunReport`]: config, seed, headline values (every table
//!   cell), counters, histogram quantiles and time series. Two same-seed
//!   runs produce byte-identical reports except for the `wall_secs`
//!   line, which `cargo run -p xtask -- trace diff` skips.
//!
//! * **`BENCH_<name>.json`** — the machine-readable perf sample, one
//!   JSON object with exactly these keys, in this order:
//!
//!   | key              | type   | meaning                                     |
//!   |------------------|--------|---------------------------------------------|
//!   | `experiment`     | string | experiment id (e.g. `exp04_message_counts`) |
//!   | `seed`           | u64    | the run's root seed                         |
//!   | `quick`          | bool   | `--quick` parameters were used              |
//!   | `events`         | u64    | simulation events (or rounds) processed     |
//!   | `wall_secs`      | f64    | wall-clock duration, from the one allowed   |
//!   |                  |        | [`uap_sim::WallTimer`] boundary             |
//!   | `events_per_sec` | f64    | `events / wall_secs` (0 when unmeasured)    |
//!
//!   `wall_secs` and `events_per_sec` are intentionally *not*
//!   deterministic — they are the perf trajectory — which is why they
//!   live in `BENCH_*.json` and not in the trace or the RunReport's
//!   compared lines.
//!
//!   One binary deviates from this schema: `bench_routing` is a pure
//!   microbench with no simulation run, so its `BENCH_routing.json`
//!   carries per-topology-size query rates instead of event counts —
//!   see `docs/PERFORMANCE.md` for that document's layout.
//!
//! The Criterion benches (`cargo bench -p uap-bench`) time the hot kernels
//! (event queue, routing, coordinates, flooding, DHT lookups, swarm
//! rounds) and run scaled-down versions of the experiments so the whole
//! reproduction path is exercised by `cargo bench`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use uap_core::report::{artifact_line, Table};
use uap_sim::{RunReport, TraceLevel, Tracer, WallTimer};

/// Parsed common CLI flags.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Fast parameters instead of paper-scale.
    pub quick: bool,
    /// Experiment seed.
    pub seed: u64,
    /// Output directory for CSVs and telemetry JSON.
    pub out: PathBuf,
    /// Optional JSONL trace output path.
    pub trace: Option<PathBuf>,
    /// Stream the trace through the write-through sink instead of
    /// buffering the whole run in memory.
    pub trace_stream: bool,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Cli {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli {
            quick: false,
            seed: 42,
            out: PathBuf::from("results"),
            trace: None,
            trace_stream: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    cli.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--out" => {
                    let v = it.next().unwrap_or_else(|| usage("--out needs a value"));
                    cli.out = PathBuf::from(v);
                }
                "--trace" => {
                    let v = it.next().unwrap_or_else(|| usage("--trace needs a value"));
                    cli.trace = Some(PathBuf::from(v));
                }
                "--trace-stream" => cli.trace_stream = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        cli
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--quick] [--seed <u64>] [--out <dir>] [--trace <path>] \
         [--trace-stream]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Prints a table and writes its CSV under the output directory.
pub fn emit(cli: &Cli, name: &str, table: &Table) {
    println!("{}", table.render());
    let path = cli.out.join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("{}\n", artifact_line("csv", &path)),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Telemetry accumulator for one experiment binary run: owns the
/// [`RunReport`], the [`Tracer`] handed to traced harnesses, and the
/// wall-clock timer. Construct with [`Run::start`], feed it tables and
/// config, then call [`Run::finish`] to write `<name>.report.json`,
/// `BENCH_<name>.json`, and (with `--trace`) the JSONL trace.
pub struct Run {
    name: String,
    out: PathBuf,
    trace_path: Option<PathBuf>,
    /// The tracer already writes through to `trace_path`; `finish` only
    /// flushes instead of serializing the buffered events.
    streaming: bool,
    /// The structured report being accumulated.
    pub report: RunReport,
    /// Tracer to thread through traced experiment harnesses. Disabled
    /// unless `--trace` was given (so the hot path stays free).
    pub tracer: Tracer,
    wall: WallTimer,
}

impl Run {
    /// Starts telemetry for the binary `name` (also the RunReport's
    /// experiment id and the stem of every written file).
    pub fn start(cli: &Cli, name: &str) -> Run {
        let mut report = RunReport::new(name, cli.seed);
        report.config("quick", cli.quick);
        let mut streaming = false;
        let tracer = match &cli.trace {
            Some(tp) if cli.trace_stream => {
                if let Some(dir) = tp.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                match Tracer::streaming(tp, TraceLevel::Debug) {
                    Ok(t) => {
                        streaming = true;
                        t
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: could not open {} for streaming, buffering instead: {e}",
                            tp.display()
                        );
                        Tracer::buffered(TraceLevel::Debug)
                    }
                }
            }
            Some(_) => Tracer::buffered(TraceLevel::Debug),
            None => Tracer::disabled(),
        };
        Run {
            name: name.to_owned(),
            out: cli.out.clone(),
            trace_path: cli.trace.clone(),
            streaming,
            report,
            tracer,
            wall: WallTimer::start(),
        }
    }

    /// Folds every cell of a rendered table into the report's headline
    /// values, keyed `"<row name>/<column header>"`.
    pub fn table(&mut self, table: &Table) {
        let header = table.header().to_vec();
        for r in 0..table.len() {
            let cells = table.row_cells(r).to_vec();
            for (j, h) in header.iter().enumerate().skip(1) {
                self.report.value(format!("{}/{}", cells[0], h), &cells[j]);
            }
        }
    }

    /// Writes the telemetry files and prints their paths. `events` is the
    /// run's total event (or round) count for the throughput sample.
    pub fn finish(mut self, events: u64) {
        let wall = self.wall.elapsed_secs();
        self.report.events = events;
        self.report.wall_secs = Some(wall);
        if let Err(e) = std::fs::create_dir_all(&self.out) {
            eprintln!("warning: could not create {}: {e}", self.out.display());
        }
        let report_path = self.out.join(format!("{}.report.json", self.name));
        match self.report.write_json(&report_path) {
            Ok(()) => println!("{}", artifact_line("report", &report_path)),
            Err(e) => eprintln!("warning: could not write {}: {e}", report_path.display()),
        }
        let bench_path = self.out.join(format!("BENCH_{}.json", self.name));
        let quick = self
            .report
            .config
            .iter()
            .any(|(k, v)| k == "quick" && v == "true");
        let bench = bench_json(&self.name, self.report.seed, quick, events, wall);
        match std::fs::write(&bench_path, bench) {
            Ok(()) => println!("{}", artifact_line("bench", &bench_path)),
            Err(e) => eprintln!("warning: could not write {}: {e}", bench_path.display()),
        }
        // One grep-able throughput line per run, mirroring bench_routing's
        // `PERF size=…` lines — ci/perf_smoke.sh parses exp16's.
        let eps = if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        };
        println!(
            "PERF {} events={events} wall_secs={wall:.3} events_per_sec={eps:.0}",
            self.name
        );
        if let Some(tp) = &self.trace_path {
            if self.streaming {
                match self.tracer.flush() {
                    Ok(()) => println!("{}", artifact_line("trace", tp)),
                    Err(e) => eprintln!("warning: could not flush {}: {e}", tp.display()),
                }
            } else {
                if let Some(dir) = tp.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let mut buf = Vec::new();
                match self.tracer.write_jsonl(&mut buf) {
                    Ok(()) => match std::fs::write(tp, &buf) {
                        Ok(()) => println!("{}", artifact_line("trace", tp)),
                        Err(e) => eprintln!("warning: could not write {}: {e}", tp.display()),
                    },
                    Err(e) => eprintln!("warning: could not serialize trace: {e}"),
                }
            }
        }
    }
}

/// Renders the `BENCH_*.json` document (schema in the module docs).
fn bench_json(name: &str, seed: u64, quick: bool, events: u64, wall_secs: f64) -> String {
    let eps = if wall_secs > 0.0 {
        events as f64 / wall_secs
    } else {
        0.0
    };
    format!(
        "{{\n  \"experiment\": \"{name}\",\n  \"seed\": {seed},\n  \"quick\": {quick},\n  \
         \"events\": {events},\n  \"wall_secs\": {wall_secs:?},\n  \
         \"events_per_sec\": {eps:?}\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let c = Cli::parse_from(Vec::<String>::new());
        assert!(!c.quick);
        assert_eq!(c.seed, 42);
        assert_eq!(c.out, PathBuf::from("results"));
        assert!(c.trace.is_none());
    }

    #[test]
    fn parse_flags() {
        let c = Cli::parse_from(
            [
                "--quick",
                "--seed",
                "7",
                "--out",
                "/tmp/x",
                "--trace",
                "/tmp/t.jsonl",
                "--trace-stream",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert!(c.quick);
        assert_eq!(c.seed, 7);
        assert_eq!(c.out, PathBuf::from("/tmp/x"));
        assert_eq!(c.trace, Some(PathBuf::from("/tmp/t.jsonl")));
        assert!(c.trace_stream);
    }

    #[test]
    fn trace_stream_flag_opens_a_streaming_run() {
        let path = std::env::temp_dir().join("uap_bench_stream_run.jsonl");
        let cli = Cli::parse_from(
            ["--trace", path.to_str().unwrap(), "--trace-stream"]
                .iter()
                .map(|s| s.to_string()),
        );
        let run = Run::start(&cli, "exp_test");
        assert!(run.tracer.is_active());
        assert!(run.streaming);
        assert!(path.exists(), "streaming sink creates the file up front");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_folds_table_cells_into_report_values() {
        let cli = Cli::parse_from(Vec::<String>::new());
        let mut run = Run::start(&cli, "exp_test");
        let mut t = Table::new("demo", &["row", "count"]);
        t.row(&["ping".into(), "7".into()]);
        run.table(&t);
        assert_eq!(
            run.report.values,
            vec![("ping/count".to_owned(), "7".to_owned())]
        );
        assert!(!run.tracer.is_active());
    }

    #[test]
    fn trace_flag_enables_the_tracer() {
        let cli = Cli::parse_from(["--trace", "/tmp/t.jsonl"].iter().map(|s| s.to_string()));
        let run = Run::start(&cli, "exp_test");
        assert!(run.tracer.is_active());
    }

    #[test]
    fn bench_json_schema_is_stable() {
        let j = bench_json("exp_test", 42, true, 100, 2.0);
        assert_eq!(
            j,
            "{\n  \"experiment\": \"exp_test\",\n  \"seed\": 42,\n  \"quick\": true,\n  \
             \"events\": 100,\n  \"wall_secs\": 2.0,\n  \"events_per_sec\": 50.0\n}\n"
        );
    }
}
