//! # uap-bittorrent — a swarm simulator with ISP-friendly tracker policies
//!
//! The content-distribution substrate for two surveyed usage techniques:
//!
//! * **Biased neighbor selection** (Bindal et al. \[3\], "Improving traffic
//!   locality in BitTorrent via biased neighbor selection"): the tracker
//!   answers an announce with `k` same-AS peers and only a few external
//!   ones, instead of a uniformly random subset;
//! * **Cost-aware BitTorrent** (CAT, Yamazaki et al. \[32\]): peers weight
//!   their unchoke decisions by the underlay cost of the connection.
//!
//! The swarm model is round-based fluid: every round each peer unchokes a
//! few neighbors (tit-for-tat plus an optimistic slot), divides its uplink
//! among them, and receivers accumulate the bytes into rarest-first piece
//! completions. Every flow is charged to the underlay traffic ledger, so
//! the Figure-2 cost model can price each policy's ISP bill.

#![forbid(unsafe_code)]

pub mod pieces;
pub mod swarm;
pub mod tracker;

pub use pieces::PieceSet;
pub use swarm::{run_swarm, run_swarm_with, SwarmConfig, SwarmReport};
pub use tracker::TrackerPolicy;
