//! Piece bookkeeping: a fixed-size bitfield.

/// A bitfield over the torrent's pieces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PieceSet {
    bits: Vec<u64>,
    n: usize,
    count: usize,
}

impl PieceSet {
    /// An empty set over `n` pieces.
    // lint:allow(alloc) — constructor; the bitset it builds is the product
    pub fn empty(n: usize) -> PieceSet {
        PieceSet {
            bits: vec![0; n.div_ceil(64)],
            n,
            count: 0,
        }
    }

    /// A full set over `n` pieces (a seed's bitfield).
    pub fn full(n: usize) -> PieceSet {
        let mut s = PieceSet::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Total pieces in the torrent.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Pieces held.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no piece is held.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether every piece is held.
    pub fn is_complete(&self) -> bool {
        self.count == self.n
    }

    /// Whether piece `i` is held (out-of-range reads as absent).
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.n);
        self.bits
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Adds piece `i`; returns true if it was new.
    ///
    /// # Panics
    /// If `i` is outside the torrent's piece range.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.n);
        let w = self
            .bits
            .get_mut(i / 64)
            .expect("piece index within bitfield capacity"); // lint:allow(expect)
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Removes every piece, keeping the allocation — the per-receiver
    /// claimed-piece scratch in the swarm round loop resets with this
    /// instead of rebuilding the bitfield.
    pub fn clear(&mut self) {
        for w in &mut self.bits {
            *w = 0;
        }
        self.count = 0;
    }

    /// Iterates over pieces in `other` that this set lacks.
    pub fn missing_from<'a>(&'a self, other: &'a PieceSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.n, other.n);
        (0..self.n).filter(move |&i| other.contains(i) && !self.contains(i))
    }

    /// Whether `other` has at least one piece this set lacks.
    pub fn is_interested_in(&self, other: &PieceSet) -> bool {
        self.bits
            .iter()
            .zip(&other.bits)
            .any(|(a, b)| (!a & b) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = PieceSet::empty(100);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert!(!e.is_complete());
        let f = PieceSet::full(100);
        assert_eq!(f.len(), 100);
        assert!(f.is_complete());
        assert!(f.contains(0) && f.contains(99));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = PieceSet::empty(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(2));
    }

    #[test]
    fn missing_and_interest() {
        let mut a = PieceSet::empty(10);
        let mut b = PieceSet::empty(10);
        b.insert(1);
        b.insert(5);
        a.insert(1);
        let missing: Vec<usize> = a.missing_from(&b).collect();
        assert_eq!(missing, vec![5]);
        assert!(a.is_interested_in(&b));
        a.insert(5);
        assert!(!a.is_interested_in(&b));
        assert!(!b.is_interested_in(&a));
    }

    #[test]
    fn clear_resets_without_shrinking_capacity() {
        let mut s = PieceSet::full(70);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 70);
        assert!(!s.contains(0) && !s.contains(69));
        assert!(s.insert(69));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn boundary_at_word_edges() {
        let mut s = PieceSet::empty(129);
        s.insert(63);
        s.insert(64);
        s.insert(128);
        assert!(s.contains(63) && s.contains(64) && s.contains(128));
        assert_eq!(s.len(), 3);
    }
}
