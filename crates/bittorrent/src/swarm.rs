//! The round-based swarm simulation.
//!
//! Flow-backed fluid model: in every round of `round_secs`, each peer
//! unchokes its best reciprocators (tit-for-tat) plus one optimistic
//! slot; the unchoke pairs form the round's **flow set**, a max-min fair
//! allocation over sender uplinks, receiver downlinks and the shared
//! inter-AS links ([`uap_net::flow::FlowAllocator`]) prices each flow,
//! and the receivers turn the accumulated bytes into rarest-first piece
//! completions with per-chunk hash verification. Flows are charged to
//! the underlay ledger, so experiment E10 can bill each tracker policy.

use crate::pieces::PieceSet;
use crate::tracker::{Tracker, TrackerPolicy};
use std::collections::BTreeMap;
use uap_net::{FlowAllocator, HostId, Underlay};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Swarm parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of leechers (joined at round 0).
    pub n_leechers: usize,
    /// Number of initial seeds.
    pub n_seeds: usize,
    /// Pieces in the torrent.
    pub n_pieces: usize,
    /// Bytes per piece.
    pub piece_bytes: u64,
    /// Peer-set size requested from the tracker.
    pub max_peers: usize,
    /// Regular unchoke slots.
    pub unchoke_slots: usize,
    /// Optimistic unchoke slots.
    pub optimistic_slots: usize,
    /// Round length.
    pub round: SimTime,
    /// Stop after this many rounds even if leechers remain.
    pub max_rounds: u32,
    /// Tracker policy (the experiment's independent variable).
    pub tracker: TrackerPolicy,
    /// CAT-style cost-aware choking: the unchoke ranking discounts bytes
    /// received over inter-AS paths, so same-AS reciprocators win ties
    /// (Yamazaki et al. \[32\]).
    pub cost_aware_choking: bool,
    /// Time-scheduled underlay fault campaign (`None` = fault-free run).
    /// Crashed swarm members pause (no flows, no announces, pieces kept);
    /// partitioned pairs stall their flows until routing recovers.
    pub faults: Option<uap_net::FaultPlan>,
    /// Hosts whose chunks always fail hash verification. A receiver that
    /// detects a poisoned chunk discards the credited bytes, bans the
    /// sender, and deterministically re-requests the pieces from its
    /// remaining senders (empty = every sender honest).
    pub poisoners: Vec<HostId>,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            n_leechers: 100,
            n_seeds: 5,
            n_pieces: 64,
            piece_bytes: 256 * 1024,
            max_peers: 20,
            unchoke_slots: 3,
            optimistic_slots: 1,
            round: SimTime::from_secs(10),
            max_rounds: 2_000,
            tracker: TrackerPolicy::Random,
            cost_aware_choking: false,
            faults: None,
            poisoners: Vec::new(),
        }
    }
}

/// Results of one swarm run.
#[derive(Clone, Debug)]
pub struct SwarmReport {
    /// Completion time (seconds) per finished leecher.
    pub completion_secs: Vec<f64>,
    /// Leechers that finished before `max_rounds`.
    pub completed: usize,
    /// Leechers total.
    pub leechers: usize,
    /// Rounds simulated.
    pub rounds: u32,
    /// Fraction of payload bytes that stayed intra-AS.
    pub intra_as_fraction: f64,
    /// Total payload bytes moved.
    pub payload_bytes: u64,
    /// Tracker announces served.
    pub announces: u64,
    /// Cumulative finished-leecher count after each round — the progress
    /// curve the resilience experiment plots across fault epochs.
    pub completed_by_round: Vec<usize>,
    /// Re-announces triggered by dead-neighbor loss or crash recovery
    /// (0 in fault-free runs; periodic refreshes are not counted).
    pub reannounces: u64,
}

impl SwarmReport {
    /// Mean completion time in seconds (0 if nobody finished).
    pub fn mean_completion_secs(&self) -> f64 {
        if self.completion_secs.is_empty() {
            0.0
        } else {
            self.completion_secs.iter().sum::<f64>() / self.completion_secs.len() as f64
        }
    }

    /// Median completion time in seconds.
    pub fn median_completion_secs(&self) -> f64 {
        if self.completion_secs.is_empty() {
            return 0.0;
        }
        let mut v = self.completion_secs.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }
}

struct Peer {
    host: HostId,
    pieces: PieceSet,
    neighbors: Vec<HostId>,
    /// Bytes received from each neighbor last round (tit-for-tat input).
    received_last: BTreeMap<HostId, u64>,
    /// Byte credit toward the next piece, per sender. Partial-piece
    /// credit is retained across rounds (capped at one piece) and pruned
    /// when the sender crashes.
    credit: BTreeMap<HostId, u64>,
    /// Senders this peer caught poisoning chunks (sorted; flows from
    /// banned senders are refused).
    banned: Vec<HostId>,
    done_at: Option<u32>,
    is_seed: bool,
}

/// Converts a receiver's byte `credit` toward one sender into claimed
/// pieces: rarest first among what the sender offers, skipping pieces
/// already claimed from a faster sender this round (`claimed`). Claimed
/// piece indices are appended to `out`. When the sender has nothing new,
/// the remaining credit is **retained** for later rounds, capped at one
/// piece's worth — partial-piece progress survives, but credit cannot
/// pile up unboundedly against a stalled sender.
fn claim_pieces(
    receiver: &PieceSet,
    sender: &PieceSet,
    credit: &mut u64,
    piece_bytes: u64,
    availability: &[u32],
    claimed: &mut PieceSet,
    out: &mut Vec<usize>,
) {
    while *credit >= piece_bytes {
        let wanted = receiver
            .missing_from(sender)
            .filter(|&p| !claimed.contains(p))
            .min_by_key(|&p| (availability[p], p));
        match wanted {
            Some(p) => {
                *credit -= piece_bytes;
                claimed.insert(p);
                out.push(p);
            }
            None => {
                *credit = (*credit).min(piece_bytes);
                break;
            }
        }
    }
}

/// Runs one swarm to completion (or `max_rounds`). Returns the report and
/// the underlay (whose ledger holds the traffic classification for the
/// cost model).
pub fn run_swarm(underlay: Underlay, cfg: SwarmConfig, seed: u64) -> (SwarmReport, Underlay) {
    let mut tracer = Tracer::disabled();
    run_swarm_with(underlay, cfg, seed, &mut tracer)
}

/// Like [`run_swarm`], but records structured trace events into `tracer`:
/// per-peer unchoke decisions (Trace), piece completions and per-round
/// summaries (Debug), and one `swarm.done` event (Info). Timestamps are
/// the round boundaries.
#[allow(clippy::needless_range_loop)] // indices cross-reference several arrays
pub fn run_swarm_with(
    mut underlay: Underlay,
    cfg: SwarmConfig,
    seed: u64,
    tracer: &mut Tracer,
) -> (SwarmReport, Underlay) {
    let mut rng = SimRng::new(seed);
    let n_members = cfg.n_leechers + cfg.n_seeds;
    assert!(
        n_members <= underlay.n_hosts(),
        "swarm larger than host population"
    );
    assert!(cfg.n_seeds >= 1, "a swarm needs a seed");
    // Swarm membership: the first n hosts (host assignment to ASes is
    // already random).
    let members: Vec<HostId> = (0..n_members as u32).map(HostId).collect();
    let mut peers: Vec<Peer> = members
        .iter()
        .enumerate()
        .map(|(i, &h)| Peer {
            host: h,
            pieces: if i < cfg.n_seeds {
                PieceSet::full(cfg.n_pieces)
            } else {
                PieceSet::empty(cfg.n_pieces)
            },
            neighbors: Vec::new(),
            received_last: BTreeMap::new(),
            credit: BTreeMap::new(),
            banned: Vec::new(),
            done_at: None,
            is_seed: i < cfg.n_seeds,
        })
        .collect();
    let index: BTreeMap<HostId, usize> = members.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    let mut tracker = Tracker::new(cfg.tracker);
    // Initial announces. Every leecher opens a causal span here that
    // covers its whole life in the swarm — announce, piece exchange,
    // completion — and closes at `peer.done` (or unfinished at the end of
    // a truncated run). Span ids are allocated in peer order so traces
    // stay byte-identical per seed.
    let mut peer_spans: Vec<Option<u64>> = vec![None; peers.len()];
    for i in 0..peers.len() {
        let who = peers[i].host;
        if !peers[i].is_seed {
            let span = tracer.alloc_span();
            peer_spans[i] = Some(span);
            tracer.set_span(Some(span));
            tracer.emit(
                SimTime::ZERO,
                "bittorrent",
                TraceLevel::Debug,
                "span.open",
                |f| {
                    f.str("span_kind", "peer").u64("peer", who.0 as u64);
                },
            );
        }
        tracker.announce_into(
            &underlay,
            who,
            &members,
            cfg.max_peers,
            &mut rng,
            &mut peers[i].neighbors,
        );
    }
    tracer.clear_provenance();
    // Piece availability for rarest-first.
    let mut availability: Vec<u32> = vec![0; cfg.n_pieces];
    for p in &peers {
        for i in 0..cfg.n_pieces {
            if p.pieces.contains(i) {
                availability[i] += 1;
            }
        }
    }

    // Fault campaign: compile once, then apply each epoch boundary as the
    // round clock crosses it. Crashed members pause; everyone else drops
    // them and re-announces for replacements.
    let compiled = cfg.faults.as_ref().map(|p| p.compile(&underlay.graph));
    let boundaries: Vec<SimTime> = compiled
        .as_ref()
        .map(|c| c.boundaries().to_vec())
        .unwrap_or_default();
    let mut next_boundary = 0usize;
    let mut down = vec![false; peers.len()];
    let mut reannounces = 0u64;
    // `seq` of the most recent `fault.epoch` event — the cause anchor for
    // the recovery re-announces it forces.
    let mut last_fault_seq: Option<u64> = None;
    let mut completed_by_round: Vec<usize> = Vec::new();

    // Round-loop scratch, allocated once and reused every round so the
    // per-round body itself stays allocation-free (the alloc pass in
    // `xtask analyze` ratchets this; see docs/STATIC_ANALYSIS.md).
    let mut was_down = vec![false; peers.len()];
    let mut live: Vec<HostId> = Vec::with_capacity(peers.len());
    let mut unchokes: Vec<Vec<usize>> = vec![Vec::new(); peers.len()];
    let mut interested: Vec<usize> = Vec::new();
    let mut leftovers: Vec<usize> = Vec::new();
    let mut received_this: Vec<BTreeMap<HostId, u64>> = vec![BTreeMap::new(); peers.len()];
    let mut completions: Vec<(usize, usize)> = Vec::new(); // (peer, piece)

    // Flow machinery: the allocator snapshots the capacity graph once;
    // the open-flow table persists across rounds so flow arrivals and
    // departures are traced as deltas. Keys are member-index pairs
    // `(sender, receiver)`, values `(flow id, cumulative bytes)`.
    let mut flow_alloc = FlowAllocator::new(&underlay);
    let mut open_flows: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    let mut next_flow_id = 0u64;
    let mut desired: Vec<(u32, u32)> = Vec::new();
    let mut senders: Vec<(u64, HostId)> = Vec::new();
    let mut claimed = PieceSet::empty(cfg.n_pieces);
    let mut new_claims: Vec<usize> = Vec::new();
    let mut poisoners = cfg.poisoners.clone();
    poisoners.sort_unstable();

    let mut rounds = 0u32;
    let mut payload_bytes = 0u64;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let now = cfg.round.mul(rounds as u64);
        while next_boundary < boundaries.len() && boundaries[next_boundary] <= now {
            let t = boundaries[next_boundary];
            next_boundary += 1;
            let state = compiled
                .as_ref()
                .expect("boundaries only exist for a compiled plan") // lint:allow(expect)
                .state_at(t);
            let repair = underlay.apply_fault_state(&state);
            let fault_seq = tracer.emit(now, "net", TraceLevel::Info, "fault.epoch", |f| {
                f.u64("boundary_us", t.as_micros());
                state.trace_fields(f);
            });
            last_fault_seq = fault_seq.or(last_fault_seq);
            tracer.emit(now, "net", TraceLevel::Info, "routing.repair", |f| {
                f.u64("boundary_us", t.as_micros())
                    .u64("changed_links", repair.changed_links as u64)
                    .u64("dirty_sources", repair.dirty_sources as u64)
                    .u64("sources_total", repair.sources_total as u64)
                    .bool("full_rebuild", repair.full_rebuild);
            });
            // Diff the crash set; the tracker's live pool is the members
            // that still announce under the new state.
            was_down.copy_from_slice(&down);
            live.clear();
            for (i, &h) in members.iter().enumerate() {
                down[i] = state.crashed.binary_search(&h).is_ok();
                if !down[i] {
                    live.push(h);
                }
            }
            // Restored members re-announce (their pre-crash neighborhoods
            // moved on without them); survivors shed dead neighbors and
            // refill from the tracker.
            for i in 0..peers.len() {
                if down[i] || peers[i].done_at.is_some() || peers[i].is_seed {
                    continue;
                }
                let restored = was_down[i];
                let before = peers[i].neighbors.len();
                let d = &down;
                peers[i]
                    .neighbors
                    .retain(|h| index.get(h).map(|&j| !d[j]).unwrap_or(true));
                if restored || peers[i].neighbors.len() < before {
                    let who = peers[i].host;
                    tracker.announce_into(
                        &underlay,
                        who,
                        &live,
                        cfg.max_peers,
                        &mut rng,
                        &mut peers[i].neighbors,
                    );
                    reannounces += 1;
                    let received = peers[i].neighbors.len();
                    tracer.set_span(peer_spans[i]);
                    tracer.set_cause(last_fault_seq);
                    tracer.emit(now, "bittorrent", TraceLevel::Debug, "reannounce", |f| {
                        f.u64("peer", who.0 as u64).u64("received", received as u64);
                    });
                }
            }
            // Partial-chunk credit toward a crashed sender times out: the
            // entry is pruned (the map must not leak across campaigns)
            // and the receiver re-requests those chunks from live
            // senders in the following rounds.
            for i in 0..peers.len() {
                if peers[i].credit.is_empty() {
                    continue;
                }
                let who = peers[i].host;
                tracer.set_span(peer_spans[i]);
                tracer.set_cause(last_fault_seq);
                let (d, idx) = (&down, &index);
                peers[i].credit.retain(|&src, c| {
                    let dead = idx.get(&src).map(|&k| d[k]).unwrap_or(false);
                    if dead && *c > 0 {
                        tracer.emit(
                            now,
                            "bittorrent",
                            TraceLevel::Debug,
                            "chunk.reassign",
                            |f| {
                                f.u64("peer", who.0 as u64)
                                    .u64("sender", src.0 as u64)
                                    .u64("lost_bytes", *c);
                            },
                        );
                    }
                    !dead
                });
            }
            tracer.clear_provenance();
        }
        let all_done = peers.iter().all(|p| p.is_seed || p.done_at.is_some());
        if all_done {
            completed_by_round.push(
                peers
                    .iter()
                    .filter(|p| !p.is_seed && p.done_at.is_some())
                    .count(),
            );
            break;
        }
        // Phase 1: each peer picks its unchoke set (built in place into
        // the reused `unchokes[i]` buffer).
        for i in 0..peers.len() {
            unchokes[i].clear();
            if down[i] {
                continue;
            }
            let me = &peers[i];
            // Interested neighbors: they lack something I have.
            interested.clear();
            interested.extend(
                me.neighbors
                    .iter()
                    .filter_map(|h| index.get(h).copied())
                    .filter(|&j| !down[j])
                    .filter(|&j| peers[j].done_at.is_none() && !peers[j].is_seed)
                    .filter(|&j| peers[j].banned.binary_search(&me.host).is_err())
                    .filter(|&j| peers[j].pieces.is_interested_in(&me.pieces)),
            );
            if interested.is_empty() {
                continue;
            }
            // Tit-for-tat ranking; CAT discounts external reciprocators.
            interested.sort_by_key(|&j| {
                let recv = me.received_last.get(&peers[j].host).copied().unwrap_or(0);
                let scaled = if cfg.cost_aware_choking && !underlay.same_as(me.host, peers[j].host)
                {
                    recv / 2
                } else {
                    recv
                };
                (std::cmp::Reverse(scaled), peers[j].host)
            });
            unchokes[i].extend(interested.iter().copied().take(cfg.unchoke_slots));
            // Optimistic slots: random interested peers outside the set.
            leftovers.clear();
            leftovers.extend(
                interested
                    .iter()
                    .copied()
                    .filter(|j| !unchokes[i].contains(j)),
            );
            for _ in 0..cfg.optimistic_slots {
                if leftovers.is_empty() {
                    break;
                }
                let pick = leftovers[rng.index(leftovers.len())];
                if !unchokes[i].contains(&pick) {
                    unchokes[i].push(pick);
                }
            }
            tracer.set_span(peer_spans[i]);
            tracer.emit(now, "bittorrent", TraceLevel::Trace, "unchoke", |f| {
                f.u64("peer", peers[i].host.0 as u64)
                    .u64("slots", unchokes[i].len() as u64)
                    .bool("cost_aware", cfg.cost_aware_choking);
            });
        }
        tracer.clear_provenance();
        // Phase 2a: the round's unchoke pairs are its flow set. Diff it
        // against the persistent open-flow table (arrivals open, exits
        // close), then recompute the max-min fair allocation: every flow
        // competes for its sender's uplink, its receiver's downlink and
        // the shared AS links on its path — both capacity bugs of the old
        // per-flow `downlink/2` heuristic are impossible by construction.
        let round_secs = cfg.round.as_secs_f64();
        let mut round_bytes = 0u64;
        completions.clear();
        desired.clear();
        for i in 0..peers.len() {
            for &j in &unchokes[i] {
                // lint:allow(cast) — member indices, bounded by the u32 HostId width
                desired.push((i as u32, j as u32));
            }
        }
        desired.sort_unstable();
        for &(i, j) in &desired {
            if let std::collections::btree_map::Entry::Vacant(slot) = open_flows.entry((i, j)) {
                let id = next_flow_id;
                next_flow_id += 1;
                slot.insert((id, 0));
                let (src, dst) = (peers[i as usize].host, peers[j as usize].host);
                tracer.emit(now, "net", TraceLevel::Debug, "flow.open", |f| {
                    f.u64("flow", id)
                        .u64("src", src.0 as u64)
                        .u64("dst", dst.0 as u64);
                });
            }
        }
        open_flows.retain(|&pair, &mut (id, bytes)| {
            if desired.binary_search(&pair).is_ok() {
                true
            } else {
                tracer.emit(now, "net", TraceLevel::Debug, "flow.close", |f| {
                    f.u64("flow", id).u64("bytes", bytes);
                });
                false
            }
        });
        flow_alloc.begin();
        for &(i, j) in &desired {
            let (id, _) = open_flows[&(i, j)];
            let (src, dst) = (peers[i as usize].host, peers[j as usize].host);
            // A fault partition can leave a cross-AS pair unroutable; the
            // rejected flow stays open but stalls (zero bytes) until
            // routing recovers.
            flow_alloc.add_flow(id, src, dst, &underlay);
        }
        flow_alloc.allocate();
        // Move bytes at the allocated rates. Zero-byte flows (stalled
        // routes, zero-capacity endpoints) are skipped outright: no
        // ledger entry, no credit.
        for &(i, j) in &desired {
            let (i, j) = (i as usize, j as usize);
            // lint:allow(cast) — member indices, bounded by the u32 HostId width
            let entry = open_flows
                .get_mut(&(i as u32, j as u32))
                .expect("desired flows are open"); // lint:allow(expect)
            let bytes = flow_alloc.bytes_of(entry.0, round_secs);
            if bytes == 0 {
                continue;
            }
            entry.1 += bytes;
            let (src, dst) = (peers[i].host, peers[j].host);
            underlay.account_transfer(now, src, dst, bytes);
            payload_bytes += bytes;
            round_bytes += bytes;
            *received_this[j].entry(src).or_insert(0) += bytes;
            *peers[j].credit.entry(src).or_insert(0) += bytes;
        }
        // Phase 2b: receivers verify and assemble chunks — fastest
        // senders convert credit first (slow senders only claim pieces
        // nobody faster offered, deprioritizing them), rarest pieces
        // first, each chunk hash-checked before it counts.
        for j in 0..peers.len() {
            if received_this[j].is_empty() {
                continue;
            }
            claimed.clear();
            senders.clear();
            senders.extend(received_this[j].iter().map(|(&h, &b)| (b, h)));
            senders.sort_unstable_by_key(|&(b, h)| (std::cmp::Reverse(b), h));
            for k in 0..senders.len() {
                let src = senders[k].1;
                let i = index[&src];
                if poisoners.binary_search(&src).is_ok() {
                    // Hash verification fails on every chunk from a
                    // poisoner: the credited bytes are discarded, the
                    // sender is banned, and the pieces re-request from
                    // the remaining senders in later rounds.
                    let credit = peers[j].credit.get(&src).copied().unwrap_or(0);
                    let bad = credit / cfg.piece_bytes;
                    if bad > 0 {
                        let who = peers[j].host;
                        tracer.set_span(peer_spans[j]);
                        tracer.emit(
                            now,
                            "bittorrent",
                            TraceLevel::Debug,
                            "chunk.poisoned",
                            |f| {
                                f.u64("peer", who.0 as u64)
                                    .u64("sender", src.0 as u64)
                                    .u64("chunks", bad);
                            },
                        );
                        peers[j].credit.insert(src, 0);
                        if let Err(pos) = peers[j].banned.binary_search(&src) {
                            peers[j].banned.insert(pos, src);
                        }
                    }
                    continue;
                }
                let mut credit = peers[j].credit.get(&src).copied().unwrap_or(0);
                new_claims.clear();
                claim_pieces(
                    &peers[j].pieces,
                    &peers[i].pieces,
                    &mut credit,
                    cfg.piece_bytes,
                    &availability,
                    &mut claimed,
                    &mut new_claims,
                );
                peers[j].credit.insert(src, credit);
                for &p in &new_claims {
                    completions.push((j, p));
                }
            }
        }
        tracer.clear_provenance();
        // Phase 3: commit completions, completion times, re-announces.
        let n_completions = completions.len();
        for &(j, p) in &completions {
            tracer.set_span(peer_spans[j]);
            if peers[j].pieces.insert(p) {
                availability[p] += 1;
                tracer.emit(now, "bittorrent", TraceLevel::Trace, "piece", |f| {
                    f.u64("peer", peers[j].host.0 as u64).u64("piece", p as u64);
                });
            }
            if peers[j].pieces.is_complete() && peers[j].done_at.is_none() {
                peers[j].done_at = Some(rounds);
                let done_seq =
                    tracer.emit(now, "bittorrent", TraceLevel::Debug, "peer.done", |f| {
                        f.u64("peer", peers[j].host.0 as u64)
                            .u64("round", rounds as u64);
                    });
                // The close is caused by the completion event itself.
                tracer.set_cause(done_seq);
                tracer.emit(now, "bittorrent", TraceLevel::Debug, "span.close", |f| {
                    f.str("span_kind", "peer").bool("done", true);
                });
                tracer.set_cause(None);
            }
        }
        tracer.clear_provenance();
        tracer.emit(now, "bittorrent", TraceLevel::Debug, "round", |f| {
            f.u64("round", rounds as u64)
                .u64("pieces", n_completions as u64)
                .u64("bytes", round_bytes);
        });
        for (j, recv) in received_this.iter_mut().enumerate() {
            std::mem::swap(&mut peers[j].received_last, recv);
            recv.clear();
        }
        completed_by_round.push(
            peers
                .iter()
                .filter(|p| !p.is_seed && p.done_at.is_some())
                .count(),
        );
        // Peers with shrunken useful neighborhoods re-announce every 20
        // rounds.
        if rounds.is_multiple_of(20) {
            for i in 0..peers.len() {
                if !down[i] && peers[i].done_at.is_none() && !peers[i].is_seed {
                    let who = peers[i].host;
                    tracker.announce_into(
                        &underlay,
                        who,
                        &members,
                        cfg.max_peers,
                        &mut rng,
                        &mut peers[i].neighbors,
                    );
                }
            }
        }
    }

    let end = cfg.round.mul(rounds as u64);
    // Flows still open when the run stops are closed here so every
    // flow.open has a matching flow.close in the trace.
    for (&_pair, &(id, bytes)) in open_flows.iter() {
        tracer.emit(end, "net", TraceLevel::Debug, "flow.close", |f| {
            f.u64("flow", id).u64("bytes", bytes);
        });
    }
    // Leechers still incomplete when the run stops close their spans
    // unfinished, so span open/close stays balanced even in truncated runs.
    for i in 0..peers.len() {
        if peers[i].done_at.is_none() {
            if let Some(span) = peer_spans[i] {
                tracer.set_span(Some(span));
                tracer.emit(end, "bittorrent", TraceLevel::Debug, "span.close", |f| {
                    f.str("span_kind", "peer").bool("done", false);
                });
            }
        }
    }
    tracer.clear_provenance();
    let completion_secs: Vec<f64> = peers
        .iter()
        .filter(|p| !p.is_seed)
        .filter_map(|p| p.done_at)
        .map(|r| r as f64 * cfg.round.as_secs_f64())
        .collect();
    let report = SwarmReport {
        completed: completion_secs.len(),
        leechers: cfg.n_leechers,
        rounds,
        completion_secs,
        intra_as_fraction: underlay.traffic.locality_fraction(),
        payload_bytes,
        announces: tracker.announces(),
        completed_by_round,
        reannounces,
    };
    underlay.trace_link_totals(end, tracer);
    tracer.emit(end, "bittorrent", TraceLevel::Info, "swarm.done", |f| {
        f.u64("rounds", report.rounds as u64)
            .u64("completed", report.completed as u64)
            .u64("leechers", report.leechers as u64)
            .u64("payload_bytes", report.payload_bytes)
            .u64("announces", report.announces)
            .f64("intra_as_fraction", report.intra_as_fraction);
    });
    (report, underlay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};

    fn underlay(n: usize, seed: u64) -> Underlay {
        let mut rng = SimRng::new(seed);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.4,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    fn small_cfg(tracker: TrackerPolicy) -> SwarmConfig {
        SwarmConfig {
            n_leechers: 60,
            n_seeds: 4,
            n_pieces: 32,
            piece_bytes: 128 * 1024,
            tracker,
            ..Default::default()
        }
    }

    #[test]
    fn swarm_completes() {
        let (report, _) = run_swarm(underlay(80, 1), small_cfg(TrackerPolicy::Random), 11);
        assert_eq!(report.completed, report.leechers, "not everyone finished");
        assert!(report.mean_completion_secs() > 0.0);
        assert!(report.payload_bytes > 0);
        assert!(report.announces >= 64);
    }

    #[test]
    fn bns_increases_locality_without_collapsing_speed() {
        let (random, _) = run_swarm(underlay(80, 2), small_cfg(TrackerPolicy::Random), 13);
        let (bns, _) = run_swarm(
            underlay(80, 2),
            small_cfg(TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            }),
            13,
        );
        assert!(
            bns.intra_as_fraction > 1.5 * random.intra_as_fraction,
            "bns {} vs random {}",
            bns.intra_as_fraction,
            random.intra_as_fraction
        );
        assert_eq!(bns.completed, bns.leechers);
        // Bindal et al.'s headline: locality does not blow up download
        // times. Allow 2x slack.
        assert!(
            bns.mean_completion_secs() < 2.0 * random.mean_completion_secs(),
            "bns {}s vs random {}s",
            bns.mean_completion_secs(),
            random.mean_completion_secs()
        );
    }

    #[test]
    fn cost_aware_tracker_also_localizes() {
        let (random, _) = run_swarm(underlay(80, 3), small_cfg(TrackerPolicy::Random), 17);
        let (cat, _) = run_swarm(underlay(80, 3), small_cfg(TrackerPolicy::CostAware), 17);
        assert!(cat.intra_as_fraction > random.intra_as_fraction);
        assert_eq!(cat.completed, cat.leechers);
    }

    #[test]
    fn seeds_only_swarm_is_a_noop() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.n_leechers = 0;
        cfg.n_seeds = 4;
        let (report, _) = run_swarm(underlay(20, 4), cfg, 19);
        assert_eq!(report.completed, 0);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn max_rounds_bounds_runtime() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.max_rounds = 3;
        let (report, _) = run_swarm(underlay(80, 5), cfg, 23);
        assert_eq!(report.rounds, 3);
        assert!(report.completed < report.leechers);
    }

    #[test]
    fn traced_swarm_runs_are_byte_identical() {
        let trace = || {
            let mut cfg = small_cfg(TrackerPolicy::Random);
            cfg.max_rounds = 30;
            let mut t = Tracer::buffered(TraceLevel::Debug);
            run_swarm_with(underlay(80, 9), cfg, 37, &mut t);
            t.to_jsonl()
        };
        let a = trace();
        assert!(a.contains("\"k\":\"round\""));
        assert!(a.contains("\"k\":\"swarm.done\""));
        assert!(a.contains("\"k\":\"flow.open\""));
        assert!(a.contains("\"k\":\"flow.close\""));
        assert_eq!(a, trace());
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_swarm(underlay(80, 6), small_cfg(TrackerPolicy::Random), 29);
        let (b, _) = run_swarm(underlay(80, 6), small_cfg(TrackerPolicy::Random), 29);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.payload_bytes, b.payload_bytes);
    }

    #[test]
    fn swarm_flow_model_bypasses_route_cache() {
        // The swarm moves bytes with the bandwidth-share model
        // (account_transfer), not per-flow latency queries, so a full run
        // must leave the AS-pair route cache untouched — a regression here
        // means someone added a latency probe to the per-round hot loop.
        let (_, u) = run_swarm(underlay(80, 8), small_cfg(TrackerPolicy::Random), 41);
        assert_eq!(u.route_cache_stats(), (0, 0));
        // The cache still answers post-run analysis queries on the same
        // underlay: any inter-AS pair registers a hit.
        let mut probed = false;
        for a in 0..u.n_hosts() {
            let (ha, hb) = (HostId(a as u32), HostId(((a + 1) % u.n_hosts()) as u32));
            if !u.same_as(ha, hb) {
                assert!(u.rtt_us(ha, hb).is_some());
                probed = true;
                break;
            }
        }
        assert!(probed, "hierarchy population must span multiple ASes");
        let (hits, _) = u.route_cache_stats();
        assert!(hits > 0);
    }

    #[test]
    fn fault_free_runs_report_monotone_progress_and_no_reannounces() {
        let (report, _) = run_swarm(underlay(80, 1), small_cfg(TrackerPolicy::Random), 11);
        assert_eq!(report.reannounces, 0);
        assert_eq!(report.completed_by_round.len(), report.rounds as usize);
        assert!(report.completed_by_round.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*report.completed_by_round.last().unwrap(), report.completed);
    }

    #[test]
    fn crash_epoch_stalls_then_recovery_completes_the_swarm() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        // Crash a third of the leechers (and nobody else) for rounds ~5-30.
        let crashed: Vec<HostId> = (4..24).map(HostId).collect();
        cfg.faults = Some(uap_net::FaultPlan::new().epoch(
            SimTime::from_secs(50),
            SimTime::from_secs(300),
            uap_net::FaultKind::HostCrash {
                hosts: crashed.clone(),
            },
        ));
        let (faulted, _) = run_swarm(underlay(80, 1), cfg, 11);
        // Dead-neighbor loss and crash recovery both force re-announces.
        assert!(
            faulted.reannounces > 0,
            "crash epochs must trigger re-announces"
        );
        // Everyone still finishes once the epoch clears: the crashed
        // leechers resume where they paused and re-announce for neighbors.
        assert_eq!(faulted.completed, faulted.leechers, "swarm must recover");
        let (clean, _) = run_swarm(underlay(80, 1), small_cfg(TrackerPolicy::Random), 11);
        assert!(
            faulted.rounds >= clean.rounds,
            "a crash epoch cannot speed the swarm up ({} < {})",
            faulted.rounds,
            clean.rounds
        );
    }

    #[test]
    fn partition_epoch_stalls_cross_as_flows_then_recovers() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.max_rounds = 20; // entirely inside the partition window
        let base = cfg.clone();
        // Kill 90% of transit links for rounds 3..30.
        cfg.faults = Some(uap_net::FaultPlan::new().epoch(
            SimTime::from_secs(30),
            SimTime::from_secs(300),
            uap_net::FaultKind::TransitDown { p: 0.9, salt: 5 },
        ));
        let (faulted, _) = run_swarm(underlay(80, 1), cfg.clone(), 11);
        let (clean, _) = run_swarm(underlay(80, 1), base, 11);
        // Stalled cross-AS flows move strictly fewer payload bytes while
        // the partition holds.
        assert!(
            faulted.payload_bytes < clean.payload_bytes,
            "faulted {} !< clean {}",
            faulted.payload_bytes,
            clean.payload_bytes
        );
        // Once the window clears, the same campaign completes the swarm.
        cfg.max_rounds = 2_000;
        let (recovered, _) = run_swarm(underlay(80, 1), cfg, 11);
        assert_eq!(
            recovered.completed, recovered.leechers,
            "swarm must recover"
        );
    }

    #[test]
    fn faulted_swarm_runs_are_deterministic_and_traced() {
        let run = || {
            let mut cfg = small_cfg(TrackerPolicy::Random);
            cfg.max_rounds = 60;
            cfg.faults = Some(
                uap_net::FaultPlan::new()
                    .epoch(
                        SimTime::from_secs(40),
                        SimTime::from_secs(120),
                        uap_net::FaultKind::HostCrash {
                            hosts: (0..12).map(HostId).collect(),
                        },
                    )
                    .epoch(
                        SimTime::from_secs(80),
                        SimTime::from_secs(160),
                        uap_net::FaultKind::RandomLinkDown { p: 0.4, salt: 3 },
                    ),
            );
            let mut t = Tracer::buffered(TraceLevel::Debug);
            let (report, u) = run_swarm_with(underlay(80, 9), cfg, 37, &mut t);
            (
                report.completed_by_round.clone(),
                report.reannounces,
                u.route_cache_invalidations(),
                t.to_jsonl(),
            )
        };
        let (curve, reann, invalidations, trace) = run();
        assert!(trace.contains("\"k\":\"fault.epoch\""));
        assert!(trace.contains("\"k\":\"reannounce\""));
        // Three boundaries: two starts, overlapping ends dedup to 120/160.
        assert_eq!(invalidations, 4);
        let (curve2, reann2, inv2, trace2) = run();
        assert_eq!((curve, reann, invalidations), (curve2, reann2, inv2));
        assert_eq!(trace, trace2, "faulted runs must be byte-identical");
    }

    #[test]
    fn cost_aware_choking_flag_shifts_traffic() {
        let mut base = small_cfg(TrackerPolicy::Random);
        let (plain, _) = run_swarm(underlay(80, 7), base.clone(), 31);
        base.cost_aware_choking = true;
        let (cat, _) = run_swarm(underlay(80, 7), base, 31);
        assert!(cat.intra_as_fraction >= plain.intra_as_fraction);
        assert_eq!(cat.completed, cat.leechers);
    }

    #[test]
    fn receiver_downlink_is_never_exceeded() {
        // Eight fat seeds all unchoke the lone leecher; its 6 Mbit/s
        // downlink must bound what it receives per round. The old model
        // capped each flow at downlink/2, so eight senders could deliver
        // 4x the link's capacity.
        let mut u = underlay(20, 1);
        for i in 0..8 {
            u.hosts.hosts[i].up_kbps = 100_000;
        }
        u.hosts.hosts[8].down_kbps = 6_000;
        let cfg = SwarmConfig {
            n_leechers: 1,
            n_seeds: 8,
            max_rounds: 1,
            ..Default::default()
        };
        let (report, _) = run_swarm(u, cfg, 11);
        // Only the leecher receives payload, so payload_bytes is exactly
        // its per-round inflow: <= down_kbps * round_secs (+1% fp slack).
        let cap = (6_000u64 * 1_000 / 8) * 10;
        assert!(
            report.payload_bytes <= cap + cap / 100,
            "leecher received {} bytes against a {}-byte downlink budget",
            report.payload_bytes,
            cap
        );
        assert!(report.payload_bytes > 0, "flows should still move bytes");
    }

    #[test]
    fn zero_uplink_seed_transfers_nothing() {
        // A seed whose uplink is 0 kbps gets a max-min rate of exactly
        // zero; the old `.max(1)` floor let it trickle the whole torrent
        // out one byte per round.
        let mut u = underlay(20, 1);
        u.hosts.hosts[0].up_kbps = 0;
        let cfg = SwarmConfig {
            n_leechers: 6,
            n_seeds: 1,
            max_rounds: 10,
            ..Default::default()
        };
        let (report, _) = run_swarm(u, cfg, 11);
        assert_eq!(report.payload_bytes, 0, "a dead uplink must move nothing");
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn claim_pieces_retains_partial_credit_capped_at_one_piece() {
        let sender = PieceSet::full(4);
        let mut receiver = PieceSet::empty(4);
        let availability = vec![1u32; 4];
        let mut claimed = PieceSet::empty(4);
        let mut out = Vec::new();
        // 2.5 pieces of credit: two claims, half a piece retained.
        let mut credit = 2_560;
        claim_pieces(
            &receiver,
            &sender,
            &mut credit,
            1_024,
            &availability,
            &mut claimed,
            &mut out,
        );
        assert_eq!(out, vec![0, 1]);
        assert_eq!(credit, 512, "partial credit must survive the round");
        // Receiver now holds everything; surplus credit is capped at one
        // piece instead of zeroed, so the next unchoke resumes instantly.
        for p in 0..4 {
            receiver.insert(p);
        }
        let mut credit = 10_000;
        out.clear();
        claim_pieces(
            &receiver,
            &sender,
            &mut credit,
            1_024,
            &availability,
            &mut claimed,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(credit, 1_024, "wasted credit caps at one piece, not zero");
    }

    #[test]
    fn claim_pieces_prefers_rare_pieces_and_never_double_claims() {
        let sender = PieceSet::full(3);
        let receiver = PieceSet::empty(3);
        let availability = vec![5u32, 1, 3];
        let mut claimed = PieceSet::empty(3);
        let mut out = Vec::new();
        let mut credit = 1_024;
        claim_pieces(
            &receiver,
            &sender,
            &mut credit,
            1_024,
            &availability,
            &mut claimed,
            &mut out,
        );
        assert_eq!(out, vec![1], "rarest piece claims first");
        // A second (slower) sender offering the same pieces can only claim
        // what the faster one left behind.
        let mut out2 = Vec::new();
        let mut credit2 = 4_096;
        claim_pieces(
            &receiver,
            &sender,
            &mut credit2,
            1_024,
            &availability,
            &mut claimed,
            &mut out2,
        );
        assert_eq!(out2, vec![2, 0], "claimed pieces are not re-claimed");
    }

    #[test]
    fn poisoned_chunks_are_discarded_and_rerequested_elsewhere() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        // Seed 0 poisons every chunk it serves; three honest seeds remain.
        cfg.poisoners = vec![HostId(0)];
        let mut t = Tracer::buffered(TraceLevel::Debug);
        let (report, _) = run_swarm_with(underlay(80, 9), cfg, 37, &mut t);
        let trace = t.to_jsonl();
        assert!(
            trace.contains("\"k\":\"chunk.poisoned\""),
            "leechers must detect failed hash checks"
        );
        // Banned-sender re-requests route around the poisoner: everyone
        // still finishes from the honest seeds.
        assert_eq!(report.completed, report.leechers, "swarm must complete");
    }

    #[test]
    fn crash_epochs_prune_credit_and_trace_reassignments() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.max_rounds = 60;
        cfg.faults = Some(uap_net::FaultPlan::new().epoch(
            SimTime::from_secs(40),
            SimTime::from_secs(200),
            uap_net::FaultKind::HostCrash {
                hosts: (4..24).map(HostId).collect(),
            },
        ));
        let mut t = Tracer::buffered(TraceLevel::Debug);
        run_swarm_with(underlay(80, 9), cfg, 37, &mut t);
        let trace = t.to_jsonl();
        assert!(
            trace.contains("\"k\":\"chunk.reassign\""),
            "partial chunks held against crashed senders must be reassigned"
        );
    }
}
