//! The round-based swarm simulation.
//!
//! Fluid model: in every round of `round_secs`, each peer unchokes its
//! best reciprocators (tit-for-tat) plus one optimistic slot, splits its
//! uplink evenly across them, and the receivers turn accumulated bytes
//! into rarest-first piece completions. Flows are charged to the underlay
//! ledger, so experiment E10 can bill each tracker policy.

use crate::pieces::PieceSet;
use crate::tracker::{Tracker, TrackerPolicy};
use std::collections::BTreeMap;
use uap_net::{HostId, Underlay};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Swarm parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of leechers (joined at round 0).
    pub n_leechers: usize,
    /// Number of initial seeds.
    pub n_seeds: usize,
    /// Pieces in the torrent.
    pub n_pieces: usize,
    /// Bytes per piece.
    pub piece_bytes: u64,
    /// Peer-set size requested from the tracker.
    pub max_peers: usize,
    /// Regular unchoke slots.
    pub unchoke_slots: usize,
    /// Optimistic unchoke slots.
    pub optimistic_slots: usize,
    /// Round length.
    pub round: SimTime,
    /// Stop after this many rounds even if leechers remain.
    pub max_rounds: u32,
    /// Tracker policy (the experiment's independent variable).
    pub tracker: TrackerPolicy,
    /// CAT-style cost-aware choking: the unchoke ranking discounts bytes
    /// received over inter-AS paths, so same-AS reciprocators win ties
    /// (Yamazaki et al. \[32\]).
    pub cost_aware_choking: bool,
    /// Time-scheduled underlay fault campaign (`None` = fault-free run).
    /// Crashed swarm members pause (no flows, no announces, pieces kept);
    /// partitioned pairs stall their flows until routing recovers.
    pub faults: Option<uap_net::FaultPlan>,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            n_leechers: 100,
            n_seeds: 5,
            n_pieces: 64,
            piece_bytes: 256 * 1024,
            max_peers: 20,
            unchoke_slots: 3,
            optimistic_slots: 1,
            round: SimTime::from_secs(10),
            max_rounds: 2_000,
            tracker: TrackerPolicy::Random,
            cost_aware_choking: false,
            faults: None,
        }
    }
}

/// Results of one swarm run.
#[derive(Clone, Debug)]
pub struct SwarmReport {
    /// Completion time (seconds) per finished leecher.
    pub completion_secs: Vec<f64>,
    /// Leechers that finished before `max_rounds`.
    pub completed: usize,
    /// Leechers total.
    pub leechers: usize,
    /// Rounds simulated.
    pub rounds: u32,
    /// Fraction of payload bytes that stayed intra-AS.
    pub intra_as_fraction: f64,
    /// Total payload bytes moved.
    pub payload_bytes: u64,
    /// Tracker announces served.
    pub announces: u64,
    /// Cumulative finished-leecher count after each round — the progress
    /// curve the resilience experiment plots across fault epochs.
    pub completed_by_round: Vec<usize>,
    /// Re-announces triggered by dead-neighbor loss or crash recovery
    /// (0 in fault-free runs; periodic refreshes are not counted).
    pub reannounces: u64,
}

impl SwarmReport {
    /// Mean completion time in seconds (0 if nobody finished).
    pub fn mean_completion_secs(&self) -> f64 {
        if self.completion_secs.is_empty() {
            0.0
        } else {
            self.completion_secs.iter().sum::<f64>() / self.completion_secs.len() as f64
        }
    }

    /// Median completion time in seconds.
    pub fn median_completion_secs(&self) -> f64 {
        if self.completion_secs.is_empty() {
            return 0.0;
        }
        let mut v = self.completion_secs.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }
}

struct Peer {
    host: HostId,
    pieces: PieceSet,
    neighbors: Vec<HostId>,
    /// Bytes received from each neighbor last round (tit-for-tat input).
    received_last: BTreeMap<HostId, u64>,
    /// Byte credit toward the next piece, per sender.
    credit: BTreeMap<HostId, u64>,
    done_at: Option<u32>,
    is_seed: bool,
}

/// Runs one swarm to completion (or `max_rounds`). Returns the report and
/// the underlay (whose ledger holds the traffic classification for the
/// cost model).
pub fn run_swarm(underlay: Underlay, cfg: SwarmConfig, seed: u64) -> (SwarmReport, Underlay) {
    let mut tracer = Tracer::disabled();
    run_swarm_with(underlay, cfg, seed, &mut tracer)
}

/// Like [`run_swarm`], but records structured trace events into `tracer`:
/// per-peer unchoke decisions (Trace), piece completions and per-round
/// summaries (Debug), and one `swarm.done` event (Info). Timestamps are
/// the round boundaries.
#[allow(clippy::needless_range_loop)] // indices cross-reference several arrays
pub fn run_swarm_with(
    mut underlay: Underlay,
    cfg: SwarmConfig,
    seed: u64,
    tracer: &mut Tracer,
) -> (SwarmReport, Underlay) {
    let mut rng = SimRng::new(seed);
    let n_members = cfg.n_leechers + cfg.n_seeds;
    assert!(
        n_members <= underlay.n_hosts(),
        "swarm larger than host population"
    );
    assert!(cfg.n_seeds >= 1, "a swarm needs a seed");
    // Swarm membership: the first n hosts (host assignment to ASes is
    // already random).
    let members: Vec<HostId> = (0..n_members as u32).map(HostId).collect();
    let mut peers: Vec<Peer> = members
        .iter()
        .enumerate()
        .map(|(i, &h)| Peer {
            host: h,
            pieces: if i < cfg.n_seeds {
                PieceSet::full(cfg.n_pieces)
            } else {
                PieceSet::empty(cfg.n_pieces)
            },
            neighbors: Vec::new(),
            received_last: BTreeMap::new(),
            credit: BTreeMap::new(),
            done_at: None,
            is_seed: i < cfg.n_seeds,
        })
        .collect();
    let index: BTreeMap<HostId, usize> = members.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    let mut tracker = Tracker::new(cfg.tracker);
    // Initial announces. Every leecher opens a causal span here that
    // covers its whole life in the swarm — announce, piece exchange,
    // completion — and closes at `peer.done` (or unfinished at the end of
    // a truncated run). Span ids are allocated in peer order so traces
    // stay byte-identical per seed.
    let mut peer_spans: Vec<Option<u64>> = vec![None; peers.len()];
    for i in 0..peers.len() {
        let who = peers[i].host;
        if !peers[i].is_seed {
            let span = tracer.alloc_span();
            peer_spans[i] = Some(span);
            tracer.set_span(Some(span));
            tracer.emit(
                SimTime::ZERO,
                "bittorrent",
                TraceLevel::Debug,
                "span.open",
                |f| {
                    f.str("span_kind", "peer").u64("peer", who.0 as u64);
                },
            );
        }
        tracker.announce_into(
            &underlay,
            who,
            &members,
            cfg.max_peers,
            &mut rng,
            &mut peers[i].neighbors,
        );
    }
    tracer.clear_provenance();
    // Piece availability for rarest-first.
    let mut availability: Vec<u32> = vec![0; cfg.n_pieces];
    for p in &peers {
        for i in 0..cfg.n_pieces {
            if p.pieces.contains(i) {
                availability[i] += 1;
            }
        }
    }

    // Fault campaign: compile once, then apply each epoch boundary as the
    // round clock crosses it. Crashed members pause; everyone else drops
    // them and re-announces for replacements.
    let compiled = cfg.faults.as_ref().map(|p| p.compile(&underlay.graph));
    let boundaries: Vec<SimTime> = compiled
        .as_ref()
        .map(|c| c.boundaries().to_vec())
        .unwrap_or_default();
    let mut next_boundary = 0usize;
    let mut down = vec![false; peers.len()];
    let mut reannounces = 0u64;
    // `seq` of the most recent `fault.epoch` event — the cause anchor for
    // the recovery re-announces it forces.
    let mut last_fault_seq: Option<u64> = None;
    let mut completed_by_round: Vec<usize> = Vec::new();

    // Round-loop scratch, allocated once and reused every round so the
    // per-round body itself stays allocation-free (the alloc pass in
    // `xtask analyze` ratchets this; see docs/STATIC_ANALYSIS.md).
    let mut was_down = vec![false; peers.len()];
    let mut live: Vec<HostId> = Vec::with_capacity(peers.len());
    let mut unchokes: Vec<Vec<usize>> = vec![Vec::new(); peers.len()];
    let mut interested: Vec<usize> = Vec::new();
    let mut leftovers: Vec<usize> = Vec::new();
    let mut received_this: Vec<BTreeMap<HostId, u64>> = vec![BTreeMap::new(); peers.len()];
    let mut completions: Vec<(usize, usize)> = Vec::new(); // (peer, piece)

    let mut rounds = 0u32;
    let mut payload_bytes = 0u64;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let now = cfg.round.mul(rounds as u64);
        while next_boundary < boundaries.len() && boundaries[next_boundary] <= now {
            let t = boundaries[next_boundary];
            next_boundary += 1;
            let state = compiled
                .as_ref()
                .expect("boundaries only exist for a compiled plan") // lint:allow(expect)
                .state_at(t);
            let repair = underlay.apply_fault_state(&state);
            let fault_seq = tracer.emit(now, "net", TraceLevel::Info, "fault.epoch", |f| {
                f.u64("boundary_us", t.as_micros());
                state.trace_fields(f);
            });
            last_fault_seq = fault_seq.or(last_fault_seq);
            tracer.emit(now, "net", TraceLevel::Info, "routing.repair", |f| {
                f.u64("boundary_us", t.as_micros())
                    .u64("changed_links", repair.changed_links as u64)
                    .u64("dirty_sources", repair.dirty_sources as u64)
                    .u64("sources_total", repair.sources_total as u64)
                    .bool("full_rebuild", repair.full_rebuild);
            });
            // Diff the crash set; the tracker's live pool is the members
            // that still announce under the new state.
            was_down.copy_from_slice(&down);
            live.clear();
            for (i, &h) in members.iter().enumerate() {
                down[i] = state.crashed.binary_search(&h).is_ok();
                if !down[i] {
                    live.push(h);
                }
            }
            // Restored members re-announce (their pre-crash neighborhoods
            // moved on without them); survivors shed dead neighbors and
            // refill from the tracker.
            for i in 0..peers.len() {
                if down[i] || peers[i].done_at.is_some() || peers[i].is_seed {
                    continue;
                }
                let restored = was_down[i];
                let before = peers[i].neighbors.len();
                let d = &down;
                peers[i]
                    .neighbors
                    .retain(|h| index.get(h).map(|&j| !d[j]).unwrap_or(true));
                if restored || peers[i].neighbors.len() < before {
                    let who = peers[i].host;
                    tracker.announce_into(
                        &underlay,
                        who,
                        &live,
                        cfg.max_peers,
                        &mut rng,
                        &mut peers[i].neighbors,
                    );
                    reannounces += 1;
                    let received = peers[i].neighbors.len();
                    tracer.set_span(peer_spans[i]);
                    tracer.set_cause(last_fault_seq);
                    tracer.emit(now, "bittorrent", TraceLevel::Debug, "reannounce", |f| {
                        f.u64("peer", who.0 as u64).u64("received", received as u64);
                    });
                }
            }
            tracer.clear_provenance();
        }
        let all_done = peers.iter().all(|p| p.is_seed || p.done_at.is_some());
        if all_done {
            completed_by_round.push(
                peers
                    .iter()
                    .filter(|p| !p.is_seed && p.done_at.is_some())
                    .count(),
            );
            break;
        }
        // Phase 1: each peer picks its unchoke set (built in place into
        // the reused `unchokes[i]` buffer).
        for i in 0..peers.len() {
            unchokes[i].clear();
            if down[i] {
                continue;
            }
            let me = &peers[i];
            // Interested neighbors: they lack something I have.
            interested.clear();
            interested.extend(
                me.neighbors
                    .iter()
                    .filter_map(|h| index.get(h).copied())
                    .filter(|&j| !down[j])
                    .filter(|&j| peers[j].done_at.is_none() && !peers[j].is_seed)
                    .filter(|&j| peers[j].pieces.is_interested_in(&me.pieces)),
            );
            if interested.is_empty() {
                continue;
            }
            // Tit-for-tat ranking; CAT discounts external reciprocators.
            interested.sort_by_key(|&j| {
                let recv = me.received_last.get(&peers[j].host).copied().unwrap_or(0);
                let scaled = if cfg.cost_aware_choking && !underlay.same_as(me.host, peers[j].host)
                {
                    recv / 2
                } else {
                    recv
                };
                (std::cmp::Reverse(scaled), peers[j].host)
            });
            unchokes[i].extend(interested.iter().copied().take(cfg.unchoke_slots));
            // Optimistic slots: random interested peers outside the set.
            leftovers.clear();
            leftovers.extend(
                interested
                    .iter()
                    .copied()
                    .filter(|j| !unchokes[i].contains(j)),
            );
            for _ in 0..cfg.optimistic_slots {
                if leftovers.is_empty() {
                    break;
                }
                let pick = leftovers[rng.index(leftovers.len())];
                if !unchokes[i].contains(&pick) {
                    unchokes[i].push(pick);
                }
            }
            tracer.set_span(peer_spans[i]);
            tracer.emit(now, "bittorrent", TraceLevel::Trace, "unchoke", |f| {
                f.u64("peer", peers[i].host.0 as u64)
                    .u64("slots", unchokes[i].len() as u64)
                    .bool("cost_aware", cfg.cost_aware_choking);
            });
        }
        tracer.clear_provenance();
        // Phase 2: move bytes along each unchoked flow.
        let round_secs = cfg.round.as_secs_f64();
        let mut round_bytes = 0u64;
        completions.clear();
        for i in 0..peers.len() {
            if unchokes[i].is_empty() {
                continue;
            }
            let up_kbps = underlay.host(peers[i].host).up_kbps as f64;
            let share_bytes =
                (up_kbps * 1_000.0 / 8.0 * round_secs / unchokes[i].len() as f64) as u64;
            for &j in &unchokes[i] {
                // Receiver-side cap: downlink split across its own inflows
                // is approximated by capping at downlink/2.
                let down_cap = (underlay.host(peers[j].host).down_kbps as f64 * 1_000.0 / 8.0
                    * round_secs
                    / 2.0) as u64;
                let flow = share_bytes.min(down_cap).max(1);
                let (src, dst) = (peers[i].host, peers[j].host);
                // A fault partition can leave a cross-AS pair unroutable;
                // the flow stalls until routing recovers.
                if !underlay.same_as(src, dst) && underlay.as_hops(src, dst).is_none() {
                    continue;
                }
                underlay.account_transfer(now, src, dst, flow);
                payload_bytes += flow;
                round_bytes += flow;
                *received_this[j].entry(src).or_insert(0) += flow;
                *peers[j].credit.entry(src).or_insert(0) += flow;
                // Convert credit into pieces (rarest-first among what the
                // sender offers).
                loop {
                    if peers[j].credit.get(&src).copied().unwrap_or(0) < cfg.piece_bytes {
                        break;
                    }
                    let wanted: Option<usize> = {
                        let sender_pieces = &peers[i].pieces;
                        peers[j]
                            .pieces
                            .missing_from(sender_pieces)
                            .filter(|&p| !completions.iter().any(|&(pj, pp)| pj == j && pp == p))
                            .min_by_key(|&p| (availability[p], p))
                    };
                    match wanted {
                        Some(p) => {
                            *peers[j].credit.get_mut(&src).expect("credit entry") -= // lint:allow(expect)
                                cfg.piece_bytes;
                            completions.push((j, p));
                        }
                        None => {
                            // Sender has nothing new; credit is wasted.
                            peers[j].credit.insert(src, 0);
                            break;
                        }
                    }
                }
            }
        }
        // Phase 3: commit completions, completion times, re-announces.
        let n_completions = completions.len();
        for &(j, p) in &completions {
            tracer.set_span(peer_spans[j]);
            if peers[j].pieces.insert(p) {
                availability[p] += 1;
                tracer.emit(now, "bittorrent", TraceLevel::Trace, "piece", |f| {
                    f.u64("peer", peers[j].host.0 as u64).u64("piece", p as u64);
                });
            }
            if peers[j].pieces.is_complete() && peers[j].done_at.is_none() {
                peers[j].done_at = Some(rounds);
                let done_seq =
                    tracer.emit(now, "bittorrent", TraceLevel::Debug, "peer.done", |f| {
                        f.u64("peer", peers[j].host.0 as u64)
                            .u64("round", rounds as u64);
                    });
                // The close is caused by the completion event itself.
                tracer.set_cause(done_seq);
                tracer.emit(now, "bittorrent", TraceLevel::Debug, "span.close", |f| {
                    f.str("span_kind", "peer").bool("done", true);
                });
                tracer.set_cause(None);
            }
        }
        tracer.clear_provenance();
        tracer.emit(now, "bittorrent", TraceLevel::Debug, "round", |f| {
            f.u64("round", rounds as u64)
                .u64("pieces", n_completions as u64)
                .u64("bytes", round_bytes);
        });
        for (j, recv) in received_this.iter_mut().enumerate() {
            std::mem::swap(&mut peers[j].received_last, recv);
            recv.clear();
        }
        completed_by_round.push(
            peers
                .iter()
                .filter(|p| !p.is_seed && p.done_at.is_some())
                .count(),
        );
        // Peers with shrunken useful neighborhoods re-announce every 20
        // rounds.
        if rounds.is_multiple_of(20) {
            for i in 0..peers.len() {
                if !down[i] && peers[i].done_at.is_none() && !peers[i].is_seed {
                    let who = peers[i].host;
                    tracker.announce_into(
                        &underlay,
                        who,
                        &members,
                        cfg.max_peers,
                        &mut rng,
                        &mut peers[i].neighbors,
                    );
                }
            }
        }
    }

    let end = cfg.round.mul(rounds as u64);
    // Leechers still incomplete when the run stops close their spans
    // unfinished, so span open/close stays balanced even in truncated runs.
    for i in 0..peers.len() {
        if peers[i].done_at.is_none() {
            if let Some(span) = peer_spans[i] {
                tracer.set_span(Some(span));
                tracer.emit(end, "bittorrent", TraceLevel::Debug, "span.close", |f| {
                    f.str("span_kind", "peer").bool("done", false);
                });
            }
        }
    }
    tracer.clear_provenance();
    let completion_secs: Vec<f64> = peers
        .iter()
        .filter(|p| !p.is_seed)
        .filter_map(|p| p.done_at)
        .map(|r| r as f64 * cfg.round.as_secs_f64())
        .collect();
    let report = SwarmReport {
        completed: completion_secs.len(),
        leechers: cfg.n_leechers,
        rounds,
        completion_secs,
        intra_as_fraction: underlay.traffic.locality_fraction(),
        payload_bytes,
        announces: tracker.announces(),
        completed_by_round,
        reannounces,
    };
    underlay.trace_link_totals(end, tracer);
    tracer.emit(end, "bittorrent", TraceLevel::Info, "swarm.done", |f| {
        f.u64("rounds", report.rounds as u64)
            .u64("completed", report.completed as u64)
            .u64("leechers", report.leechers as u64)
            .u64("payload_bytes", report.payload_bytes)
            .u64("announces", report.announces)
            .f64("intra_as_fraction", report.intra_as_fraction);
    });
    (report, underlay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};

    fn underlay(n: usize, seed: u64) -> Underlay {
        let mut rng = SimRng::new(seed);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.4,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    fn small_cfg(tracker: TrackerPolicy) -> SwarmConfig {
        SwarmConfig {
            n_leechers: 60,
            n_seeds: 4,
            n_pieces: 32,
            piece_bytes: 128 * 1024,
            tracker,
            ..Default::default()
        }
    }

    #[test]
    fn swarm_completes() {
        let (report, _) = run_swarm(underlay(80, 1), small_cfg(TrackerPolicy::Random), 11);
        assert_eq!(report.completed, report.leechers, "not everyone finished");
        assert!(report.mean_completion_secs() > 0.0);
        assert!(report.payload_bytes > 0);
        assert!(report.announces >= 64);
    }

    #[test]
    fn bns_increases_locality_without_collapsing_speed() {
        let (random, _) = run_swarm(underlay(80, 2), small_cfg(TrackerPolicy::Random), 13);
        let (bns, _) = run_swarm(
            underlay(80, 2),
            small_cfg(TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            }),
            13,
        );
        assert!(
            bns.intra_as_fraction > 1.5 * random.intra_as_fraction,
            "bns {} vs random {}",
            bns.intra_as_fraction,
            random.intra_as_fraction
        );
        assert_eq!(bns.completed, bns.leechers);
        // Bindal et al.'s headline: locality does not blow up download
        // times. Allow 2x slack.
        assert!(
            bns.mean_completion_secs() < 2.0 * random.mean_completion_secs(),
            "bns {}s vs random {}s",
            bns.mean_completion_secs(),
            random.mean_completion_secs()
        );
    }

    #[test]
    fn cost_aware_tracker_also_localizes() {
        let (random, _) = run_swarm(underlay(80, 3), small_cfg(TrackerPolicy::Random), 17);
        let (cat, _) = run_swarm(underlay(80, 3), small_cfg(TrackerPolicy::CostAware), 17);
        assert!(cat.intra_as_fraction > random.intra_as_fraction);
        assert_eq!(cat.completed, cat.leechers);
    }

    #[test]
    fn seeds_only_swarm_is_a_noop() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.n_leechers = 0;
        cfg.n_seeds = 4;
        let (report, _) = run_swarm(underlay(20, 4), cfg, 19);
        assert_eq!(report.completed, 0);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn max_rounds_bounds_runtime() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.max_rounds = 3;
        let (report, _) = run_swarm(underlay(80, 5), cfg, 23);
        assert_eq!(report.rounds, 3);
        assert!(report.completed < report.leechers);
    }

    #[test]
    fn traced_swarm_runs_are_byte_identical() {
        let trace = || {
            let mut cfg = small_cfg(TrackerPolicy::Random);
            cfg.max_rounds = 30;
            let mut t = Tracer::buffered(TraceLevel::Debug);
            run_swarm_with(underlay(80, 9), cfg, 37, &mut t);
            t.to_jsonl()
        };
        let a = trace();
        assert!(a.contains("\"k\":\"round\""));
        assert!(a.contains("\"k\":\"swarm.done\""));
        assert_eq!(a, trace());
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_swarm(underlay(80, 6), small_cfg(TrackerPolicy::Random), 29);
        let (b, _) = run_swarm(underlay(80, 6), small_cfg(TrackerPolicy::Random), 29);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.payload_bytes, b.payload_bytes);
    }

    #[test]
    fn swarm_flow_model_bypasses_route_cache() {
        // The swarm moves bytes with the bandwidth-share model
        // (account_transfer), not per-flow latency queries, so a full run
        // must leave the AS-pair route cache untouched — a regression here
        // means someone added a latency probe to the per-round hot loop.
        let (_, u) = run_swarm(underlay(80, 8), small_cfg(TrackerPolicy::Random), 41);
        assert_eq!(u.route_cache_stats(), (0, 0));
        // The cache still answers post-run analysis queries on the same
        // underlay: any inter-AS pair registers a hit.
        let mut probed = false;
        for a in 0..u.n_hosts() {
            let (ha, hb) = (HostId(a as u32), HostId(((a + 1) % u.n_hosts()) as u32));
            if !u.same_as(ha, hb) {
                assert!(u.rtt_us(ha, hb).is_some());
                probed = true;
                break;
            }
        }
        assert!(probed, "hierarchy population must span multiple ASes");
        let (hits, _) = u.route_cache_stats();
        assert!(hits > 0);
    }

    #[test]
    fn fault_free_runs_report_monotone_progress_and_no_reannounces() {
        let (report, _) = run_swarm(underlay(80, 1), small_cfg(TrackerPolicy::Random), 11);
        assert_eq!(report.reannounces, 0);
        assert_eq!(report.completed_by_round.len(), report.rounds as usize);
        assert!(report.completed_by_round.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*report.completed_by_round.last().unwrap(), report.completed);
    }

    #[test]
    fn crash_epoch_stalls_then_recovery_completes_the_swarm() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        // Crash a third of the leechers (and nobody else) for rounds ~5-30.
        let crashed: Vec<HostId> = (4..24).map(HostId).collect();
        cfg.faults = Some(uap_net::FaultPlan::new().epoch(
            SimTime::from_secs(50),
            SimTime::from_secs(300),
            uap_net::FaultKind::HostCrash {
                hosts: crashed.clone(),
            },
        ));
        let (faulted, _) = run_swarm(underlay(80, 1), cfg, 11);
        // Dead-neighbor loss and crash recovery both force re-announces.
        assert!(
            faulted.reannounces > 0,
            "crash epochs must trigger re-announces"
        );
        // Everyone still finishes once the epoch clears: the crashed
        // leechers resume where they paused and re-announce for neighbors.
        assert_eq!(faulted.completed, faulted.leechers, "swarm must recover");
        let (clean, _) = run_swarm(underlay(80, 1), small_cfg(TrackerPolicy::Random), 11);
        assert!(
            faulted.rounds >= clean.rounds,
            "a crash epoch cannot speed the swarm up ({} < {})",
            faulted.rounds,
            clean.rounds
        );
    }

    #[test]
    fn partition_epoch_stalls_cross_as_flows_then_recovers() {
        let mut cfg = small_cfg(TrackerPolicy::Random);
        cfg.max_rounds = 20; // entirely inside the partition window
        let base = cfg.clone();
        // Kill 90% of transit links for rounds 3..30.
        cfg.faults = Some(uap_net::FaultPlan::new().epoch(
            SimTime::from_secs(30),
            SimTime::from_secs(300),
            uap_net::FaultKind::TransitDown { p: 0.9, salt: 5 },
        ));
        let (faulted, _) = run_swarm(underlay(80, 1), cfg.clone(), 11);
        let (clean, _) = run_swarm(underlay(80, 1), base, 11);
        // Stalled cross-AS flows move strictly fewer payload bytes while
        // the partition holds.
        assert!(
            faulted.payload_bytes < clean.payload_bytes,
            "faulted {} !< clean {}",
            faulted.payload_bytes,
            clean.payload_bytes
        );
        // Once the window clears, the same campaign completes the swarm.
        cfg.max_rounds = 2_000;
        let (recovered, _) = run_swarm(underlay(80, 1), cfg, 11);
        assert_eq!(
            recovered.completed, recovered.leechers,
            "swarm must recover"
        );
    }

    #[test]
    fn faulted_swarm_runs_are_deterministic_and_traced() {
        let run = || {
            let mut cfg = small_cfg(TrackerPolicy::Random);
            cfg.max_rounds = 60;
            cfg.faults = Some(
                uap_net::FaultPlan::new()
                    .epoch(
                        SimTime::from_secs(40),
                        SimTime::from_secs(120),
                        uap_net::FaultKind::HostCrash {
                            hosts: (0..12).map(HostId).collect(),
                        },
                    )
                    .epoch(
                        SimTime::from_secs(80),
                        SimTime::from_secs(160),
                        uap_net::FaultKind::RandomLinkDown { p: 0.4, salt: 3 },
                    ),
            );
            let mut t = Tracer::buffered(TraceLevel::Debug);
            let (report, u) = run_swarm_with(underlay(80, 9), cfg, 37, &mut t);
            (
                report.completed_by_round.clone(),
                report.reannounces,
                u.route_cache_invalidations(),
                t.to_jsonl(),
            )
        };
        let (curve, reann, invalidations, trace) = run();
        assert!(trace.contains("\"k\":\"fault.epoch\""));
        assert!(trace.contains("\"k\":\"reannounce\""));
        // Three boundaries: two starts, overlapping ends dedup to 120/160.
        assert_eq!(invalidations, 4);
        let (curve2, reann2, inv2, trace2) = run();
        assert_eq!((curve, reann, invalidations), (curve2, reann2, inv2));
        assert_eq!(trace, trace2, "faulted runs must be byte-identical");
    }

    #[test]
    fn cost_aware_choking_flag_shifts_traffic() {
        let mut base = small_cfg(TrackerPolicy::Random);
        let (plain, _) = run_swarm(underlay(80, 7), base.clone(), 31);
        base.cost_aware_choking = true;
        let (cat, _) = run_swarm(underlay(80, 7), base, 31);
        assert!(cat.intra_as_fraction >= plain.intra_as_fraction);
        assert_eq!(cat.completed, cat.leechers);
    }
}
