//! The tracker and its peer-selection policies.
//!
//! The tracker is the one central component of a BitTorrent swarm and the
//! cheapest place to inject ISP-location awareness — which is exactly what
//! Bindal et al. \[3\] proposed (and what the paper's §6 notes can put the
//! ISP "in a delicate situation due to privacy issues" when the ISP itself
//! operates it).

use uap_net::{HostId, Underlay};
use uap_sim::SimRng;

/// How the tracker composes an announce response.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrackerPolicy {
    /// Uniform random subset of the swarm (vanilla tracker).
    Random,
    /// Biased neighbor selection: up to `internal` same-AS peers, the rest
    /// (`external`) random outsiders — Bindal et al. recommend keeping a
    /// few external connections so rare pieces can still enter the AS.
    Bns {
        /// Same-AS peers per response.
        internal: usize,
        /// Random external peers per response.
        external: usize,
    },
    /// Cost-aware: rank candidates by AS-hop distance (a proxy for transit
    /// cost) and return the cheapest, plus a couple of random entries for
    /// diversity.
    CostAware,
}

/// The tracker state: the swarm membership, plus reusable candidate
/// scratch so the per-announce path stays allocation-free (announces
/// fire from the swarm's per-round re-announce loops).
pub struct Tracker {
    policy: TrackerPolicy,
    announces: u64,
    pool: Vec<HostId>,
    scored: Vec<(u32, HostId)>,
}

impl Tracker {
    /// Creates a tracker with the given policy.
    pub fn new(policy: TrackerPolicy) -> Tracker {
        Tracker {
            policy,
            announces: 0,
            pool: Vec::new(),
            scored: Vec::new(),
        }
    }

    /// Announces served.
    pub fn announces(&self) -> u64 {
        self.announces
    }

    /// Composes a peer list of up to `want` members for `who`, drawn from
    /// `swarm` (which must not contain `who`).
    pub fn announce(
        &mut self,
        underlay: &Underlay,
        who: HostId,
        swarm: &[HostId],
        want: usize,
        rng: &mut SimRng,
    ) -> Vec<HostId> {
        let mut out = Vec::new();
        self.announce_into(underlay, who, swarm, want, rng, &mut out);
        out
    }

    /// Like [`Tracker::announce`], but clears and fills `out` instead of
    /// allocating a response — the swarm reuses each peer's neighbor
    /// buffer across re-announces.
    pub fn announce_into(
        &mut self,
        underlay: &Underlay,
        who: HostId,
        swarm: &[HostId],
        want: usize,
        rng: &mut SimRng,
        out: &mut Vec<HostId>,
    ) {
        self.announces += 1;
        out.clear();
        let pool = &mut self.pool;
        pool.clear();
        pool.extend(swarm.iter().copied().filter(|&p| p != who));
        match self.policy {
            TrackerPolicy::Random => {
                rng.shuffle(pool);
                out.extend(pool.iter().copied().take(want));
            }
            TrackerPolicy::Bns { internal, external } => {
                rng.shuffle(pool);
                out.extend(
                    pool.iter()
                        .copied()
                        .filter(|&p| underlay.same_as(who, p))
                        .take(internal.min(want)),
                );
                let room = want.saturating_sub(out.len());
                out.extend(
                    pool.iter()
                        .copied()
                        .filter(|&p| !underlay.same_as(who, p))
                        .take(external.min(room)),
                );
                // Backfill with whatever remains if the response is short.
                if out.len() < want {
                    for &p in pool.iter() {
                        if out.len() >= want {
                            break;
                        }
                        if !out.contains(&p) {
                            out.push(p);
                        }
                    }
                }
            }
            TrackerPolicy::CostAware => {
                rng.shuffle(pool);
                let scored = &mut self.scored;
                scored.clear();
                scored.extend(
                    pool.iter()
                        .map(|&p| (underlay.as_hops(who, p).unwrap_or(u32::MAX), p)),
                );
                scored.sort_by_key(|&(h, _)| h);
                let cheap = want.saturating_sub(2);
                out.extend(scored.iter().take(cheap).map(|&(_, p)| p));
                // Two random entries for piece diversity.
                for &(_, p) in scored.iter().skip(cheap) {
                    if out.len() >= want {
                        break;
                    }
                    if rng.chance(0.3) {
                        out.push(p);
                    }
                }
                for &(_, p) in scored.iter().skip(cheap) {
                    if out.len() >= want {
                        break;
                    }
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(91);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.2,
            tier3_peering_prob: 0.2,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(200),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn random_policy_returns_want_distinct_peers() {
        let u = underlay();
        let mut t = Tracker::new(TrackerPolicy::Random);
        let swarm: Vec<HostId> = u.hosts.ids().collect();
        let mut rng = SimRng::new(92);
        let got = t.announce(&u, HostId(0), &swarm, 30, &mut rng);
        assert_eq!(got.len(), 30);
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(!got.contains(&HostId(0)));
        assert_eq!(t.announces(), 1);
    }

    #[test]
    fn bns_mostly_internal() {
        let u = underlay();
        let mut t = Tracker::new(TrackerPolicy::Bns {
            internal: 25,
            external: 5,
        });
        let swarm: Vec<HostId> = u.hosts.ids().collect();
        let mut rng = SimRng::new(93);
        let who = HostId(0);
        let got = t.announce(&u, who, &swarm, 30, &mut rng);
        let internal = got.iter().filter(|&&p| u.same_as(who, p)).count();
        let avail = u.hosts.in_as(u.hosts.as_of(who)).len() - 1;
        assert_eq!(
            internal,
            avail.min(25),
            "internal {internal}, avail {avail}"
        );
        // External connections are present (piece diversity).
        assert!(got.len() > internal);
    }

    #[test]
    fn bns_backfills_when_as_is_small() {
        let u = underlay();
        let mut t = Tracker::new(TrackerPolicy::Bns {
            internal: 25,
            external: 5,
        });
        // Tiny swarm from one other AS: response still fills up.
        let who = HostId(0);
        let swarm: Vec<HostId> = u
            .hosts
            .ids()
            .filter(|&h| !u.same_as(who, h))
            .take(10)
            .collect();
        let mut rng = SimRng::new(94);
        let got = t.announce(&u, who, &swarm, 8, &mut rng);
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn cost_aware_prefers_low_hops() {
        let u = underlay();
        let mut t = Tracker::new(TrackerPolicy::CostAware);
        let swarm: Vec<HostId> = u.hosts.ids().collect();
        let mut rng = SimRng::new(95);
        let who = HostId(3);
        let got = t.announce(&u, who, &swarm, 20, &mut rng);
        assert_eq!(got.len(), 20);
        let mean_hops: f64 = got
            .iter()
            .map(|&p| u.as_hops(who, p).unwrap() as f64)
            .sum::<f64>()
            / got.len() as f64;
        // Compare with a random response.
        let mut tr = Tracker::new(TrackerPolicy::Random);
        let rand = tr.announce(&u, who, &swarm, 20, &mut rng);
        let mean_rand: f64 = rand
            .iter()
            .map(|&p| u.as_hops(who, p).unwrap() as f64)
            .sum::<f64>()
            / rand.len() as f64;
        assert!(mean_hops < mean_rand, "{mean_hops} !< {mean_rand}");
    }

    #[test]
    fn small_swarm_never_panics() {
        let u = underlay();
        for policy in [
            TrackerPolicy::Random,
            TrackerPolicy::Bns {
                internal: 3,
                external: 2,
            },
            TrackerPolicy::CostAware,
        ] {
            let mut t = Tracker::new(policy);
            let mut rng = SimRng::new(96);
            assert!(t.announce(&u, HostId(0), &[], 10, &mut rng).is_empty());
            let one = t.announce(&u, HostId(0), &[HostId(1)], 10, &mut rng);
            assert_eq!(one, vec![HostId(1)]);
        }
    }
}
