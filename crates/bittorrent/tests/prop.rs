//! Property-based tests for piece bookkeeping and tracker responses.

use proptest::prelude::*;
use uap_bittorrent::tracker::Tracker;
use uap_bittorrent::{PieceSet, TrackerPolicy};
use uap_net::{HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use uap_sim::SimRng;

fn underlay(seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let g = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 2,
        tier2_peering_prob: 0.2,
        tier3_peering_prob: 0.2,
    })
    .build(&mut rng);
    Underlay::build(
        g,
        &PopulationSpec::leaf(60),
        UnderlayConfig::default(),
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PieceSet: insert sequences never lose pieces, counts stay exact,
    /// completion equals having all pieces.
    #[test]
    fn pieceset_never_loses_pieces(n in 1usize..300, inserts in prop::collection::vec(0usize..300, 0..400)) {
        let mut s = PieceSet::empty(n);
        let mut reference = std::collections::HashSet::new();
        for &i in inserts.iter().filter(|&&i| i < n) {
            s.insert(i);
            reference.insert(i);
        }
        prop_assert_eq!(s.len(), reference.len());
        for i in 0..n {
            prop_assert_eq!(s.contains(i), reference.contains(&i));
        }
        prop_assert_eq!(s.is_complete(), reference.len() == n);
        // missing_from(full) lists exactly the complement.
        let full = PieceSet::full(n);
        let missing: Vec<usize> = s.missing_from(&full).collect();
        prop_assert_eq!(missing.len(), n - reference.len());
    }

    /// Interest is exactly "other has something I lack".
    #[test]
    fn interest_matches_definition(n in 1usize..128, a in prop::collection::vec(any::<bool>(), 1..128), b in prop::collection::vec(any::<bool>(), 1..128)) {
        let n = n.min(a.len()).min(b.len());
        let mut sa = PieceSet::empty(n);
        let mut sb = PieceSet::empty(n);
        let mut expect = false;
        for i in 0..n {
            if a[i] {
                sa.insert(i);
            }
            if b[i] {
                sb.insert(i);
            }
            if b[i] && !a[i] {
                expect = true;
            }
        }
        prop_assert_eq!(sa.is_interested_in(&sb), expect);
    }

    /// Tracker responses: never include the requester, never exceed the
    /// requested size, never contain duplicates — under every policy.
    #[test]
    fn tracker_response_invariants(seed in any::<u64>(), want in 0usize..40, swarm_size in 0usize..60) {
        let u = underlay(11);
        let mut rng = SimRng::new(seed);
        let who = HostId(0);
        let swarm: Vec<HostId> = (1..=swarm_size as u32).map(HostId).collect();
        for policy in [
            TrackerPolicy::Random,
            TrackerPolicy::Bns { internal: 10, external: 5 },
            TrackerPolicy::CostAware,
        ] {
            let mut t = Tracker::new(policy);
            let got = t.announce(&u, who, &swarm, want, &mut rng);
            prop_assert!(got.len() <= want);
            prop_assert!(got.len() <= swarm.len());
            prop_assert!(!got.contains(&who));
            let mut sorted = got.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), got.len(), "duplicates under {:?}", policy);
            // Response fills up when supply allows.
            prop_assert_eq!(got.len(), want.min(swarm.len()));
        }
    }
}
