//! Landmark binning (Ratnasamy et al., "Topologically-aware overlay
//! construction and server selection" \[26\]).
//!
//! The cheapest proximity estimator in the paper's latency taxonomy: a node
//! pings the `m` landmarks once, sorts them by RTT, and additionally
//! quantizes each RTT into a coarse level. Nodes with identical or similar
//! bin strings are topologically close. No coordinates, no maintenance —
//! but also only ordinal information.

/// A node's landmark bin: the landmark ordering plus quantized RTT levels.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LandmarkBins {
    /// Landmark indices sorted by increasing RTT.
    pub order: Vec<u8>,
    /// Quantized RTT level per landmark (indexed by landmark, not rank).
    pub levels: Vec<u8>,
}

/// Default level boundaries in milliseconds (as in the original paper:
/// a small set of coarse classes).
pub const DEFAULT_LEVELS_MS: [f64; 3] = [100.0, 200.0, 400.0];

impl LandmarkBins {
    /// Bins a node from its RTTs (milliseconds) to the landmarks, using
    /// [`DEFAULT_LEVELS_MS`].
    pub fn from_rtts(rtts_ms: &[f64]) -> LandmarkBins {
        Self::from_rtts_with_levels(rtts_ms, &DEFAULT_LEVELS_MS)
    }

    /// Bins a node with custom level boundaries (ascending).
    ///
    /// # Panics
    /// Panics if there are more than 255 landmarks.
    pub fn from_rtts_with_levels(rtts_ms: &[f64], boundaries: &[f64]) -> LandmarkBins {
        assert!(rtts_ms.len() <= 255, "too many landmarks for u8 indices");
        let mut order: Vec<u8> = (0..rtts_ms.len() as u8).collect();
        order.sort_by(|&a, &b| {
            rtts_ms[a as usize]
                .total_cmp(&rtts_ms[b as usize])
                .then(a.cmp(&b))
        });
        let levels = rtts_ms
            .iter()
            .map(|&r| boundaries.iter().filter(|&&b| r >= b).count() as u8)
            .collect();
        LandmarkBins { order, levels }
    }

    /// Similarity score with another bin in `[0, m + m]`: the length of the
    /// common ordering prefix plus the number of landmarks in the same
    /// level. Higher means (likely) closer.
    pub fn similarity(&self, other: &LandmarkBins) -> usize {
        let prefix = self
            .order
            .iter()
            .zip(&other.order)
            .take_while(|(a, b)| a == b)
            .count();
        let levels = self
            .levels
            .iter()
            .zip(&other.levels)
            .filter(|(a, b)| a == b)
            .count();
        prefix + levels
    }

    /// Whether two nodes share the identical bin (same ordering and all
    /// levels) — the original paper's notion of "same bin".
    pub fn same_bin(&self, other: &LandmarkBins) -> bool {
        self.order == other.order && self.levels == other.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_rtts() {
        let b = LandmarkBins::from_rtts(&[250.0, 30.0, 120.0]);
        assert_eq!(b.order, vec![1, 2, 0]);
        assert_eq!(b.levels, vec![2, 0, 1]);
    }

    #[test]
    fn ties_break_by_index() {
        let b = LandmarkBins::from_rtts(&[50.0, 50.0, 50.0]);
        assert_eq!(b.order, vec![0, 1, 2]);
    }

    #[test]
    fn nearby_nodes_share_bins() {
        let a = LandmarkBins::from_rtts(&[30.0, 150.0, 300.0]);
        let close = LandmarkBins::from_rtts(&[35.0, 160.0, 290.0]);
        let far = LandmarkBins::from_rtts(&[310.0, 40.0, 120.0]);
        assert!(a.same_bin(&close));
        assert!(!a.same_bin(&far));
        assert!(a.similarity(&close) > a.similarity(&far));
    }

    #[test]
    fn similarity_is_symmetric_and_maximal_on_self() {
        let a = LandmarkBins::from_rtts(&[10.0, 90.0, 170.0, 500.0]);
        let b = LandmarkBins::from_rtts(&[500.0, 90.0, 10.0, 170.0]);
        assert_eq!(a.similarity(&b), b.similarity(&a));
        assert_eq!(a.similarity(&a), 4 + 4);
    }

    #[test]
    fn custom_boundaries() {
        let b = LandmarkBins::from_rtts_with_levels(&[5.0, 15.0, 25.0], &[10.0, 20.0]);
        assert_eq!(b.levels, vec![0, 1, 2]);
    }
}
