//! Embedding accuracy metrics.
//!
//! Shared by the Vivaldi and ICS evaluation harnesses (experiment E3): how
//! well do predicted latencies track measured ones?

/// Relative error of one prediction: `|predicted − actual| / actual`.
/// Returns 0 when both are 0, and infinity when only the actual is 0.
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - actual).abs() / actual
    }
}

/// Kruskal stress-1 of a set of `(predicted, actual)` pairs:
/// `sqrt( Σ(p−a)² / Σa² )`. Zero means a perfect embedding.
pub fn stress(pairs: &[(f64, f64)]) -> f64 {
    let num: f64 = pairs.iter().map(|(p, a)| (p - a) * (p - a)).sum();
    let den: f64 = pairs.iter().map(|(_, a)| a * a).sum();
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

/// Summary statistics of an embedding's accuracy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EmbeddingQuality {
    /// Number of evaluated pairs.
    pub n: usize,
    /// Mean relative error.
    pub mean_rel_err: f64,
    /// Median relative error (the headline metric of the Vivaldi paper).
    pub median_rel_err: f64,
    /// 90th-percentile relative error.
    pub p90_rel_err: f64,
    /// Kruskal stress-1.
    pub stress: f64,
}

impl EmbeddingQuality {
    /// Evaluates a set of `(predicted, actual)` latency pairs. Pairs with
    /// `actual == 0` are skipped (self-pairs carry no information).
    pub fn evaluate(pairs: &[(f64, f64)]) -> EmbeddingQuality {
        let valid: Vec<(f64, f64)> = pairs.iter().copied().filter(|&(_, a)| a > 0.0).collect();
        if valid.is_empty() {
            return EmbeddingQuality {
                n: 0,
                mean_rel_err: 0.0,
                median_rel_err: 0.0,
                p90_rel_err: 0.0,
                stress: 0.0,
            };
        }
        let mut errs: Vec<f64> = valid.iter().map(|&(p, a)| relative_error(p, a)).collect();
        errs.sort_by(|a, b| a.total_cmp(b));
        let n = errs.len();
        let q = |f: f64| errs[(((f * n as f64).ceil() as usize).clamp(1, n)) - 1];
        EmbeddingQuality {
            n,
            mean_rel_err: errs.iter().sum::<f64>() / n as f64,
            median_rel_err: q(0.5),
            p90_rel_err: q(0.9),
            stress: stress(&valid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_cases() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn perfect_embedding_is_zero() {
        let pairs: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, i as f64)).collect();
        let q = EmbeddingQuality::evaluate(&pairs);
        assert_eq!(q.mean_rel_err, 0.0);
        assert_eq!(q.median_rel_err, 0.0);
        assert_eq!(q.stress, 0.0);
        assert_eq!(q.n, 9);
    }

    #[test]
    fn stress_matches_hand_computation() {
        // predictions 1,2 vs actual 2,2: num = 1, den = 8.
        let s = stress(&[(1.0, 2.0), (2.0, 2.0)]);
        assert!((s - (1.0f64 / 8.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_ordered() {
        let pairs: Vec<(f64, f64)> = (1..=100).map(|i| (100.0 + i as f64, 100.0)).collect();
        let q = EmbeddingQuality::evaluate(&pairs);
        assert!(q.median_rel_err <= q.p90_rel_err);
        assert!(q.median_rel_err > 0.0);
    }

    #[test]
    fn self_pairs_skipped() {
        let q = EmbeddingQuality::evaluate(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(q.n, 1);
    }

    #[test]
    fn empty_input() {
        let q = EmbeddingQuality::evaluate(&[]);
        assert_eq!(q.n, 0);
        assert_eq!(q.stress, 0.0);
    }
}
