//! The Internet Coordinate System of Lim, Hou and Choi \[20\].
//!
//! This is the landmark-based predictor the paper reprints as Figure 4.
//! A small set of *beacon nodes* measures the full pairwise RTT matrix; an
//! administrative node applies PCA to that matrix and publishes a scaled
//! *transformation matrix*. Any host then embeds itself by measuring RTTs
//! to the beacons and taking one matrix–vector product.
//!
//! Construction (steps S1–S5 of the excerpt):
//!
//! 1. beacons measure the `m × m` distance matrix `D`;
//! 2. eigendecompose `D` (symmetric), order components by `|λ|`;
//! 3. pick the dimension `n` by a cumulative-variation threshold (or fix it);
//! 4. unscaled coordinates `cᵢ = Uₙᵀ dᵢ` where `dᵢ` is beacon `i`'s column;
//! 5. least-squares scaling `α = Σ lᵢⱼ·dᵢⱼ / Σ lᵢⱼ²` over beacon pairs,
//!    giving the published transform `Ūₙ = α·Uₙ` and beacon coordinates
//!    `c̄ᵢ = Ūₙᵀ dᵢ`.
//!
//! Host embedding (steps H1–H3): measure the distance vector `l` to all
//! beacons and compute `x = Ūₙᵀ l`. Predicted distance between hosts is the
//! L2 distance of their coordinates.
//!
//! The worked Examples 4 and 5 of the excerpt (α = 0.6, c̄₁ = [−2.1, 1.5],
//! predicted distances 0.94 / 3.42 / 10.01, and for n = 4: α = 0.5927,
//! 0.8383, 3.0224) are unit tests below.

use crate::matrix::{l2, Matrix};

/// A built ICS: the transformation matrix plus the beacon coordinates.
#[derive(Clone, Debug)]
pub struct IcsSystem {
    /// `Ūₙ`, an `m × n` matrix (beacons × dimensions).
    transform: Matrix,
    beacon_coords: Vec<Vec<f64>>,
    alpha: f64,
    eigenvalues: Vec<f64>,
}

impl IcsSystem {
    /// Builds the system from the beacon distance matrix with a fixed
    /// embedding dimension `n`.
    ///
    /// # Panics
    /// Panics if `d` is not square/symmetric or `n` is 0 or exceeds the
    /// number of beacons.
    pub fn build(d: &Matrix, n: usize) -> IcsSystem {
        let m = d.rows();
        assert!(n >= 1 && n <= m, "dimension {n} out of range 1..={m}");
        assert!(d.is_symmetric(1e-9), "distance matrix must be symmetric");
        let (vals, vecs) = d.symmetric_eigen();
        // Uₙ: the top-n eigenvectors as columns (m × n).
        let mut un = Matrix::zeros(m, n);
        for k in 0..n {
            for i in 0..m {
                un[(i, k)] = vecs[(i, k)];
            }
        }
        // Unscaled beacon coordinates cᵢ = Uₙᵀ dᵢ.
        let unt = un.transpose();
        let raw: Vec<Vec<f64>> = (0..m).map(|i| unt.matvec(&d.col(i))).collect();
        // Least-squares scaling over beacon pairs.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..m {
            for j in (i + 1)..m {
                let lij = l2(&raw[i], &raw[j]);
                num += lij * d[(i, j)];
                den += lij * lij;
            }
        }
        // Degenerate embeddings (all beacons coincide in the chosen
        // subspace) leave only floating-point noise in `den`; scaling noise
        // up would be meaningless, so fall back to α = 1.
        let scale: f64 = (0..m)
            .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
            .map(|(i, j)| d[(i, j)] * d[(i, j)])
            .sum();
        let alpha = if den > 1e-12 * scale.max(1.0) {
            num / den
        } else {
            1.0
        };
        let transform = un.scale(alpha);
        let beacon_coords = raw
            .into_iter()
            .map(|c| c.into_iter().map(|x| x * alpha).collect())
            .collect();
        IcsSystem {
            transform,
            beacon_coords,
            alpha,
            eigenvalues: vals,
        }
    }

    /// Builds the system choosing the dimension as the smallest `n` whose
    /// cumulative percentage of variation `Σ|λ₁..ₙ| / Σ|λ|` reaches
    /// `threshold` (step S4 of the excerpt).
    pub fn build_with_threshold(d: &Matrix, threshold: f64) -> IcsSystem {
        let (vals, _) = d.symmetric_eigen();
        let total: f64 = vals.iter().map(|v| v.abs()).sum();
        let mut acc = 0.0;
        let mut n = vals.len();
        for (k, v) in vals.iter().enumerate() {
            acc += v.abs();
            if total > 0.0 && acc / total >= threshold - 1e-9 {
                n = k + 1;
                break;
            }
        }
        IcsSystem::build(d, n.max(1))
    }

    /// The embedding dimension `n`.
    pub fn dims(&self) -> usize {
        self.transform.cols()
    }

    /// Number of beacons `m`.
    pub fn n_beacons(&self) -> usize {
        self.transform.rows()
    }

    /// The least-squares scaling factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The eigenvalues of the beacon distance matrix, ordered by `|λ|`.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The published transformation matrix `Ūₙ` (m × n).
    pub fn transform(&self) -> &Matrix {
        &self.transform
    }

    /// Coordinate of beacon `i`.
    pub fn beacon_coord(&self, i: usize) -> &[f64] {
        &self.beacon_coords[i]
    }

    /// Embeds a host from its measured distance vector to all beacons
    /// (step H3: `x = Ūₙᵀ l`).
    ///
    /// # Panics
    /// Panics if `dists.len()` differs from the number of beacons.
    pub fn host_coord(&self, dists: &[f64]) -> Vec<f64> {
        assert_eq!(dists.len(), self.n_beacons(), "need one RTT per beacon");
        self.transform.transpose().matvec(dists)
    }

    /// Predicted distance between two embedded coordinates.
    pub fn predict(&self, a: &[f64], b: &[f64]) -> f64 {
        l2(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The distance matrix behind Examples 1/4/5 of the Lim et al. excerpt:
    /// hosts 1–2 in one AS, hosts 3–4 in another; intra-AS distance 1,
    /// inter-AS distance 3.
    fn example_matrix() -> Matrix {
        Matrix::from_rows(
            4,
            4,
            vec![
                0.0, 1.0, 3.0, 3.0, //
                1.0, 0.0, 3.0, 3.0, //
                3.0, 3.0, 0.0, 1.0, //
                3.0, 3.0, 1.0, 0.0,
            ],
        )
    }

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn example4_n2_alpha_is_0_6() {
        // "By Eq. (11), the scaling factor α is 0.6."
        let ics = IcsSystem::build(&example_matrix(), 2);
        assert_close(ics.alpha(), 0.6, 1e-9);
    }

    #[test]
    fn example4_n2_beacon_coordinates() {
        // "c̄₁ = c̄₂ = [−2.1, 1.5] and c̄₃ = c̄₄ = [−2.1, −1.5]" —
        // eigenvector signs are conventions, so compare per-axis magnitude
        // and the grouping.
        let ics = IcsSystem::build(&example_matrix(), 2);
        let c1 = ics.beacon_coord(0);
        let c2 = ics.beacon_coord(1);
        let c3 = ics.beacon_coord(2);
        let c4 = ics.beacon_coord(3);
        assert_close(c1[0].abs(), 2.1, 1e-9);
        assert_close(c1[1].abs(), 1.5, 1e-9);
        // Same-AS beacons coincide.
        assert_close(l2(c1, c2), 0.0, 1e-9);
        assert_close(l2(c3, c4), 0.0, 1e-9);
        // First axis equal across ASes, second axis mirrored.
        assert_close(c1[0], c3[0], 1e-9);
        assert_close(c1[1], -c3[1], 1e-9);
    }

    #[test]
    fn example4_n2_inter_as_distance_exactly_3() {
        // "The distances between two hosts in different ASs is exactly 3."
        let ics = IcsSystem::build(&example_matrix(), 2);
        let d = ics.predict(ics.beacon_coord(0), ics.beacon_coord(2));
        assert_close(d, 3.0, 1e-9);
    }

    #[test]
    fn example4_n4_published_numbers() {
        // "When n = 4, α = 0.5927, L2(c̄₁,c̄₂) = L2(c̄₃,c̄₄) = 0.8383, and
        //  L2(c̄₁,c̄₃) = … = 3.0224."
        let ics = IcsSystem::build(&example_matrix(), 4);
        assert_close(ics.alpha(), 0.5927, 5e-4);
        let intra = ics.predict(ics.beacon_coord(0), ics.beacon_coord(1));
        assert_close(intra, 0.8383, 5e-4);
        let intra2 = ics.predict(ics.beacon_coord(2), ics.beacon_coord(3));
        assert_close(intra2, 0.8383, 5e-4);
        for (i, j) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            let inter = ics.predict(ics.beacon_coord(i), ics.beacon_coord(j));
            assert_close(inter, 3.0224, 5e-4);
        }
    }

    #[test]
    fn example5_host_a_near_first_as() {
        // "host A … obtains a distance vector of lₐ = [1, 1, 4, 4]ᵀ.
        //  By Eq. (14), xₐ = [−3, 1.8]ᵀ. … the estimated distances between
        //  host A and beacon nodes are L2(c̄₁,xₐ) = L2(c̄₂,xₐ) = 0.94 and
        //  L2(c̄₃,xₐ) = L2(c̄₄,xₐ) = 3.42."
        let ics = IcsSystem::build(&example_matrix(), 2);
        let xa = ics.host_coord(&[1.0, 1.0, 4.0, 4.0]);
        assert_close(xa[0].abs(), 3.0, 1e-9);
        assert_close(xa[1].abs(), 1.8, 1e-9);
        assert_close(ics.predict(&xa, ics.beacon_coord(0)), 0.9487, 5e-4);
        assert_close(ics.predict(&xa, ics.beacon_coord(1)), 0.9487, 5e-4);
        assert_close(ics.predict(&xa, ics.beacon_coord(2)), 3.4205, 5e-4);
        assert_close(ics.predict(&xa, ics.beacon_coord(3)), 3.4205, 5e-4);
    }

    #[test]
    fn example5_host_b_far_from_all() {
        // "host B … lᵦ = [10, 10, 10, 10]ᵀ. In this case, xᵦ = [−12, 0]ᵀ,
        //  and L2(c̄ᵢ, xᵦ) = 10.01 for i = 1,…,4."
        let ics = IcsSystem::build(&example_matrix(), 2);
        let xb = ics.host_coord(&[10.0, 10.0, 10.0, 10.0]);
        assert_close(xb[0].abs(), 12.0, 1e-9);
        assert_close(xb[1].abs(), 0.0, 1e-9);
        for i in 0..4 {
            assert_close(ics.predict(&xb, ics.beacon_coord(i)), 10.0130, 5e-4);
        }
    }

    #[test]
    fn transform_matches_figure4_magnitude() {
        // Figure 4 caption: Ū₂ = [[−0.3 ×4], [−0.3, −0.3, 0.3, 0.3]]ᵀ —
        // i.e. every entry has magnitude 0.3 and the second column splits
        // the two ASes.
        let ics = IcsSystem::build(&example_matrix(), 2);
        let t = ics.transform();
        assert_eq!((t.rows(), t.cols()), (4, 2));
        for i in 0..4 {
            assert_close(t[(i, 0)].abs(), 0.3, 1e-9);
            assert_close(t[(i, 1)].abs(), 0.3, 1e-9);
        }
        // Column 0 has uniform sign; column 1 splits 2/2.
        let same: Vec<f64> = (0..4).map(|i| t[(i, 0)].signum()).collect();
        assert!(same.iter().all(|&s| s == same[0]));
        assert_eq!(t[(0, 1)].signum(), t[(1, 1)].signum());
        assert_eq!(t[(2, 1)].signum(), t[(3, 1)].signum());
        assert_ne!(t[(0, 1)].signum(), t[(2, 1)].signum());
    }

    #[test]
    fn threshold_dimension_selection() {
        // |λ| = 7, 5, 1, 1 (total 14). 50% → n=1; 80% → n=2 (12/14≈0.857);
        // 95% → n=3 (13/14 ≈ 0.929 < 0.95 → n=4).
        let d = example_matrix();
        assert_eq!(IcsSystem::build_with_threshold(&d, 0.5).dims(), 1);
        assert_eq!(IcsSystem::build_with_threshold(&d, 0.8).dims(), 2);
        assert_eq!(IcsSystem::build_with_threshold(&d, 0.95).dims(), 4);
    }

    #[test]
    fn higher_dimension_never_hurts_beacon_fit() {
        let d = example_matrix();
        let err = |n: usize| {
            let ics = IcsSystem::build(&d, n);
            let mut e = 0.0;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let p = ics.predict(ics.beacon_coord(i), ics.beacon_coord(j));
                    e += (p - d[(i, j)]).powi(2);
                }
            }
            e
        };
        assert!(err(2) <= err(1) + 1e-9);
        assert!(err(4) <= err(2) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "one RTT per beacon")]
    fn wrong_length_distance_vector_panics() {
        let ics = IcsSystem::build(&example_matrix(), 2);
        ics.host_coord(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_dims_panics() {
        IcsSystem::build(&example_matrix(), 0);
    }
}
