//! # uap-coords — network coordinate systems
//!
//! Latency *prediction* is the collection technique the paper recommends
//! over explicit measurement (§3.2): "it is only required that each node in
//! the system measures latencies to just a small set of other nodes". This
//! crate implements the two predictor families the paper covers:
//!
//! * [`vivaldi`] — the decentralized spring-relaxation coordinate system of
//!   Dabek et al. (the paper's "most prominent" prediction method \[7\]);
//! * [`ics`] — the landmark/beacon Internet Coordinate System of Lim et al.
//!   \[20\] that the paper reprints as its Figure 4: PCA over the beacon
//!   distance matrix, a scaled transformation matrix, and host embedding by
//!   a single matrix–vector product. The worked Examples 4 and 5 of that
//!   excerpt are regression tests with their exact published numbers.
//! * [`binning`] — Ratnasamy-style landmark binning \[26\], the cheapest
//!   proximity estimator: order the landmarks by RTT and use the resulting
//!   bin string.
//! * [`embedding`] — accuracy metrics (relative error, stress) shared by
//!   the evaluation harnesses.
//!
//! The linear algebra ([`matrix`]) is self-contained: a dense matrix type
//! and a cyclic Jacobi symmetric eigendecomposition, which is all PCA on
//! beacon sets needs.

#![forbid(unsafe_code)]

pub mod binning;
pub mod embedding;
pub mod ics;
pub mod matrix;
pub mod vivaldi;

pub use binning::LandmarkBins;
pub use embedding::{relative_error, stress, EmbeddingQuality};
pub use ics::IcsSystem;
pub use matrix::Matrix;
pub use vivaldi::{VivaldiConfig, VivaldiNode};
