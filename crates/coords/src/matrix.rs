//! Minimal dense linear algebra.
//!
//! The ICS construction needs: a dense matrix, matrix–vector products, and
//! a symmetric eigendecomposition. Beacon sets are small (tens of nodes),
//! so a cyclic Jacobi sweep is simple, robust and fast enough — no external
//! BLAS/LAPACK dependency.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scales every entry.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetric eigendecomposition by cyclic Jacobi rotations.
    ///
    /// Returns `(eigenvalues, eigenvectors)` where `eigenvectors.col(k)` is
    /// the unit eigenvector of `eigenvalues[k]`, **sorted by descending
    /// absolute value** — the order PCA on a distance matrix wants (the
    /// dominant structural components first, whatever their sign).
    ///
    /// # Panics
    /// Panics if the matrix is not square/symmetric.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert!(self.is_symmetric(1e-9), "matrix not symmetric");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 100;
        for _ in 0..max_sweeps {
            // Off-diagonal Frobenius norm.
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-15 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Rotate rows/cols p and q of `a`.
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    // Accumulate the rotation into the eigenvector basis.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, Vec<f64>)> = (0..n).map(|k| (a[(k, k)], v.col(k))).collect();
        pairs.sort_by(|x, y| {
            y.0.abs()
                .total_cmp(&x.0.abs())
                .then_with(|| x.0.total_cmp(&y.0).reverse())
        });
        let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (k, (_, vec)) in pairs.iter().enumerate() {
            // Sign convention: first nonzero component positive, so results
            // are reproducible across platforms.
            let sign = vec
                .iter()
                .find(|x| x.abs() > 1e-12)
                .map(|x| x.signum())
                .unwrap_or(1.0);
            for i in 0..n {
                vectors[(i, k)] = vec[i] * sign;
            }
        }
        (eigenvalues, vectors)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(
                f,
                "  {}",
                self.row(i)
                    .iter()
                    .map(|x| format!("{x:9.4}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            )?;
        }
        write!(f, "]")
    }
}

/// Euclidean (L2) distance between two equal-length vectors.
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn eigen_diagonal() {
        let m = Matrix::from_rows(3, 3, vec![3.0, 0.0, 0.0, 0.0, -5.0, 0.0, 0.0, 0.0, 1.0]);
        let (vals, vecs) = m.symmetric_eigen();
        // Sorted by |λ| descending: -5, 3, 1.
        assert!((vals[0] + 5.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
        // Eigenvector of -5 is e2.
        assert!((vecs[(1, 0)].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        // A = V Λ Vᵀ must reproduce the input.
        let m = Matrix::from_rows(
            4,
            4,
            vec![
                4.0, 1.0, 2.0, 0.5, 1.0, 3.0, 0.0, 1.0, 2.0, 0.0, 5.0, 1.5, 0.5, 1.0, 1.5, 2.0,
            ],
        );
        let (vals, v) = m.symmetric_eigen();
        let mut lambda = Matrix::zeros(4, 4);
        for k in 0..4 {
            lambda[(k, k)] = vals[k];
        }
        let rebuilt = v.matmul(&lambda).matmul(&v.transpose());
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (rebuilt[(i, j)] - m[(i, j)]).abs() < 1e-8,
                    "({i},{j}): {} vs {}",
                    rebuilt[(i, j)],
                    m[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(3, 3, vec![2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0]);
        let (_, v) = m.symmetric_eigen();
        let vtv = v.transpose().matmul(&v);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ics_fixture_eigenstructure() {
        // The reconstructed distance matrix behind the paper's Example 4
        // (two ASes, intra distance 1, inter distance 3): eigenvalues must
        // be 7, -5, -1, -1 ordered by |λ| as 7, -5, -1, -1.
        let d = Matrix::from_rows(
            4,
            4,
            vec![
                0.0, 1.0, 3.0, 3.0, 1.0, 0.0, 3.0, 3.0, 3.0, 3.0, 0.0, 1.0, 3.0, 3.0, 1.0, 0.0,
            ],
        );
        let (vals, _) = d.symmetric_eigen();
        assert!((vals[0] - 7.0).abs() < 1e-9);
        assert!((vals[1] + 5.0).abs() < 1e-9);
        assert!((vals[2] + 1.0).abs() < 1e-9);
        assert!((vals[3] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn l2_distance() {
        assert_eq!(l2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn symmetry_check() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(m.is_symmetric(1e-12));
        let m2 = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 1.0]);
        assert!(!m2.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }
}
