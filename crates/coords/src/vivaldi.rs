//! Vivaldi — decentralized network coordinates (Dabek et al. \[7\]).
//!
//! The paper calls Vivaldi "the most prominent" latency prediction method:
//! every node keeps a synthetic coordinate and nudges it after each RTT
//! sample as if connected to the sampled peer by a spring whose rest length
//! is the measured RTT. No landmarks, no central administration — each
//! node only measures "latencies to just a small set of other nodes"
//! (typically its overlay neighbors).
//!
//! This implementation follows the adaptive-timestep algorithm of the
//! Vivaldi paper, including the optional *height* component that models the
//! access-link delay all of a host's paths share.

use crate::matrix::l2;
use uap_sim::SimRng;

/// Vivaldi tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct VivaldiConfig {
    /// Coordinate dimensionality (the paper's evaluations use 2–5).
    pub dims: usize,
    /// Adaptive timestep constant `c_c` (fraction of the distance-to-rest
    /// moved per sample).
    pub cc: f64,
    /// Error-smoothing constant `c_e`.
    pub ce: f64,
    /// Whether to carry a height (access-link) component.
    pub use_height: bool,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        VivaldiConfig {
            dims: 3,
            cc: 0.25,
            ce: 0.25,
            use_height: true,
        }
    }
}

/// One node's Vivaldi state.
#[derive(Clone, Debug)]
pub struct VivaldiNode {
    /// Euclidean part of the coordinate (milliseconds).
    pub coord: Vec<f64>,
    /// Height component in milliseconds (0 when disabled).
    pub height: f64,
    /// Local error estimate in `[0, 1]`-ish range (starts at 1 = "know
    /// nothing").
    pub error: f64,
    cfg: VivaldiConfig,
    samples: u64,
}

impl VivaldiNode {
    /// A fresh node at the origin with maximal error.
    pub fn new(cfg: VivaldiConfig) -> Self {
        VivaldiNode {
            coord: vec![0.0; cfg.dims],
            height: if cfg.use_height { 0.1 } else { 0.0 },
            error: 1.0,
            cfg,
            samples: 0,
        }
    }

    /// Number of RTT samples absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Predicted RTT in milliseconds to another node.
    pub fn predict_ms(&self, other: &VivaldiNode) -> f64 {
        l2(&self.coord, &other.coord) + self.height + other.height
    }

    /// Absorbs one RTT observation (milliseconds) of `remote`.
    ///
    /// `rng` is only used to pick a random direction when the two
    /// coordinates coincide (the standard bootstrap trick).
    pub fn update(&mut self, remote: &VivaldiNode, rtt_ms: f64, rng: &mut SimRng) {
        if !(rtt_ms.is_finite()) || rtt_ms <= 0.0 {
            return;
        }
        self.samples += 1;
        // Sample confidence balance: how much we trust ourselves vs them.
        let w = if self.error + remote.error > 0.0 {
            self.error / (self.error + remote.error)
        } else {
            0.5
        };
        let dist = self.predict_ms(remote);
        let rel_err = (dist - rtt_ms).abs() / rtt_ms;
        // Exponentially-weighted error update.
        self.error =
            (rel_err * self.cfg.ce * w + self.error * (1.0 - self.cfg.ce * w)).clamp(0.0, 10.0);
        // Force along the unit vector from remote to self, magnitude
        // (rtt - dist), applied with the adaptive timestep δ = c_c · w.
        let delta = self.cfg.cc * w;
        let mut dir: Vec<f64> = self
            .coord
            .iter()
            .zip(&remote.coord)
            .map(|(a, b)| a - b)
            .collect();
        let mut norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-9 {
            // Coincident coordinates: push in a random direction.
            for d in &mut dir {
                *d = rng.f64() - 0.5;
            }
            norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        }
        let force = rtt_ms - dist;
        for (c, d) in self.coord.iter_mut().zip(&dir) {
            *c += delta * force * d / norm;
        }
        if self.cfg.use_height {
            // Heights absorb the shared component: they stretch when the
            // spring is compressed, like the Euclidean part, but along the
            // always-positive height axis.
            self.height = (self.height + delta * force * self.height / dist.max(1e-9)).max(0.1);
        }
    }
}

/// Runs `rounds` update rounds over a full RTT matrix: in each round every
/// node absorbs one sample from every other node, in index order. Returns
/// the final nodes. This is the centralized driver used by experiments and
/// tests; the overlay crates drive updates from live protocol traffic
/// instead.
///
/// The sweep is deliberately systematic rather than sampling one random
/// peer per round: on small topologies, single-random-peer gossip can
/// settle into a *folded* spring equilibrium (a local minimum of the
/// spring energy) that the shrinking adaptive timestep then freezes in
/// place permanently. Balanced all-pairs updates escape those folds. The
/// RNG is still needed for the coincident-coordinate bootstrap kick in
/// [`VivaldiNode::update`].
pub fn gossip_converge(
    rtt_ms: &[Vec<f64>],
    cfg: VivaldiConfig,
    rounds: usize,
    rng: &mut SimRng,
) -> Vec<VivaldiNode> {
    let n = rtt_ms.len();
    let mut nodes: Vec<VivaldiNode> = (0..n).map(|_| VivaldiNode::new(cfg)).collect();
    for _ in 0..rounds {
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let remote = nodes[j].clone();
                nodes[i].update(&remote, rtt_ms[i][j], rng);
            }
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RTT matrix of 4 nodes at the corners of a 100 ms square (diagonal
    /// ≈ 141 ms) — perfectly embeddable in 2D.
    fn square_rtts() -> Vec<Vec<f64>> {
        let pts = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)];
        (0..4)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        let (xi, yi): (f64, f64) = pts[i];
                        let (xj, yj) = pts[j];
                        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn converges_on_embeddable_topology() {
        let rtts = square_rtts();
        let cfg = VivaldiConfig {
            dims: 2,
            use_height: false,
            ..Default::default()
        };
        let mut rng = SimRng::new(1);
        let nodes = gossip_converge(&rtts, cfg, 400, &mut rng);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let p = nodes[i].predict_ms(&nodes[j]);
                let e = (p - rtts[i][j]).abs() / rtts[i][j];
                assert!(
                    e < 0.15,
                    "pair ({i},{j}): predicted {p}, true {}",
                    rtts[i][j]
                );
            }
        }
    }

    #[test]
    fn error_estimate_decreases() {
        let rtts = square_rtts();
        let cfg = VivaldiConfig {
            dims: 2,
            use_height: false,
            ..Default::default()
        };
        let mut rng = SimRng::new(2);
        let nodes = gossip_converge(&rtts, cfg, 300, &mut rng);
        for n in &nodes {
            assert!(n.error < 0.5, "error {}", n.error);
            assert!(n.samples() > 0);
        }
    }

    #[test]
    fn ignores_garbage_samples() {
        let cfg = VivaldiConfig::default();
        let mut a = VivaldiNode::new(cfg);
        let b = VivaldiNode::new(cfg);
        let mut rng = SimRng::new(3);
        let before = a.coord.clone();
        a.update(&b, -5.0, &mut rng);
        a.update(&b, f64::NAN, &mut rng);
        a.update(&b, 0.0, &mut rng);
        assert_eq!(a.coord, before);
        assert_eq!(a.samples(), 0);
    }

    #[test]
    fn coincident_nodes_separate() {
        let cfg = VivaldiConfig {
            dims: 2,
            use_height: false,
            ..Default::default()
        };
        let mut a = VivaldiNode::new(cfg);
        let b = VivaldiNode::new(cfg);
        let mut rng = SimRng::new(4);
        a.update(&b, 50.0, &mut rng);
        assert!(l2(&a.coord, &b.coord) > 0.0);
    }

    #[test]
    fn height_stays_positive() {
        let cfg = VivaldiConfig {
            dims: 2,
            use_height: true,
            ..Default::default()
        };
        let mut rng = SimRng::new(5);
        let mut a = VivaldiNode::new(cfg);
        let b = VivaldiNode::new(cfg);
        for _ in 0..200 {
            a.update(&b, 10.0, &mut rng);
        }
        assert!(a.height >= 0.1);
    }

    #[test]
    fn prediction_is_symmetric() {
        let cfg = VivaldiConfig::default();
        let mut rng = SimRng::new(6);
        let mut a = VivaldiNode::new(cfg);
        let mut b = VivaldiNode::new(cfg);
        for _ in 0..50 {
            let bc = b.clone();
            a.update(&bc, 80.0, &mut rng);
            let ac = a.clone();
            b.update(&ac, 80.0, &mut rng);
        }
        assert!((a.predict_ms(&b) - b.predict_ms(&a)).abs() < 1e-12);
    }
}
