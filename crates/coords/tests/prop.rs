//! Property-based tests for the coordinate systems.

use proptest::prelude::*;
use uap_coords::{IcsSystem, LandmarkBins, Matrix, VivaldiConfig, VivaldiNode};
use uap_sim::SimRng;

/// A random symmetric "distance-like" matrix (positive off-diagonals,
/// zero diagonal).
fn sym_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = SimRng::new(seed);
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = rng.f64_range(1.0, 200.0);
            d[(i, j)] = v;
            d[(j, i)] = v;
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Jacobi: A = V Λ Vᵀ and V orthonormal, for any symmetric input.
    #[test]
    fn eigen_reconstructs_and_is_orthonormal(n in 2usize..12, seed in any::<u64>()) {
        let a = sym_matrix(n, seed);
        let (vals, v) = a.symmetric_eigen();
        // Orthonormality.
        let vtv = v.transpose().matmul(&v);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((vtv[(i, j)] - expect).abs() < 1e-8);
            }
        }
        // Reconstruction.
        let mut lambda = Matrix::zeros(n, n);
        for k in 0..n {
            lambda[(k, k)] = vals[k];
        }
        let rebuilt = v.matmul(&lambda).matmul(&v.transpose());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((rebuilt[(i, j)] - a[(i, j)]).abs() < 1e-6);
            }
        }
        // Ordering by |λ|.
        for w in vals.windows(2) {
            prop_assert!(w[0].abs() >= w[1].abs() - 1e-9);
        }
    }

    /// ICS invariants for any beacon matrix: α positive and finite,
    /// predictions symmetric and non-negative, full-rank embedding
    /// reproduces beacon distances up to the α least-squares fit.
    #[test]
    fn ics_embedding_invariants(n_beacons in 3usize..10, dims in 1usize..6, seed in any::<u64>()) {
        let m = n_beacons;
        let dims = dims.min(m);
        let d = sym_matrix(m, seed);
        let ics = IcsSystem::build(&d, dims);
        prop_assert!(ics.alpha().is_finite() && ics.alpha() > 0.0);
        prop_assert_eq!(ics.dims(), dims);
        for i in 0..m {
            for j in 0..m {
                let pij = ics.predict(ics.beacon_coord(i), ics.beacon_coord(j));
                let pji = ics.predict(ics.beacon_coord(j), ics.beacon_coord(i));
                prop_assert!(pij >= 0.0);
                prop_assert!((pij - pji).abs() < 1e-9);
            }
        }
        // Host embedding of a beacon's own distance column lands near the
        // beacon's coordinate (identical by construction).
        let col: Vec<f64> = (0..m).map(|j| d[(0, j)]).collect();
        let x = ics.host_coord(&col);
        let dist = ics.predict(&x, ics.beacon_coord(0));
        prop_assert!(dist < 1e-6, "self embedding off by {dist}");
    }

    /// Vivaldi never produces NaN and the error estimate stays bounded,
    /// whatever the RTT stream.
    #[test]
    fn vivaldi_stays_finite(rtts in prop::collection::vec(0.1f64..10_000.0, 1..200), seed in any::<u64>()) {
        let cfg = VivaldiConfig::default();
        let mut rng = SimRng::new(seed);
        let mut a = VivaldiNode::new(cfg);
        let mut b = VivaldiNode::new(cfg);
        for (i, &rtt) in rtts.iter().enumerate() {
            if i % 2 == 0 {
                let bc = b.clone();
                a.update(&bc, rtt, &mut rng);
            } else {
                let ac = a.clone();
                b.update(&ac, rtt, &mut rng);
            }
        }
        prop_assert!(a.coord.iter().all(|x| x.is_finite()));
        prop_assert!(b.coord.iter().all(|x| x.is_finite()));
        prop_assert!(a.error.is_finite() && (0.0..=10.0).contains(&a.error));
        prop_assert!(a.predict_ms(&b).is_finite());
        prop_assert!(a.predict_ms(&b) >= 0.0);
    }

    /// Landmark bins: same RTT vector -> same bin; similarity symmetric
    /// and maximal on self.
    #[test]
    fn binning_invariants(rtts in prop::collection::vec(0.0f64..1_000.0, 1..20)) {
        let a = LandmarkBins::from_rtts(&rtts);
        let b = LandmarkBins::from_rtts(&rtts);
        prop_assert!(a.same_bin(&b));
        prop_assert_eq!(a.similarity(&b), 2 * rtts.len());
        // Order is a permutation of landmark indices.
        let mut order = a.order.clone();
        order.sort_unstable();
        let expected: Vec<u8> = (0..rtts.len() as u8).collect();
        prop_assert_eq!(order, expected);
    }
}
