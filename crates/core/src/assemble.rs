//! Assembling a running system from an [`AwarenessProfile`].
//!
//! [`crate::framework`] makes profiles *checkable*; this module makes them
//! *runnable*: given a validated profile and an underlay, it instantiates
//! the matching collection service behind the uniform
//! [`ProximityEstimator`] / [`GeoLocator`] interfaces — the last missing
//! piece of the "general architecture for underlay awareness" the paper
//! calls for. Swapping techniques is a one-line profile change; the
//! overlay code never changes.

use crate::framework::{AwarenessProfile, CollectionTechnique};
use uap_coords::VivaldiConfig;
use uap_info::provider::{GeoLocator, ProximityEstimator};
use uap_info::{
    ExplicitPinger, GeoService, GeoSource, IcsService, OnoEstimator, Oracle, P4pEstimator,
    P4pService, PdistanceWeights, SimulatedCdn, VivaldiService,
};
use uap_net::{HostId, Underlay};
use uap_sim::SimRng;

/// Tunables for the assembled collectors.
#[derive(Clone, Copy, Debug)]
pub struct AssembleConfig {
    /// Vivaldi gossip rounds before the estimator is handed out.
    pub vivaldi_rounds: usize,
    /// ICS beacons.
    pub ics_beacons: usize,
    /// ICS dimensions.
    pub ics_dims: usize,
    /// CDN replicas for Ono.
    pub cdn_replicas: usize,
    /// CDN samples per peer for Ono.
    pub ono_samples: usize,
}

impl Default for AssembleConfig {
    fn default() -> Self {
        AssembleConfig {
            vivaldi_rounds: 30,
            ics_beacons: 10,
            ics_dims: 4,
            cdn_replicas: 6,
            ono_samples: 30,
        }
    }
}

/// A proximity estimator wrapping the oracle so it fits the uniform
/// interface (the oracle natively ranks lists; as an estimator it scores a
/// pair by AS-hop distance, two messages per probe like a real oracle
/// round trip).
pub struct OracleEstimator<'a> {
    underlay: &'a Underlay,
    oracle: Oracle,
}

impl ProximityEstimator for OracleEstimator<'_> {
    fn proximity(&mut self, a: HostId, b: HostId, _rng: &mut SimRng) -> f64 {
        // One oracle query scoring a single candidate.
        let ranked = self.oracle.rank(self.underlay, a, &[b]);
        debug_assert_eq!(ranked.len(), 1);
        self.underlay.as_hops(a, b).unwrap_or(u32::MAX) as f64
    }

    fn overhead_messages(&self) -> u64 {
        2 * self.oracle.queries()
    }

    fn name(&self) -> &'static str {
        "isp-oracle"
    }
}

/// Instantiates the proximity estimator a profile's collection technique
/// prescribes. Returns `None` for techniques that do not produce pairwise
/// proximity (the geolocation family — use [`build_geo_locator`]; the
/// resource family — use `SkyEyeTree` directly).
pub fn build_proximity_estimator<'a>(
    profile: &AwarenessProfile,
    underlay: &'a Underlay,
    cfg: &AssembleConfig,
    rng: &mut SimRng,
) -> Option<Box<dyn ProximityEstimator + 'a>> {
    profile.validate().ok()?;
    Some(match profile.collection {
        CollectionTechnique::ExplicitMeasurement => Box::new(ExplicitPinger::new(underlay, true)),
        CollectionTechnique::VivaldiCoordinates => {
            let mut svc = VivaldiService::new(underlay.n_hosts(), VivaldiConfig::default());
            svc.converge(underlay, cfg.vivaldi_rounds, 4, rng);
            Box::new(svc)
        }
        CollectionTechnique::LandmarkCoordinates => Box::new(IcsService::build(
            underlay,
            cfg.ics_beacons.min(underlay.n_hosts()),
            cfg.ics_dims,
            rng,
        )),
        CollectionTechnique::IspComponent => Box::new(OracleEstimator {
            underlay,
            oracle: Oracle::new(usize::MAX),
        }),
        CollectionTechnique::IpToIspMapping => {
            // IP mapping yields AS identity; as a pair estimator that is a
            // 0/1 locality signal via P4P-style zero/one distance.
            let svc = P4pService::build(
                underlay,
                PdistanceWeights {
                    peering: 1.0,
                    transit: 1.0, // hop count only — no provider cost data
                },
            );
            Box::new(P4pEstimator::new(underlay, svc))
        }
        CollectionTechnique::CdnInference => {
            let cdn = SimulatedCdn::deploy(underlay, cfg.cdn_replicas);
            Box::new(OnoEstimator::new(underlay, cdn, cfg.ono_samples))
        }
        CollectionTechnique::Gps
        | CollectionTechnique::IpToLocationMapping
        | CollectionTechnique::IspProvidedLocation
        | CollectionTechnique::InfoManagementOverlay => return None,
    })
}

/// Instantiates the geolocation service a profile prescribes, or `None`
/// for non-geolocation techniques.
pub fn build_geo_locator<'a>(
    profile: &AwarenessProfile,
    underlay: &'a Underlay,
) -> Option<Box<dyn GeoLocator + 'a>> {
    profile.validate().ok()?;
    let source = match profile.collection {
        CollectionTechnique::Gps => GeoSource::Gps,
        CollectionTechnique::IpToLocationMapping => GeoSource::IpMapping,
        CollectionTechnique::IspProvidedLocation => GeoSource::IspProvided,
        _ => return None,
    };
    Some(Box::new(GeoService::new(underlay, source)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::NetParams;
    use crate::framework::{InfoType, UsageStrategy};

    fn profile(collection: CollectionTechnique) -> AwarenessProfile {
        use CollectionTechnique as C;
        let (info, usage) = match collection {
            C::IpToIspMapping | C::IspComponent | C::CdnInference => (
                InfoType::IspLocation,
                UsageStrategy::BiasedNeighborSelection,
            ),
            C::ExplicitMeasurement | C::VivaldiCoordinates | C::LandmarkCoordinates => {
                (InfoType::Latency, UsageStrategy::LatencyAwareOverlay)
            }
            C::Gps | C::IpToLocationMapping | C::IspProvidedLocation => {
                (InfoType::Geolocation, UsageStrategy::GeoOverlay)
            }
            C::InfoManagementOverlay => {
                (InfoType::PeerResources, UsageStrategy::SuperpeerSelection)
            }
        };
        AwarenessProfile {
            info,
            collection,
            usage,
        }
    }

    #[test]
    fn every_proximity_technique_assembles_and_ranks_sanely() {
        let underlay = NetParams::quick(100, 131).build();
        let cfg = AssembleConfig {
            vivaldi_rounds: 25,
            ..Default::default()
        };
        let techniques = [
            CollectionTechnique::ExplicitMeasurement,
            CollectionTechnique::VivaldiCoordinates,
            CollectionTechnique::LandmarkCoordinates,
            CollectionTechnique::IspComponent,
            CollectionTechnique::IpToIspMapping,
            CollectionTechnique::CdnInference,
        ];
        for technique in techniques {
            let mut rng = SimRng::new(132);
            let mut est = build_proximity_estimator(&profile(technique), &underlay, &cfg, &mut rng)
                .unwrap_or_else(|| panic!("{technique:?} should assemble"));
            // Rank 20 candidates from host 0: the top-5 picks should have a
            // lower true mean RTT than the candidate population (every
            // technique carries *some* signal).
            let from = HostId(0);
            let candidates: Vec<HostId> = (1..60).map(HostId).collect();
            let ranked = est.rank(from, &candidates, &mut rng);
            assert_eq!(ranked.len(), candidates.len(), "{technique:?}");
            let rtt = |h: HostId| underlay.rtt_us(from, h).unwrap() as f64;
            let top: f64 = ranked[..5].iter().map(|&h| rtt(h)).sum::<f64>() / 5.0;
            let all: f64 =
                candidates.iter().map(|&h| rtt(h)).sum::<f64>() / candidates.len() as f64;
            assert!(
                top < all,
                "{technique:?}: top-5 mean RTT {top} not below population mean {all}"
            );
        }
    }

    #[test]
    fn geo_techniques_assemble_as_locators() {
        let underlay = NetParams::quick(50, 133).build();
        for technique in [
            CollectionTechnique::Gps,
            CollectionTechnique::IpToLocationMapping,
            CollectionTechnique::IspProvidedLocation,
        ] {
            let mut rng = SimRng::new(134);
            let mut loc = build_geo_locator(&profile(technique), &underlay)
                .unwrap_or_else(|| panic!("{technique:?} should assemble"));
            let p = loc.locate(HostId(3), &mut rng);
            assert!(p.x_km.is_finite() && p.y_km.is_finite());
        }
    }

    #[test]
    fn wrong_family_returns_none() {
        let underlay = NetParams::quick(50, 135).build();
        let mut rng = SimRng::new(136);
        assert!(build_proximity_estimator(
            &profile(CollectionTechnique::Gps),
            &underlay,
            &AssembleConfig::default(),
            &mut rng
        )
        .is_none());
        assert!(
            build_geo_locator(&profile(CollectionTechnique::IspComponent), &underlay).is_none()
        );
    }

    #[test]
    fn invalid_profile_returns_none() {
        let underlay = NetParams::quick(50, 137).build();
        let mut rng = SimRng::new(138);
        let bad = AwarenessProfile {
            info: InfoType::Latency,
            collection: CollectionTechnique::Gps,
            usage: UsageStrategy::LatencyAwareOverlay,
        };
        assert!(
            build_proximity_estimator(&bad, &underlay, &AssembleConfig::default(), &mut rng)
                .is_none()
        );
    }
}
