//! E1 — Figure 1: "Hierarchy in the Internet".
//!
//! The figure shows local and transit ISPs in a hierarchy where "the solid
//! arrows indicate monetary flow, solid lines between ISPs are peer
//! connections and the dashed ones are transit connections". The harness
//! generates that topology and reports the census: per-tier AS counts,
//! link classification, monetary-flow edges (one per transit link, paid by
//! the customer), and routing sanity (valley-freeness and reachability).

use crate::report::Table;
use uap_net::{Routing, RoutingMode, Tier, TopologyKind, TopologySpec};
use uap_sim::SimRng;

/// Parameters for the hierarchy census.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Tier-1 count.
    pub tier1: usize,
    /// Tier-2 per Tier-1.
    pub tier2_per_tier1: usize,
    /// Tier-3 per Tier-2.
    pub tier3_per_tier2: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            tier1: 2,
            tier2_per_tier1: 3,
            tier3_per_tier2: 3,
            seed,
        }
    }

    /// Paper-scale instance (4 global carriers, 12 regionals, 64 locals —
    /// the proportions of Figure 1 scaled up).
    pub fn full(seed: u64) -> Params {
        Params {
            tier1: 4,
            tier2_per_tier1: 3,
            tier3_per_tier2: 5,
            seed,
        }
    }
}

/// Census output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The census table.
    pub table: Table,
    /// Fraction of ordered AS pairs reachable under valley-free routing.
    pub valley_free_reachability: f64,
    /// Number of transit (monetary-flow) links.
    pub transit_links: usize,
    /// Number of peering links.
    pub peering_links: usize,
}

/// Runs the census.
pub fn run(p: &Params) -> Outcome {
    let mut rng = SimRng::new(p.seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: p.tier1,
        tier2_per_tier1: p.tier2_per_tier1,
        tier3_per_tier2: p.tier3_per_tier2,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    let routing = Routing::compute(&graph, RoutingMode::ValleyFree);
    let count_tier = |t: Tier| graph.nodes.iter().filter(|n| n.tier == t).count();
    let (transit_links, peering_links) = graph.link_counts();
    let mut table = Table::new(
        "Figure 1 — Internet hierarchy census",
        &["quantity", "value"],
    );
    let mut push = |k: &str, v: String| table.row(&[k.to_owned(), v]);
    push(
        "Tier-1 (global transit) ISPs",
        count_tier(Tier::Tier1).to_string(),
    );
    push(
        "Tier-2 (regional) ISPs",
        count_tier(Tier::Tier2).to_string(),
    );
    push("Tier-3 (local) ISPs", count_tier(Tier::Tier3).to_string());
    push(
        "transit links (monetary flow edges)",
        transit_links.to_string(),
    );
    push("peering links (settlement-free)", peering_links.to_string());
    push("connected", graph.is_connected(None).to_string());
    let reach = routing.reachable_fraction();
    push("valley-free reachability", format!("{:.4}", reach));
    // Mean AS path length as a proxy for the hierarchy's diameter.
    let mut hops_sum = 0u64;
    let mut pairs = 0u64;
    for a in 0..graph.len() {
        for b in 0..graph.len() {
            if a == b {
                continue;
            }
            if let Some(h) =
                routing.as_hops(uap_net::AsId::from_index(a), uap_net::AsId::from_index(b))
            {
                hops_sum += h as u64;
                pairs += 1;
            }
        }
    }
    let mean_hops = if pairs > 0 {
        hops_sum as f64 / pairs as f64
    } else {
        0.0
    };
    push("mean AS path length", format!("{:.2}", mean_hops));
    Outcome {
        table,
        valley_free_reachability: reach,
        transit_links,
        peering_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_add_up() {
        let p = Params::quick(5);
        let out = run(&p);
        assert_eq!(out.table.cell(0, 1), "2");
        assert_eq!(out.table.cell(1, 1), "6");
        assert_eq!(out.table.cell(2, 1), "18");
        assert!(out.transit_links >= 6 + 18); // every non-T1 has a provider
        assert!(out.peering_links >= 1); // T1 core mesh
        assert_eq!(out.valley_free_reachability, 1.0);
    }

    #[test]
    fn full_scale_builds() {
        let out = run(&Params::full(1));
        assert_eq!(out.valley_free_reachability, 1.0);
        assert!(out.transit_links > out.peering_links);
    }
}
