//! E2 — Figure 2: "Costs relations" (after Norton \[24\]).
//!
//! Two panels in one table: absolute monthly cost and cost-per-Mbps, for
//! transit vs peering, swept over exchanged traffic. The shape to
//! reproduce: transit cost is linear with a flat per-Mbps price; peering
//! cost is constant with a 1/x per-Mbps price; the curves cross at
//! `peering_flat / transit_price`.

use crate::report::{f, Table};
use uap_net::CostParams;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Tariffs.
    pub cost: CostParams,
    /// Traffic levels to evaluate (Mbps).
    pub traffic_mbps: Vec<f64>,
}

impl Params {
    /// A short sweep.
    pub fn quick() -> Params {
        Params {
            cost: CostParams::default(),
            traffic_mbps: vec![1.0, 10.0, 100.0, 1_000.0],
        }
    }

    /// The full logarithmic sweep of the figure.
    pub fn full() -> Params {
        let mut t = Vec::new();
        let mut v: f64 = 1.0;
        while v <= 10_000.0 {
            t.push(v);
            t.push(v * 2.0);
            t.push(v * 5.0);
            v *= 10.0;
        }
        t.truncate(t.len() - 2);
        Params {
            cost: CostParams::default(),
            traffic_mbps: t,
        }
    }
}

/// Sweep output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The cost table.
    pub table: Table,
    /// The per-Mbps crossover point in Mbps.
    pub crossover_mbps: f64,
}

/// Runs the sweep.
pub fn run(p: &Params) -> Outcome {
    let mut table = Table::new(
        "Figure 2 — cost relations (transit vs peering)",
        &[
            "traffic_mbps",
            "transit_usd",
            "peering_usd",
            "transit_usd_per_mbps",
            "peering_usd_per_mbps",
        ],
    );
    for &t in &p.traffic_mbps {
        table.row(&[
            f(t),
            f(p.cost.transit_cost(t)),
            f(p.cost.peering_cost(1)),
            f(p.cost.transit_cost_per_mbps(t)),
            f(p.cost.peering_cost_per_mbps(t)),
        ]);
    }
    Outcome {
        table,
        crossover_mbps: p.cost.crossover_mbps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_figure2() {
        let p = Params::full();
        let out = run(&p);
        assert_eq!(out.crossover_mbps, 100.0);
        // Transit absolute cost strictly increases; peering is constant;
        // peering per-Mbps strictly decreases; transit per-Mbps constant.
        let col = |c: usize| -> Vec<f64> {
            (0..out.table.len())
                .map(|r| out.table.cell(r, c).parse::<f64>().unwrap())
                .collect()
        };
        let transit = col(1);
        let peering = col(2);
        let tpm = col(3);
        let ppm = col(4);
        for w in transit.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(peering.iter().all(|&v| v == peering[0]));
        assert!(tpm.iter().all(|&v| v == tpm[0]));
        for w in ppm.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn crossover_sits_between_the_right_rows() {
        let out = run(&Params::full());
        let traffic: Vec<f64> = (0..out.table.len())
            .map(|r| out.table.cell(r, 0).parse::<f64>().unwrap())
            .collect();
        let tpm: Vec<f64> = (0..out.table.len())
            .map(|r| out.table.cell(r, 3).parse::<f64>().unwrap())
            .collect();
        let ppm: Vec<f64> = (0..out.table.len())
            .map(|r| out.table.cell(r, 4).parse::<f64>().unwrap())
            .collect();
        for i in 0..traffic.len() {
            if traffic[i] < out.crossover_mbps {
                assert!(ppm[i] > tpm[i], "below crossover at {}", traffic[i]);
            } else if traffic[i] > out.crossover_mbps {
                assert!(ppm[i] < tpm[i], "above crossover at {}", traffic[i]);
            }
        }
    }
}
