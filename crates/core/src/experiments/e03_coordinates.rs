//! E3 — Figure 4 and Examples 4/5 of the Lim et al. excerpt: the Internet
//! Coordinate System, plus an accuracy comparison with Vivaldi.
//!
//! Two outputs:
//!
//! 1. **The worked example**, with the exact published numbers (α = 0.6,
//!    c̄ = ±[2.1, 1.5], host embeddings [−3, 1.8]/[−12, 0], predicted
//!    distances 0.94 / 3.42 / 10.01);
//! 2. **An accuracy sweep** on a simulated underlay: median relative error
//!    of ICS (by beacon count and dimension) vs Vivaldi (by gossip
//!    rounds) vs the explicit-measurement baseline — with the message
//!    overhead of each, since overhead is the entire argument for
//!    prediction methods (§3.2).

use crate::experiments::NetParams;
use crate::report::{f, Table};
use uap_coords::{IcsSystem, Matrix, VivaldiConfig};
use uap_info::{IcsService, VivaldiService};
use uap_sim::SimRng;

/// Accuracy-sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Beacon counts to evaluate for ICS.
    pub beacon_counts: Vec<usize>,
    /// Embedding dimensions to evaluate for ICS.
    pub dims: Vec<usize>,
    /// Vivaldi gossip rounds.
    pub vivaldi_rounds: usize,
    /// Random pairs used to score accuracy.
    pub eval_pairs: usize,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(120, seed),
            beacon_counts: vec![10, 16],
            dims: vec![2, 4],
            vivaldi_rounds: 60,
            eval_pairs: 300,
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            beacon_counts: vec![5, 10, 20, 40],
            dims: vec![2, 4, 6, 8],
            vivaldi_rounds: 60,
            eval_pairs: 2_000,
        }
    }
}

/// The worked-example table: every number the excerpt prints.
pub fn example_table() -> Table {
    let d = Matrix::from_rows(
        4,
        4,
        vec![
            0.0, 1.0, 3.0, 3.0, //
            1.0, 0.0, 3.0, 3.0, //
            3.0, 3.0, 0.0, 1.0, //
            3.0, 3.0, 1.0, 0.0,
        ],
    );
    let mut table = Table::new(
        "Figure 4 / Examples 4-5 — ICS worked example (paper value vs computed)",
        &["quantity", "paper", "computed"],
    );
    let ics2 = IcsSystem::build(&d, 2);
    let ics4 = IcsSystem::build(&d, 4);
    let mut push = |k: &str, paper: &str, got: f64| {
        table.row(&[k.to_owned(), paper.to_owned(), format!("{got:.4}")]);
    };
    push("alpha (n=2)", "0.6", ics2.alpha());
    push("|c1| axis 1 (n=2)", "2.1", ics2.beacon_coord(0)[0].abs());
    push("|c1| axis 2 (n=2)", "1.5", ics2.beacon_coord(0)[1].abs());
    push(
        "inter-AS beacon distance (n=2)",
        "3",
        ics2.predict(ics2.beacon_coord(0), ics2.beacon_coord(2)),
    );
    push("alpha (n=4)", "0.5927", ics4.alpha());
    push(
        "intra-AS beacon distance (n=4)",
        "0.8383",
        ics4.predict(ics4.beacon_coord(0), ics4.beacon_coord(1)),
    );
    push(
        "inter-AS beacon distance (n=4)",
        "3.0224",
        ics4.predict(ics4.beacon_coord(0), ics4.beacon_coord(2)),
    );
    let xa = ics2.host_coord(&[1.0, 1.0, 4.0, 4.0]);
    push("host A |x| axis 1", "3", xa[0].abs());
    push("host A |x| axis 2", "1.8", xa[1].abs());
    push(
        "L2(c1, xA)",
        "0.94",
        ics2.predict(&xa, ics2.beacon_coord(0)),
    );
    push(
        "L2(c3, xA)",
        "3.42",
        ics2.predict(&xa, ics2.beacon_coord(2)),
    );
    let xb = ics2.host_coord(&[10.0, 10.0, 10.0, 10.0]);
    push("host B |x| axis 1", "12", xb[0].abs());
    push(
        "L2(ci, xB)",
        "10.01",
        ics2.predict(&xb, ics2.beacon_coord(0)),
    );
    table
}

/// Runs the accuracy sweep.
pub fn run_accuracy(p: &Params) -> Table {
    let underlay = p.net.build();
    let mut table = Table::new(
        "E3 — latency prediction accuracy vs overhead",
        &[
            "technique",
            "config",
            "median_rel_err",
            "p90_rel_err",
            "messages",
        ],
    );
    let mut rng = SimRng::new(p.net.seed ^ 0xE3);
    for &m in &p.beacon_counts {
        for &n in &p.dims {
            if n > m {
                continue;
            }
            let svc = IcsService::build(&underlay, m, n, &mut rng);
            let q = svc.quality(&underlay, p.eval_pairs, &mut rng);
            table.row(&[
                "ics".into(),
                format!("m={m} n={n}"),
                f(q.median_rel_err),
                f(q.p90_rel_err),
                uap_info::provider::ProximityEstimator::overhead_messages(&svc).to_string(),
            ]);
        }
    }
    for rounds in [p.vivaldi_rounds / 4, p.vivaldi_rounds] {
        let mut svc = VivaldiService::new(underlay.n_hosts(), VivaldiConfig::default());
        svc.converge(&underlay, rounds, 4, &mut rng);
        let q = svc.quality(&underlay, p.eval_pairs, &mut rng);
        table.row(&[
            "vivaldi".into(),
            format!("rounds={rounds}"),
            f(q.median_rel_err),
            f(q.p90_rel_err),
            uap_info::provider::ProximityEstimator::overhead_messages(&svc).to_string(),
        ]);
    }
    // Explicit measurement: exact by definition, n(n-1) messages.
    let n = underlay.n_hosts() as u64;
    table.row(&[
        "explicit-ping".into(),
        "all-pairs".into(),
        "0".into(),
        "0".into(),
        (n * (n - 1)).to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_table_matches_paper_values() {
        let t = example_table();
        assert_eq!(t.len(), 13);
        for r in 0..t.len() {
            let paper: f64 = t.cell(r, 1).parse().unwrap();
            let got: f64 = t.cell(r, 2).parse().unwrap();
            // The paper prints 2 decimals; allow rounding plus 1%.
            let tol = paper.abs() * 0.01 + 0.01;
            assert!(
                (paper - got).abs() < tol,
                "{}: paper {paper} vs computed {got}",
                t.cell(r, 0)
            );
        }
    }

    #[test]
    fn accuracy_sweep_runs_and_prediction_beats_nothing() {
        let t = run_accuracy(&Params::quick(3));
        assert!(t.len() >= 5);
        let explicit_msgs: u64 = t.cell(t.len() - 1, 4).parse().unwrap();
        for r in 0..t.len() - 1 {
            let technique = t.cell(r, 0).to_owned();
            let msgs: u64 = t.cell(r, 4).parse().unwrap();
            let err: f64 = t.cell(r, 2).parse().unwrap();
            if technique == "ics" {
                // Landmark embedding is always far cheaper than an
                // all-pairs census, and must stay usefully accurate.
                assert!(msgs < explicit_msgs, "row {r}: {msgs} >= {explicit_msgs}");
                assert!(err < 0.6, "row {r} err {err}");
            } else {
                // Vivaldi's message cost is rounds-bound, not n²-bound; at
                // this tiny test scale it can exceed all-pairs (it wins at
                // population scale — see the full run in EXPERIMENTS.md).
                // Accuracy must still be useful once converged.
                assert!(err < 0.6 || msgs < explicit_msgs, "row {r} err {err}");
            }
        }
        let last_vivaldi_err: f64 = t.cell(t.len() - 2, 2).parse().unwrap();
        assert!(
            last_vivaldi_err < 0.6,
            "converged vivaldi err {last_vivaldi_err}"
        );
    }
}
