//! E4 — Table 1: "Number of exchanged Gnutella message types".
//!
//! The reprinted study compares unbiased Gnutella against oracle-biased
//! neighbor selection with hostcache list sizes 100 and 1000:
//!
//! ```text
//! Message Type   Unbiased   Biased,cache 100   Biased,cache 1000
//! Ping           7.6M       6.1M               4.0M
//! Pong           75.5M      59.0M              39.1M
//! Query          6.3M       4.0M               2.3M
//! QueryHit       3.5M       2.9M               1.9M
//! ```
//!
//! Absolute counts depend on scale; the *shape* to reproduce is the
//! monotone reduction of every row as the oracle sees more of the
//! hostcache, at non-collapsing search success.

use crate::experiments::NetParams;
use crate::report::Table;
use uap_gnutella::{run_experiment_with, GnutellaConfig, GnutellaReport, NeighborSelection};
use uap_sim::{ChurnConfig, SimTime, TraceLevel, Tracer};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Simulated duration.
    pub duration: SimTime,
    /// Mean session length for churn (None = static).
    pub churn_mean_secs: Option<f64>,
    /// Oracle list sizes to evaluate (the study used 100 and 1000).
    pub cache_sizes: Vec<usize>,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(200, seed),
            duration: SimTime::from_mins(10),
            churn_mean_secs: None,
            cache_sizes: vec![100, 1000],
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            duration: SimTime::from_mins(60),
            churn_mean_secs: Some(1_200.0),
            cache_sizes: vec![100, 1000],
        }
    }

    fn config(&self, selection: NeighborSelection) -> GnutellaConfig {
        GnutellaConfig {
            selection,
            duration: self.duration,
            churn: match self.churn_mean_secs {
                Some(m) => ChurnConfig::exponential(m),
                None => ChurnConfig::none(),
            },
            // The oracle study's hostcaches held up to 1000 entries.
            hostcache_size: self.cache_sizes.iter().copied().max().unwrap_or(100),
            ..Default::default()
        }
    }
}

/// All runs plus the rendered table.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Reports per configuration, in column order (unbiased first).
    pub reports: Vec<(String, GnutellaReport)>,
    /// The Table-1-shaped output.
    pub table: Table,
}

/// Runs the experiment.
pub fn run(p: &Params) -> Outcome {
    run_traced(p, &mut Tracer::disabled())
}

/// Like [`run`], but threads `tracer` through every sub-run; a
/// `experiment`/`phase` marker (Info) separates the per-configuration
/// trace segments so `xtask trace diff` divergence points name the run
/// they fall in.
pub fn run_traced(p: &Params, tracer: &mut Tracer) -> Outcome {
    let seed = p.net.seed ^ 0xE4;
    let phase = |t: &mut Tracer, name: &str| {
        let owned = name.to_owned();
        t.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", owned);
            },
        );
    };
    let mut reports: Vec<(String, GnutellaReport)> = Vec::new();
    phase(tracer, "unbiased");
    let (unbiased, _) = run_experiment_with(
        p.net.build(),
        p.config(NeighborSelection::Random),
        seed,
        tracer,
    );
    reports.push(("Unbiased Gnutella".into(), unbiased));
    for &cache in &p.cache_sizes {
        phase(tracer, &format!("biased-cache-{cache}"));
        let (r, _) = run_experiment_with(
            p.net.build(),
            p.config(NeighborSelection::OracleBiased { list_size: cache }),
            seed,
            tracer,
        );
        reports.push((format!("Biased, cache {cache}"), r));
    }

    let mut header: Vec<String> = vec!["Gnutella Message Type".into()];
    header.extend(reports.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 1 — number of exchanged Gnutella message types",
        &header_refs,
    );
    type Getter = fn(&GnutellaReport) -> u64;
    let rows: [(&str, Getter); 4] = [
        ("Ping", |r| r.ping_msgs),
        ("Pong", |r| r.pong_msgs),
        ("Query", |r| r.query_msgs),
        ("QueryHit", |r| r.queryhit_msgs),
    ];
    for (name, get) in rows {
        let mut row = vec![name.to_owned()];
        row.extend(reports.iter().map(|(_, r)| get(r).to_string()));
        table.row(&row);
    }
    // Auxiliary rows the study discusses in prose.
    let mut succ = vec!["search success".to_owned()];
    succ.extend(
        reports
            .iter()
            .map(|(_, r)| format!("{:.1}%", 100.0 * r.success_ratio())),
    );
    table.row(&succ);
    let mut oq = vec!["oracle queries".to_owned()];
    oq.extend(reports.iter().map(|(_, r)| r.oracle_queries.to_string()));
    table.row(&oq);
    Outcome { reports, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_reduces_every_message_row_monotonically() {
        let out = run(&Params::quick(7));
        assert_eq!(out.reports.len(), 3);
        let totals: Vec<u64> = out.reports.iter().map(|(_, r)| r.total_msgs()).collect();
        assert!(
            totals[1] < totals[0],
            "cache-100 {} !< unbiased {}",
            totals[1],
            totals[0]
        );
        assert!(
            totals[2] < totals[0],
            "cache-1000 {} !< unbiased {}",
            totals[2],
            totals[0]
        );
        // At test scale both oracle lists already see most of the host-
        // cache, so the 100-vs-1000 gradient flattens; allow 5% slack (the
        // full-scale run in EXPERIMENTS.md shows the clean ordering).
        assert!(
            totals[2] as f64 <= totals[1] as f64 * 1.05,
            "cache-1000 {} way above cache-100 {}",
            totals[2],
            totals[1]
        );
        // Pong dominates Ping, and Query >= QueryHit, as in the paper.
        for (_, r) in &out.reports {
            assert!(r.pong_msgs > r.ping_msgs);
            assert!(r.query_msgs >= r.queryhit_msgs);
        }
        // Search success does not collapse.
        let s0 = out.reports[0].1.success_ratio();
        let s2 = out.reports[2].1.success_ratio();
        assert!(s2 > 0.5 * s0, "success collapsed: {s0} -> {s2}");
    }

    #[test]
    fn table_shape_matches_paper() {
        let out = run(&Params::quick(8));
        assert_eq!(out.table.len(), 6);
        assert_eq!(out.table.cell(0, 0), "Ping");
        assert_eq!(out.table.cell(3, 0), "QueryHit");
    }
}
