//! E5 — Figures 5 and 6: overlay topology under uniform-random vs biased
//! neighbor selection.
//!
//! Figure 6 shows "(a) Uniform random neighbor selection and (b) biased
//! neighbor selection" with the biased overlay clustered along AS
//! boundaries and "a minimal number of inter-AS connections necessary to
//! keep the network connected". We report the structural metrics and can
//! export the raw edge lists for plotting.

use crate::experiments::NetParams;
use crate::graphstats::OverlayStats;
use crate::report::{f, pct, Table};
use uap_gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use uap_net::HostId;
use uap_sim::SimTime;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Run length (the overlay stabilizes quickly; joins dominate).
    pub duration: SimTime,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(200, seed),
            duration: SimTime::from_mins(5),
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            duration: SimTime::from_mins(15),
        }
    }
}

/// Per-policy snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Policy label.
    pub label: String,
    /// The overlay edges.
    pub edges: Vec<(HostId, HostId)>,
    /// Structure metrics.
    pub stats: OverlayStats,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// One snapshot per policy.
    pub snapshots: Vec<Snapshot>,
    /// The comparison table.
    pub table: Table,
}

/// Runs both policies and compares the resulting overlay graphs.
pub fn run(p: &Params) -> Outcome {
    let seed = p.net.seed ^ 0xE5;
    let configs = [
        ("uniform random", NeighborSelection::Random),
        (
            "oracle biased",
            NeighborSelection::OracleBiased { list_size: 1000 },
        ),
    ];
    let mut snapshots = Vec::new();
    let mut table = Table::new(
        "Figure 6 — overlay structure under neighbor-selection policies",
        &[
            "policy",
            "edges",
            "intra-AS edges",
            "intra share",
            "inter-AS edges",
            "components",
            "mean degree",
            "AS modularity",
        ],
    );
    for (label, selection) in configs {
        let cfg = GnutellaConfig {
            selection,
            duration: p.duration,
            // The study hands the whole hostcache to the oracle; a tiny
            // cache would starve it of same-AS candidates.
            hostcache_size: 1000.min(p.net.n_hosts),
            ..Default::default()
        };
        let (report, world) = run_experiment(p.net.build(), cfg, seed);
        let stats = OverlayStats::compute(&world.underlay, &report.edges);
        table.row(&[
            label.to_owned(),
            stats.edges.to_string(),
            stats.intra_as_edges.to_string(),
            pct(stats.intra_fraction()),
            stats.inter_as_edges.to_string(),
            stats.components.to_string(),
            f(stats.mean_degree),
            f(stats.as_modularity),
        ]);
        snapshots.push(Snapshot {
            label: label.to_owned(),
            edges: report.edges,
            stats,
        });
    }
    Outcome { snapshots, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_overlay_clusters_but_stays_connected() {
        let out = run(&Params::quick(11));
        let random = &out.snapshots[0].stats;
        let biased = &out.snapshots[1].stats;
        assert!(
            biased.intra_fraction() > 3.0 * random.intra_fraction(),
            "biased {} vs random {}",
            biased.intra_fraction(),
            random.intra_fraction()
        );
        assert!(biased.as_modularity > random.as_modularity);
        // "minimal number of inter-AS connections necessary to keep the
        // network connected": fewer inter-AS edges, but not a shattered
        // graph.
        assert!(biased.inter_as_edges < random.inter_as_edges);
        assert!(
            biased.components <= 3,
            "biased overlay shattered: {}",
            biased.components
        );
        assert_eq!(random.components, 1);
    }

    #[test]
    fn table_has_two_rows() {
        let out = run(&Params::quick(12));
        assert_eq!(out.table.len(), 2);
        assert!(!out.snapshots[0].edges.is_empty());
    }
}
