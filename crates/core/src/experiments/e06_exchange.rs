//! E6 — the §4 intra-AS file-exchange percentages.
//!
//! The reprinted study measures the share of file downloads served from
//! inside the downloader's own AS:
//!
//! * unbiased: **6.5 %**
//! * oracle at bootstrap, list 100: **7.3 %**
//! * oracle at bootstrap, list 1000: **10.02 %**
//! * oracle also at file-exchange time: **40.57 %** — "34 % of file
//!   content, which is otherwise available at a node within the querying
//!   node's AS, was previously downloaded from a node outside".
//!
//! Shape to reproduce: a modest rise from biasing the topology, then a
//! jump when the oracle ranks the QueryHit providers.

use crate::experiments::NetParams;
use crate::report::Table;
use uap_gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use uap_sim::SimTime;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Simulated duration.
    pub duration: SimTime,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(250, seed),
            duration: SimTime::from_mins(10),
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            duration: SimTime::from_mins(45),
        }
    }
}

/// Output: the four percentages.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// `(label, paper %, measured %)` per configuration.
    pub rows: Vec<(String, f64, f64)>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the four configurations.
pub fn run(p: &Params) -> Outcome {
    let seed = p.net.seed ^ 0xE6;
    let mk = |selection: NeighborSelection, oracle_exchange: bool| {
        let mut cfg = GnutellaConfig {
            selection,
            oracle_at_file_exchange: oracle_exchange,
            duration: p.duration,
            hostcache_size: 1000.min(p.net.n_hosts),
            ..Default::default()
        };
        // Moderate interest locality: strong enough that local sources
        // exist (the premise of [25][18][24]), weak enough that random
        // source selection rarely finds them — the regime the study's
        // 6.5 % unbiased baseline lives in.
        cfg.content.locality = 0.2;
        cfg
    };
    let configs: Vec<(String, f64, GnutellaConfig)> = vec![
        ("unbiased".into(), 6.5, mk(NeighborSelection::Random, false)),
        (
            "oracle list 100".into(),
            7.3,
            mk(NeighborSelection::OracleBiased { list_size: 100 }, false),
        ),
        (
            "oracle list 1000".into(),
            10.02,
            mk(NeighborSelection::OracleBiased { list_size: 1000 }, false),
        ),
        (
            "oracle also at file exchange".into(),
            40.57,
            mk(NeighborSelection::OracleBiased { list_size: 1000 }, true),
        ),
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "§4 — intra-AS share of file exchanges",
        &["configuration", "paper", "measured"],
    );
    for (label, paper, cfg) in configs {
        let (report, _) = run_experiment(p.net.build(), cfg, seed);
        let measured = report.intra_as_exchange_pct();
        table.row(&[
            label.clone(),
            format!("{paper:.2}%"),
            format!("{measured:.2}%"),
        ]);
        rows.push((label, paper, measured));
    }
    Outcome { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_shape_matches_the_study() {
        let out = run(&Params::quick(21));
        assert_eq!(out.rows.len(), 4);
        let m: Vec<f64> = out.rows.iter().map(|r| r.2).collect();
        // Biasing raises locality over unbiased…
        assert!(m[1] > m[0], "cache-100 {} !> unbiased {}", m[1], m[0]);
        // …the two list sizes are close at test scale (the gradient needs
        // paper-scale populations; EXPERIMENTS.md records it)…
        assert!(
            m[2] >= m[1] * 0.9,
            "cache-1000 {} vs cache-100 {}",
            m[2],
            m[1]
        );
        // …and consulting the oracle at file-exchange time gives the
        // characteristic jump over the unbiased share.
        assert!(
            m[3] >= m[2],
            "exchange-oracle {} below cache-1000 {}",
            m[3],
            m[2]
        );
        assert!(m[3] > 2.0 * m[0], "no jump: {} vs unbiased {}", m[3], m[0]);
        assert!(
            m[3] > 10.0,
            "oracle-exchange share suspiciously low: {}",
            m[3]
        );
    }
}
