//! E7 — the §5 testlab experiments.
//!
//! "Using 5 routers, 6 switches, and 15 computers, we configure four
//! different 5-AS topologies: ring, star, tree and random mesh. Each
//! router is connected to 3 machines, and each machine runs 3 instances of
//! Gnutella software, where one is an ultrapeer and the other two are leaf
//! nodes. Thus, we have a network of 45 Gnutella nodes. […] We experiment
//! with two schemes of file distribution. […] We generate 45 unique search
//! strings, one for each node, and allow each node to flood its search
//! query […] and analyze whether biased neighbor selection leads to any
//! unsuccessful content search which was otherwise successful in unbiased
//! Gnutella."
//!
//! We reproduce the setup: 5 ASes × 9 nodes (1 ultrapeer : 2 leaves per
//! "machine"), 270 files, uniform and variable share schemes, unbiased vs
//! oracle-biased, on all four topologies — reporting Query/QueryHit counts
//! and search success.

use crate::report::Table;
use uap_gnutella::{
    run_experiment, GnutellaConfig, GnutellaReport, NeighborSelection, RoleAssignment, ShareScheme,
};
use uap_net::{gen::testlab_specs, PopulationSpec, RoutingMode, Underlay, UnderlayConfig};
use uap_sim::{SimRng, SimTime};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Nodes in the network (the testlab ran 45).
    pub n_nodes: usize,
    /// Simulated duration (enough for every node to query several times).
    pub duration: SimTime,
    /// Seed.
    pub seed: u64,
}

impl Params {
    /// The testlab's own scale — it is already small.
    pub fn full(seed: u64) -> Params {
        Params {
            n_nodes: 45,
            duration: SimTime::from_mins(20),
            seed,
        }
    }

    /// Same size, shorter run.
    pub fn quick(seed: u64) -> Params {
        Params {
            n_nodes: 45,
            duration: SimTime::from_mins(8),
            seed,
        }
    }
}

fn testlab_underlay(name: &str, p: &Params) -> Underlay {
    let (_, spec) = testlab_specs()
        .into_iter()
        .find(|(n, _)| *n == name)
        .expect("known testlab topology"); // lint:allow(expect)
    let mut rng = SimRng::new(p.seed);
    let graph = spec.build(&mut rng);
    let cfg = UnderlayConfig {
        routing: RoutingMode::ShortestPath,
        ..Default::default()
    };
    Underlay::build(graph, &PopulationSpec::uniform(p.n_nodes), cfg, &mut rng)
}

fn testlab_config(
    selection: NeighborSelection,
    scheme: ShareScheme,
    duration: SimTime,
) -> GnutellaConfig {
    GnutellaConfig {
        selection,
        roles: RoleAssignment::EveryKth(3), // 1 ultrapeer : 2 leaves
        share_scheme: scheme,
        shared_per_peer: 6, // uniform: 6 each; variable: UP 12 / leaf 6 or 0
        up_degree: 3,
        leaf_degree: 2,
        query_ttl: 3,
        duration,
        hostcache_size: 45,
        content: uap_gnutella::config::ContentParams {
            n_files: 270, // "270 unique files with real content"
            zipf_s: 0.8,
            locality: 0.5,
        },
        ..Default::default()
    }
}

/// One testlab cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Topology name.
    pub topology: String,
    /// Share scheme label.
    pub scheme: String,
    /// Unbiased report.
    pub unbiased: GnutellaReport,
    /// Biased report.
    pub biased: GnutellaReport,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// All 4 topologies × 2 schemes.
    pub cells: Vec<Cell>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the full grid.
pub fn run(p: &Params) -> Outcome {
    let mut cells = Vec::new();
    let mut table = Table::new(
        "§5 testlab — 45 Gnutella nodes on four 5-AS topologies",
        &[
            "topology",
            "files",
            "policy",
            "Query",
            "QueryHit",
            "success",
            "intra-AS exchange",
        ],
    );
    for topo in ["ring", "star", "tree", "mesh"] {
        for (scheme, scheme_name) in [
            (ShareScheme::Uniform, "uniform"),
            (ShareScheme::Variable, "variable"),
        ] {
            let run_one = |selection: NeighborSelection| {
                let underlay = testlab_underlay(topo, p);
                let cfg = testlab_config(selection, scheme, p.duration);
                run_experiment(underlay, cfg, p.seed ^ 0xE7).0
            };
            let unbiased = run_one(NeighborSelection::Random);
            let biased = run_one(NeighborSelection::OracleBiased { list_size: 45 });
            for (policy, r) in [("unbiased", &unbiased), ("oracle", &biased)] {
                table.row(&[
                    topo.to_owned(),
                    scheme_name.to_owned(),
                    policy.to_owned(),
                    r.query_msgs.to_string(),
                    r.queryhit_msgs.to_string(),
                    format!("{:.1}%", 100.0 * r.success_ratio()),
                    format!("{:.1}%", r.intra_as_exchange_pct()),
                ]);
            }
            cells.push(Cell {
                topology: topo.to_owned(),
                scheme: scheme_name.to_owned(),
                unbiased,
                biased,
            });
        }
    }
    Outcome { cells, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_topologies_and_schemes() {
        let out = run(&Params::quick(31));
        assert_eq!(out.cells.len(), 8);
        assert_eq!(out.table.len(), 16);
    }

    #[test]
    fn biased_search_does_not_lose_queries_wholesale() {
        // The study's question: "whether biased neighbor selection leads to
        // any unsuccessful content search which was otherwise successful".
        let out = run(&Params::quick(32));
        for c in &out.cells {
            let su = c.unbiased.success_ratio();
            let sb = c.biased.success_ratio();
            assert!(
                sb > su - 0.25,
                "{} / {}: biased success {sb} collapsed vs {su}",
                c.topology,
                c.scheme
            );
        }
    }

    #[test]
    fn queries_flow_in_every_cell() {
        let out = run(&Params::quick(33));
        for c in &out.cells {
            assert!(c.unbiased.queries_issued > 40, "{}", c.topology);
            assert!(c.biased.queries_issued > 40, "{}", c.topology);
            assert!(c.unbiased.query_msgs > 0);
        }
    }

    #[test]
    fn variable_scheme_still_searchable() {
        // Half the leaves share nothing; ultrapeers share double. Search
        // success should remain meaningful.
        let out = run(&Params::quick(34));
        for c in out.cells.iter().filter(|c| c.scheme == "variable") {
            assert!(
                c.unbiased.success_ratio() > 0.3,
                "{}: {}",
                c.topology,
                c.unbiased.success_ratio()
            );
        }
    }
}
