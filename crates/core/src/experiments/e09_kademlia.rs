//! E9 — proximity in Kademlia (§4, Kaune et al. \[17\]).
//!
//! Three configurations — vanilla, PNS, PNS+PR — over the same underlay
//! and lookup workload. Reported per configuration: inter-AS share of
//! lookup RPCs, mean lookup latency, mean RPC count, lookup exactness
//! (did the lookup find the true closest node), and the routing tables'
//! mean AS distance. The shape from \[17\]: a large cut in inter-AS traffic
//! at unchanged hop counts and success.

use crate::experiments::NetParams;
use crate::report::{f, pct, Table};
use uap_kademlia::{DhtConfig, DhtNetwork, Key, ProximityMode};
use uap_net::host::AttachmentDist;
use uap_net::{HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Builds the E9 underlay with a **heavy-tailed AS population** (Zipf-like
/// weights over the leaf ASes): a few big consumer ISPs hold most peers,
/// as in the AS-size distributions of \[17\]'s measurement data. Uniform AS
/// sizes would cap same-AS contact opportunities at 1-2 %, hiding the
/// technique's effect.
fn heavy_tailed_underlay(net: &NetParams) -> Underlay {
    let mut rng = SimRng::new(net.seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: net.tier1,
        tier2_per_tier1: net.tier2_per_tier1,
        tier3_per_tier2: net.tier3_per_tier2,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    let weights: Vec<f64> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            if n.tier == uap_net::Tier::Tier3 {
                // Zipf over the leaf ASes by index.
                1.0 / (1.0 + (i % 7) as f64).powf(1.2)
            } else {
                0.0
            }
        })
        .collect();
    Underlay::build(
        graph,
        &PopulationSpec {
            n: net.n_hosts,
            attachment: AttachmentDist::Weighted(weights),
        },
        UnderlayConfig::default(),
        &mut rng,
    )
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Lookups per configuration.
    pub lookups: usize,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(128, seed),
            lookups: 100,
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams {
                n_hosts: 1_024,
                ..NetParams::full(seed)
            },
            lookups: 2_000,
        }
    }
}

/// Per-mode measurements.
#[derive(Clone, Copy, Debug)]
pub struct ModeResult {
    /// The mode.
    pub mode: ProximityMode,
    /// Inter-AS share of lookup RPCs.
    pub inter_as_fraction: f64,
    /// Mean AS-hop distance of one RPC.
    pub mean_rpc_as_hops: f64,
    /// Mean lookup latency (ms).
    pub mean_latency_ms: f64,
    /// Mean RPCs per lookup.
    pub mean_rpcs: f64,
    /// Fraction of lookups that found the true closest node.
    pub exactness: f64,
    /// Mean AS-hop distance of routing-table contacts.
    pub table_as_hops: f64,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// One result per mode (None, Pns, PnsPr).
    pub modes: Vec<ModeResult>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the comparison.
pub fn run(p: &Params) -> Outcome {
    run_traced(p, &mut Tracer::disabled())
}

/// Like [`run`], but installs `tracer` into each [`DhtNetwork`] so lookup
/// hop traces (`kademlia`/`lookup.*`) are recorded, with one
/// `experiment`/`phase` marker (Info) per proximity mode.
pub fn run_traced(p: &Params, tracer: &mut Tracer) -> Outcome {
    let mut modes = Vec::new();
    let mut table = Table::new(
        "E9 — proximity neighbor selection in Kademlia (after [17])",
        &[
            "mode",
            "inter-AS RPC share",
            "mean AS-hops/RPC",
            "mean latency (ms)",
            "mean RPCs/lookup",
            "lookup exactness",
            "table AS-hops",
        ],
    );
    for (label, mode) in [
        ("vanilla", ProximityMode::None),
        ("PNS", ProximityMode::Pns),
        ("PNS+PR", ProximityMode::PnsPr),
    ] {
        tracer.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", label);
            },
        );
        let mut rng = SimRng::new(p.net.seed ^ 0xE9);
        let cfg = DhtConfig {
            proximity: mode,
            ..Default::default()
        };
        let mut net = DhtNetwork::build(heavy_tailed_underlay(&p.net), cfg, &mut rng);
        net.tracer = std::mem::take(tracer);
        net.underlay.reset_traffic();
        let n = net.len();
        let mut inter = 0u64;
        let mut total = 0u64;
        let mut hops_sum = 0u64;
        let mut lat = 0.0;
        let mut exact = 0usize;
        for i in 0..p.lookups {
            let target = Key::random(&mut rng);
            let from = HostId::from_index(i * 7 % n);
            let out = net.lookup(from, &target, &mut rng);
            inter += out.inter_as_rpcs;
            total += out.rpcs;
            hops_sum += out.as_hops_sum;
            lat += out.latency_us as f64 / 1_000.0;
            if out.closest.first().map(|c| c.key) == net.true_closest(&target, 1).first().copied() {
                exact += 1;
            }
        }
        *tracer = std::mem::take(&mut net.tracer);
        let result = ModeResult {
            mode,
            inter_as_fraction: inter as f64 / total.max(1) as f64,
            mean_rpc_as_hops: hops_sum as f64 / total.max(1) as f64,
            mean_latency_ms: lat / p.lookups as f64,
            mean_rpcs: total as f64 / p.lookups as f64,
            exactness: exact as f64 / p.lookups as f64,
            table_as_hops: net.mean_table_as_hops(),
        };
        table.row(&[
            label.to_owned(),
            pct(result.inter_as_fraction),
            f(result.mean_rpc_as_hops),
            f(result.mean_latency_ms),
            f(result.mean_rpcs),
            pct(result.exactness),
            f(result.table_as_hops),
        ]);
        modes.push(result);
    }
    Outcome { modes, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pns_cuts_inter_as_share_keeps_success() {
        let out = run(&Params::quick(41));
        let vanilla = &out.modes[0];
        let pnspr = &out.modes[2];
        assert!(
            pnspr.inter_as_fraction < vanilla.inter_as_fraction,
            "{} !< {}",
            pnspr.inter_as_fraction,
            vanilla.inter_as_fraction
        );
        assert!(pnspr.exactness > 0.8 * vanilla.exactness);
        assert!(pnspr.table_as_hops < vanilla.table_as_hops);
        assert!(
            pnspr.mean_rpc_as_hops < vanilla.mean_rpc_as_hops,
            "{} !< {}",
            pnspr.mean_rpc_as_hops,
            vanilla.mean_rpc_as_hops
        );
        assert!(
            vanilla.exactness > 0.8,
            "vanilla exactness {}",
            vanilla.exactness
        );
    }

    #[test]
    fn latency_benefits_from_proximity_routing() {
        let out = run(&Params::quick(42));
        let vanilla = &out.modes[0];
        let pnspr = &out.modes[2];
        // Nearby hops are faster; allow equality but flag regressions.
        assert!(
            pnspr.mean_latency_ms < 1.2 * vanilla.mean_latency_ms,
            "pns+pr latency {} vs vanilla {}",
            pnspr.mean_latency_ms,
            vanilla.mean_latency_ms
        );
    }
}
