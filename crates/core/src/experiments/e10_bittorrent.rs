//! E10 — BitTorrent locality: biased neighbor selection \[3\] and
//! cost-aware BitTorrent \[32\], billed with the Figure 2 cost model.
//!
//! Four tracker/choking configurations over the same swarm. Reported:
//! intra-AS share of payload bytes, completion times, total transit bytes
//! and the summed ISP transit bill. Shape from \[3\]: BNS shifts most
//! traffic off transit links while download times stay in the same
//! ballpark.

use crate::experiments::NetParams;
use crate::report::{f, pct, Table};
use uap_bittorrent::{run_swarm_with, SwarmConfig, TrackerPolicy};
use uap_net::cost::{bill_all, total_transit_usd};
use uap_net::CostParams;
use uap_sim::{SimTime, TraceLevel, Tracer};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Swarm size (leechers).
    pub n_leechers: usize,
    /// Seeds.
    pub n_seeds: usize,
    /// Torrent pieces.
    pub n_pieces: usize,
    /// Tariffs for the billing step.
    pub cost: CostParams,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(120, seed),
            n_leechers: 80,
            n_seeds: 5,
            n_pieces: 48,
            cost: CostParams::default(),
        }
    }

    /// Paper-scale instance (the BNS paper simulates ~400-peer swarms).
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams {
                n_hosts: 500,
                ..NetParams::full(seed)
            },
            n_leechers: 400,
            n_seeds: 20,
            n_pieces: 128,
            cost: CostParams::default(),
        }
    }
}

/// Per-policy measurements.
#[derive(Clone, Debug)]
pub struct PolicyResult {
    /// Label.
    pub label: String,
    /// Intra-AS share of payload bytes.
    pub intra_fraction: f64,
    /// Mean completion seconds.
    pub mean_completion_secs: f64,
    /// Leechers finished.
    pub completed: usize,
    /// Rounds the swarm ran.
    pub rounds: u32,
    /// Total transit bytes (per-link weighted).
    pub transit_bytes: u64,
    /// Summed ISP transit bill (USD/month equivalent).
    pub transit_bill_usd: f64,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// One entry per policy.
    pub policies: Vec<PolicyResult>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the comparison.
pub fn run(p: &Params) -> Outcome {
    run_traced(p, &mut Tracer::disabled())
}

/// Like [`run`], but threads `tracer` through every swarm run so piece
/// exchange and choke decisions (`bittorrent`/`*`) are recorded, with one
/// `experiment`/`phase` marker (Info) per tracker policy.
pub fn run_traced(p: &Params, tracer: &mut Tracer) -> Outcome {
    let configs: Vec<(String, TrackerPolicy, bool)> = vec![
        ("random tracker".into(), TrackerPolicy::Random, false),
        (
            "BNS tracker".into(),
            TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            },
            false,
        ),
        ("cost-aware tracker".into(), TrackerPolicy::CostAware, false),
        (
            "BNS + CAT choking".into(),
            TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            },
            true,
        ),
    ];
    let mut policies = Vec::new();
    let mut table = Table::new(
        "E10 — swarm locality and ISP cost per tracker policy ([3],[32])",
        &[
            "policy",
            "intra-AS bytes",
            "mean completion (s)",
            "completed",
            "transit bytes",
            "transit bill (USD)",
        ],
    );
    for (label, tracker, cat) in configs {
        let cfg = SwarmConfig {
            n_leechers: p.n_leechers,
            n_seeds: p.n_seeds,
            n_pieces: p.n_pieces,
            tracker,
            cost_aware_choking: cat,
            ..Default::default()
        };
        let phase = label.clone();
        tracer.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", phase);
            },
        );
        let (report, underlay) = run_swarm_with(p.net.build(), cfg, p.net.seed ^ 0xE10, tracer);
        let horizon = SimTime::from_secs(10).mul(report.rounds as u64);
        let bills = bill_all(&underlay.graph, &underlay.traffic, &p.cost, horizon);
        let (_, _, transit_bytes) = underlay.traffic.totals();
        let result = PolicyResult {
            label: label.clone(),
            intra_fraction: report.intra_as_fraction,
            mean_completion_secs: report.mean_completion_secs(),
            completed: report.completed,
            rounds: report.rounds,
            transit_bytes,
            transit_bill_usd: total_transit_usd(&bills),
        };
        table.row(&[
            label,
            pct(result.intra_fraction),
            f(result.mean_completion_secs),
            format!("{}/{}", result.completed, p.n_leechers),
            result.transit_bytes.to_string(),
            f(result.transit_bill_usd),
        ]);
        policies.push(result);
    }
    Outcome { policies, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bns_shifts_traffic_off_transit_links() {
        let out = run(&Params::quick(51));
        let random = &out.policies[0];
        let bns = &out.policies[1];
        assert!(bns.intra_fraction > 1.5 * random.intra_fraction);
        assert!(
            bns.transit_bytes < random.transit_bytes,
            "bns transit {} !< random {}",
            bns.transit_bytes,
            random.transit_bytes
        );
        assert!(bns.transit_bill_usd <= random.transit_bill_usd);
        // Everyone still finishes, in comparable time (the [3] headline).
        assert_eq!(bns.completed, 80);
        assert!(bns.mean_completion_secs < 2.5 * random.mean_completion_secs);
    }

    #[test]
    fn all_policies_complete_the_swarm() {
        let out = run(&Params::quick(52));
        for p in &out.policies {
            assert_eq!(p.completed, 80, "{}", p.label);
            assert!(p.mean_completion_secs > 0.0);
        }
        assert_eq!(out.table.len(), 4);
    }
}
