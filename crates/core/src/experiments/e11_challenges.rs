//! E11 — the §6 challenges, quantified.
//!
//! * **Asymmetric node selection**: "the path from node A to node B is the
//!   shortest for node A, but at the same time the path from node B to
//!   node A is not the shortest for B. […] the asymmetry of peer selection
//!   results in less precise underlay measurements." We sweep an
//!   asymmetry factor and measure the precision of closest-peer selection
//!   based on one-way forward measurements.
//! * **Long hop**: "one single hop may represent a big distance in terms
//!   of delay". On a topology with one intercontinental link we measure
//!   how often AS-hop-based proximity picks a peer that is far in delay,
//!   and the latency penalty it pays versus true-RTT selection.
//! * **Mobile support**: "some underlay provided information such as
//!   ISP-location and latency no longer apply because of continuous
//!   variation". We cache ISP locations, migrate a fraction of peers to
//!   other ASes, and measure how the stale cache degrades biased
//!   selection.

use crate::experiments::NetParams;
use crate::report::{f, pct, Table};
use uap_net::{
    AsId, GeoPoint, HostId, PopulationSpec, RoutingMode, Tier, Underlay, UnderlayConfig,
};
use uap_sim::SimRng;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Asymmetry factors to sweep.
    pub asymmetry: Vec<f64>,
    /// Fractions of mobile peers to sweep.
    pub mobility: Vec<f64>,
    /// Selection trials per point.
    pub trials: usize,
    /// Candidate-set size per trial.
    pub candidates: usize,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(150, seed),
            asymmetry: vec![1.0, 2.0],
            mobility: vec![0.0, 0.3],
            trials: 60,
            candidates: 15,
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            asymmetry: vec![1.0, 1.25, 1.5, 2.0, 3.0],
            mobility: vec![0.0, 0.1, 0.2, 0.3, 0.5],
            trials: 400,
            candidates: 25,
        }
    }
}

/// (a) Asymmetric node selection: precision of forward-only measurement.
pub fn run_asymmetry(p: &Params) -> Table {
    let mut table = Table::new(
        "§6(a) — asymmetric node selection",
        &["asymmetry factor", "precision@1", "mean RTT penalty"],
    );
    for &a in &p.asymmetry {
        let mut rng = SimRng::new(p.net.seed ^ 0xE11A);
        let mut underlay = p.net.build();
        underlay.config.asymmetry = a;
        let n = underlay.n_hosts();
        let mut correct = 0usize;
        let mut penalty = 0.0;
        for _ in 0..p.trials {
            let me = HostId(rng.index(n) as u32);
            let cands: Vec<HostId> = rng
                .sample_indices(n, p.candidates + 1)
                .into_iter()
                .map(|i| HostId(i as u32))
                .filter(|&h| h != me)
                .take(p.candidates)
                .collect();
            // Node selects by its own forward one-way measurement…
            let chosen = *cands
                .iter()
                .min_by_key(|&&c| underlay.latency_directional_us(me, c).unwrap_or(u64::MAX))
                .expect("non-empty candidates"); // lint:allow(expect)
                                                 // …but what matters is the true round trip.
            let best = *cands
                .iter()
                .min_by_key(|&&c| underlay.rtt_us(me, c).unwrap_or(u64::MAX))
                .expect("non-empty candidates"); // lint:allow(expect)
            if chosen == best {
                correct += 1;
            }
            // lint:allow(expect) — both hosts were sampled from the connected graph
            let rc = underlay.rtt_us(me, chosen).expect("connected") as f64;
            // lint:allow(expect)
            let rb = underlay.rtt_us(me, best).expect("connected") as f64;
            penalty += rc / rb;
        }
        table.row(&[
            format!("{a:.2}"),
            pct(correct as f64 / p.trials as f64),
            f(penalty / p.trials as f64),
        ]);
    }
    table
}

/// (b) The long-hop problem: hop-count proximity vs true delay on a
/// topology with an intercontinental link.
pub fn run_long_hop(p: &Params) -> Table {
    let mut rng = SimRng::new(p.net.seed ^ 0xE11B);
    // Two regional clusters bridged by one very long link: a classic
    // intercontinental layout. 3 ASes per side around their hub.
    let mut g = uap_net::AsGraph::new();
    let hub_w = g.add_as(Tier::Tier1, GeoPoint::new(500.0, 500.0), 100.0);
    let hub_e = g.add_as(Tier::Tier1, GeoPoint::new(9_500.0, 500.0), 100.0);
    // One hop, 9 000 km — tens of milliseconds.
    g.add_peering(hub_w, hub_e, 45_000, 100_000.0);
    for (hub, x) in [(hub_w, 300.0), (hub_e, 9_300.0)] {
        for i in 0..3 {
            let a = g.add_as(
                Tier::Tier3,
                GeoPoint::new(x + i as f64 * 150.0, 300.0),
                40.0,
            );
            g.add_transit(hub, a, 2_000, 10_000.0);
        }
    }
    let underlay = Underlay::build(
        g,
        &PopulationSpec::leaf(p.net.n_hosts.min(200)),
        UnderlayConfig {
            routing: RoutingMode::ValleyFree,
            ..Default::default()
        },
        &mut rng,
    );
    let n = underlay.n_hosts();
    let mut mismatches = 0usize;
    let mut penalty_sum = 0.0;
    let mut worst: f64 = 1.0;
    for _ in 0..p.trials {
        let me = HostId(rng.index(n) as u32);
        let cands: Vec<HostId> = rng
            .sample_indices(n, p.candidates + 1)
            .into_iter()
            .map(|i| HostId(i as u32))
            .filter(|&h| h != me)
            .take(p.candidates)
            .collect();
        let by_hops = *cands
            .iter()
            .min_by_key(|&&c| (underlay.as_hops(me, c).unwrap_or(u32::MAX), c.0))
            .expect("non-empty"); // lint:allow(expect)
        let by_rtt = *cands
            .iter()
            .min_by_key(|&&c| underlay.rtt_us(me, c).unwrap_or(u64::MAX))
            .expect("non-empty"); // lint:allow(expect)
                                  // lint:allow(expect) — both hosts were sampled from the connected graph
        let r_hops = underlay.rtt_us(me, by_hops).expect("connected") as f64;
        // lint:allow(expect)
        let r_best = underlay.rtt_us(me, by_rtt).expect("connected") as f64;
        if by_hops != by_rtt {
            mismatches += 1;
        }
        let ratio = r_hops / r_best;
        penalty_sum += ratio;
        worst = worst.max(ratio);
    }
    let mut table = Table::new(
        "§6(a) — the long-hop problem (hop-count vs delay proximity)",
        &["metric", "value"],
    );
    table.row(&[
        "hop-based pick differs from delay-based".into(),
        pct(mismatches as f64 / p.trials as f64),
    ]);
    table.row(&[
        "mean RTT penalty of hop-based pick".into(),
        f(penalty_sum / p.trials as f64),
    ]);
    table.row(&["worst RTT penalty".into(), f(worst)]);
    table
}

/// (c) Mobility: stale cached ISP-locations degrade biased selection.
pub fn run_mobility(p: &Params) -> Table {
    let mut table = Table::new(
        "§6(c) — mobile peers invalidate cached ISP-location",
        &[
            "mobile fraction",
            "stale cache entries",
            "biased-selection precision",
        ],
    );
    for &frac in &p.mobility {
        let mut rng = SimRng::new(p.net.seed ^ 0xE11C);
        let mut underlay = p.net.build();
        let n = underlay.n_hosts();
        // Cache everyone's ISP-location, then migrate a fraction.
        let cached: Vec<AsId> = underlay
            .hosts
            .ids()
            .map(|h| underlay.hosts.as_of(h))
            .collect();
        let movers = rng.sample_indices(n, (n as f64 * frac) as usize);
        for &m in &movers {
            let new_as = AsId(rng.index(underlay.n_ases()) as u16);
            underlay.migrate_host(HostId(m as u32), new_as, &mut rng);
        }
        let stale = underlay
            .hosts
            .ids()
            .filter(|&h| cached[h.idx()] != underlay.hosts.as_of(h))
            .count();
        // Biased selection using the stale cache: pick the candidate the
        // cache says shares my AS; precision = how often it truly does.
        let mut hits = 0usize;
        let mut applicable = 0usize;
        for _ in 0..p.trials {
            let me = HostId(rng.index(n) as u32);
            let my_cached = cached[me.idx()];
            let cands: Vec<HostId> = rng
                .sample_indices(n, p.candidates + 1)
                .into_iter()
                .map(|i| HostId(i as u32))
                .filter(|&h| h != me)
                .take(p.candidates)
                .collect();
            let pick = cands.iter().find(|&&c| cached[c.idx()] == my_cached);
            if let Some(&pick) = pick {
                applicable += 1;
                if underlay.same_as(me, pick) {
                    hits += 1;
                }
            }
        }
        let precision = if applicable == 0 {
            1.0
        } else {
            hits as f64 / applicable as f64
        };
        table.row(&[pct(frac), format!("{stale}/{n}"), pct(precision)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_degrades_selection_precision() {
        let p = Params::quick(61);
        let t = run_asymmetry(&p);
        assert_eq!(t.len(), 2);
        let prec = |r: usize| -> f64 { t.cell(r, 1).trim_end_matches('%').parse::<f64>().unwrap() };
        // Symmetric latencies: forward measurement is exact.
        assert!(prec(0) > 99.0, "symmetric precision {}", prec(0));
        assert!(
            prec(1) < prec(0),
            "asymmetry did not hurt: {} vs {}",
            prec(1),
            prec(0)
        );
    }

    #[test]
    fn long_hop_penalty_exists() {
        let p = Params::quick(62);
        let t = run_long_hop(&p);
        let mismatch: f64 = t.cell(0, 1).trim_end_matches('%').parse().unwrap();
        let worst: f64 = t.cell(2, 1).parse().unwrap();
        assert!(
            mismatch > 5.0,
            "no hop/delay mismatch observed: {mismatch}%"
        );
        assert!(worst > 1.5, "worst-case penalty too mild: {worst}");
    }

    #[test]
    fn mobility_staleness_grows_with_move_fraction() {
        let p = Params::quick(63);
        let t = run_mobility(&p);
        let prec = |r: usize| -> f64 { t.cell(r, 2).trim_end_matches('%').parse::<f64>().unwrap() };
        assert!(prec(0) > 99.0, "static precision {}", prec(0));
        assert!(prec(1) < prec(0));
        let stale0: u32 = t.cell(0, 1).split('/').next().unwrap().parse().unwrap();
        let stale1: u32 = t.cell(1, 1).split('/').next().unwrap().parse().unwrap();
        assert_eq!(stale0, 0);
        assert!(stale1 > 0);
    }
}
