//! E12 — the §5.4 open issues: the overhead introduced by underlay
//! awareness, and robustness against churn.
//!
//! "This and a general study about the introduced overhead due to underlay
//! awareness remain open issues." Two harnesses:
//!
//! * [`run_overhead`] — messages spent by each collection technique to
//!   cover the same population, side by side: explicit all-pairs
//!   measurement, Vivaldi, ICS beacons, oracle queries, the CDN trick and
//!   the SkyEye tree;
//! * [`run_churn`] — Gnutella search success and signalling cost as churn
//!   intensifies, unbiased vs oracle-biased (does awareness survive
//!   turnover? — the §5.4 robustness question).

use crate::experiments::NetParams;
use crate::report::{f, pct, Table};
use uap_coords::VivaldiConfig;
use uap_gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use uap_info::provider::{ProximityEstimator, ResourceDirectory};
use uap_info::{IcsService, OnoEstimator, Oracle, SimulatedCdn, SkyEyeTree, VivaldiService};
use uap_net::HostId;
use uap_sim::{ChurnConfig, SimRng, SimTime};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Proximity queries to serve in the overhead comparison.
    pub queries: usize,
    /// Churn mean session lengths (seconds) to sweep; `f64::INFINITY`
    /// renders as "static".
    pub churn_sessions: Vec<f64>,
    /// Gnutella run length in the churn sweep.
    pub duration: SimTime,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(120, seed),
            queries: 200,
            churn_sessions: vec![f64::INFINITY, 300.0],
            duration: SimTime::from_mins(8),
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            queries: 2_000,
            churn_sessions: vec![f64::INFINITY, 1_800.0, 600.0, 300.0, 120.0],
            duration: SimTime::from_mins(30),
        }
    }
}

/// Overhead comparison: messages each technique needs to (a) set up and
/// (b) answer `queries` pairwise proximity queries over `n` hosts.
pub fn run_overhead(p: &Params) -> Table {
    let underlay = p.net.build();
    let n = underlay.n_hosts();
    let mut rng = SimRng::new(p.net.seed ^ 0xE12);
    let pairs: Vec<(HostId, HostId)> = (0..p.queries)
        .map(|_| {
            let a = HostId(rng.index(n) as u32);
            let mut b = HostId(rng.index(n) as u32);
            if a == b {
                b = HostId(((b.0 as usize + 1) % n) as u32);
            }
            (a, b)
        })
        .collect();
    let mut table = Table::new(
        "§5.4 — measurement overhead per collection technique",
        &["technique", "messages", "per query", "notes"],
    );
    // Explicit ping with cache.
    {
        let mut pinger = uap_info::ExplicitPinger::new(&underlay, true);
        for &(a, b) in &pairs {
            let _ = pinger.proximity(a, b, &mut rng);
        }
        let msgs = pinger.overhead_messages();
        table.row(&[
            "explicit ping (cached)".into(),
            msgs.to_string(),
            f(msgs as f64 / p.queries as f64),
            "exact; cost grows with query set".into(),
        ]);
    }
    // Vivaldi.
    {
        let mut svc = VivaldiService::new(n, VivaldiConfig::default());
        svc.converge(&underlay, 20, 2, &mut rng);
        for &(a, b) in &pairs {
            let _ = svc.proximity(a, b, &mut rng);
        }
        let msgs = svc.overhead_messages();
        table.row(&[
            "vivaldi (20 rounds x 2)".into(),
            msgs.to_string(),
            f(msgs as f64 / p.queries as f64),
            "queries free after convergence".into(),
        ]);
    }
    // ICS.
    {
        let svc = IcsService::build(&underlay, 8.min(n), 4, &mut rng);
        let msgs = svc.overhead_messages();
        table.row(&[
            "ics (8 beacons)".into(),
            msgs.to_string(),
            f(msgs as f64 / p.queries as f64),
            "one-time embedding, queries free".into(),
        ]);
    }
    // Oracle.
    {
        let mut oracle = Oracle::new(1000);
        for &(a, b) in &pairs {
            let _ = oracle.rank(&underlay, a, &[b]);
        }
        table.row(&[
            "isp oracle".into(),
            (2 * oracle.queries()).to_string(),
            "2".into(),
            "1 request + 1 ranked reply per query".into(),
        ]);
    }
    // CDN / Ono.
    {
        let cdn = SimulatedCdn::deploy(&underlay, 6);
        let mut ono = OnoEstimator::new(&underlay, cdn, 30);
        for &(a, b) in &pairs {
            let _ = ono.proximity(a, b, &mut rng);
        }
        let msgs = ono.overhead_messages();
        table.row(&[
            "cdn/ono (30 samples)".into(),
            msgs.to_string(),
            f(msgs as f64 / p.queries as f64),
            "piggybacks on CDN lookups".into(),
        ]);
    }
    // SkyEye (resource info, for completeness of the taxonomy).
    {
        let members: Vec<HostId> = underlay.hosts.ids().collect();
        let mut tree = SkyEyeTree::build(&underlay, members, 4, 16);
        for _ in 0..10 {
            tree.run_round();
        }
        table.row(&[
            "skyeye (10 rounds)".into(),
            tree.overhead_messages().to_string(),
            "-".into(),
            "n-1 msgs per aggregation round".into(),
        ]);
    }
    table
}

/// Churn sweep: success and signalling, unbiased vs oracle-biased.
pub fn run_churn(p: &Params) -> Table {
    let mut table = Table::new(
        "§5.4 — robustness against churn",
        &[
            "mean session",
            "policy",
            "search success",
            "total msgs",
            "rejoins",
        ],
    );
    for &session in &p.churn_sessions {
        for (label, selection) in [
            ("unbiased", NeighborSelection::Random),
            (
                "oracle",
                NeighborSelection::OracleBiased { list_size: 1000 },
            ),
        ] {
            let cfg = GnutellaConfig {
                selection,
                churn: if session.is_finite() {
                    ChurnConfig::exponential(session)
                } else {
                    ChurnConfig::none()
                },
                duration: p.duration,
                ..Default::default()
            };
            let (r, _) = run_experiment(p.net.build(), cfg, p.net.seed ^ 0xE12C);
            let session_label = if session.is_finite() {
                format!("{session:.0}s")
            } else {
                "static".into()
            };
            table.row(&[
                session_label,
                label.to_owned(),
                pct(r.success_ratio()),
                r.total_msgs().to_string(),
                r.joins.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_methods_beat_explicit_measurement() {
        let p = Params::quick(71);
        let t = run_overhead(&p);
        assert_eq!(t.len(), 6);
        let msgs = |r: usize| -> u64 { t.cell(r, 1).parse().unwrap() };
        let explicit = msgs(0);
        let vivaldi = msgs(1);
        let ics = msgs(2);
        // Coordinate systems answer *any* pair after a one-time cost far
        // below the n(n-1) an explicit all-pairs census would need.
        let n = 120u64;
        let all_pairs = n * (n - 1);
        assert!(ics < all_pairs / 2, "ics {ics} vs all-pairs {all_pairs}");
        assert!(
            vivaldi < all_pairs,
            "vivaldi {vivaldi} vs all-pairs {all_pairs}"
        );
        // Cached explicit measurement pays two messages per distinct pair.
        assert!(explicit <= 2 * p.queries as u64);
    }

    #[test]
    fn churn_reduces_success_for_both_policies() {
        let p = Params::quick(72);
        let t = run_churn(&p);
        assert_eq!(t.len(), 4);
        let succ = |r: usize| -> f64 { t.cell(r, 2).trim_end_matches('%').parse().unwrap() };
        // Static rows first, churn rows after.
        assert!(
            succ(2) <= succ(0) + 10.0,
            "unbiased: churn {} vs static {}",
            succ(2),
            succ(0)
        );
        assert!(
            succ(3) <= succ(1) + 10.0,
            "oracle: churn {} vs static {}",
            succ(3),
            succ(1)
        );
        // Rejoins only under churn.
        let rejoins: u64 = t.cell(2, 4).parse().unwrap();
        let static_joins: u64 = t.cell(0, 4).parse().unwrap();
        assert!(rejoins > static_joins);
    }
}
