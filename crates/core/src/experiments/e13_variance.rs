//! E13 (extension) — seed sensitivity of the headline claims.
//!
//! Not a paper artifact: a robustness study for this reproduction. For
//! each headline effect we compute the *relative improvement* of the
//! underlay-aware configuration over its baseline across independent
//! seeds, in parallel, and report mean ± sample std plus whether the
//! direction held for **every** seed. EXPERIMENTS.md's claim that "no
//! qualitative conclusion changes with the seed" is this table.

use crate::experiments::sweep::{seed_sweep, SeedStats};
use crate::experiments::NetParams;
use crate::report::Table;
use uap_bittorrent::{run_swarm, SwarmConfig, TrackerPolicy};
use uap_gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use uap_kademlia::{DhtConfig, DhtNetwork, Key, ProximityMode};
use uap_net::HostId;
use uap_sim::{SimRng, SimTime};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Seeds to evaluate.
    pub seeds: Vec<u64>,
    /// Worker threads.
    pub threads: usize,
    /// Hosts per run.
    pub n_hosts: usize,
    /// Gnutella run length.
    pub duration: SimTime,
}

impl Params {
    /// Small instance (4 seeds).
    pub fn quick(base_seed: u64) -> Params {
        Params {
            seeds: (0..4).map(|i| base_seed + i).collect(),
            threads: 4,
            n_hosts: 150,
            duration: SimTime::from_mins(6),
        }
    }

    /// Full instance (10 seeds).
    pub fn full(base_seed: u64) -> Params {
        Params {
            seeds: (0..10).map(|i| base_seed + i).collect(),
            threads: 8,
            n_hosts: 400,
            duration: SimTime::from_mins(15),
        }
    }
}

fn gnutella_message_reduction(p: &Params, seed: u64) -> f64 {
    let net = NetParams::quick(p.n_hosts, seed);
    let run = |sel: NeighborSelection| {
        let cfg = GnutellaConfig {
            selection: sel,
            duration: p.duration,
            hostcache_size: 1000.min(p.n_hosts),
            ..Default::default()
        };
        run_experiment(net.build(), cfg, seed).0.total_msgs() as f64
    };
    let unbiased = run(NeighborSelection::Random);
    let biased = run(NeighborSelection::OracleBiased { list_size: 1000 });
    (unbiased - biased) / unbiased
}

fn exchange_locality_jump(p: &Params, seed: u64) -> f64 {
    let net = NetParams::quick(p.n_hosts, seed);
    let run = |oracle_x: bool| {
        let mut cfg = GnutellaConfig {
            selection: NeighborSelection::OracleBiased { list_size: 1000 },
            oracle_at_file_exchange: oracle_x,
            duration: p.duration,
            hostcache_size: 1000.min(p.n_hosts),
            ..Default::default()
        };
        cfg.content.locality = 0.2;
        run_experiment(net.build(), cfg, seed)
            .0
            .intra_as_exchange_pct()
    };
    run(true) - run(false)
}

fn kademlia_hops_reduction(p: &Params, seed: u64) -> f64 {
    let net = NetParams::quick(128.min(p.n_hosts), seed);
    let run = |mode: ProximityMode| {
        let mut rng = SimRng::new(seed);
        let cfg = DhtConfig {
            proximity: mode,
            ..Default::default()
        };
        let mut dht = DhtNetwork::build(net.build(), cfg, &mut rng);
        let n = dht.len();
        let mut hops = 0u64;
        let mut rpcs = 0u64;
        for i in 0..60u32 {
            let out = dht.lookup(
                HostId(i % HostId::from_index(n).0),
                &Key::random(&mut rng),
                &mut rng,
            );
            hops += out.as_hops_sum;
            rpcs += out.rpcs;
        }
        hops as f64 / rpcs.max(1) as f64
    };
    let vanilla = run(ProximityMode::None);
    let pns = run(ProximityMode::PnsPr);
    (vanilla - pns) / vanilla
}

fn swarm_locality_gain(p: &Params, seed: u64) -> f64 {
    let net = NetParams::quick(p.n_hosts.min(120), seed);
    let run = |tracker: TrackerPolicy| {
        let cfg = SwarmConfig {
            n_leechers: 80.min(net.n_hosts - 5),
            n_seeds: 5,
            n_pieces: 48,
            tracker,
            ..Default::default()
        };
        run_swarm(net.build(), cfg, seed).0.intra_as_fraction
    };
    let random = run(TrackerPolicy::Random);
    let bns = run(TrackerPolicy::Bns {
        internal: 16,
        external: 4,
    });
    bns - random
}

/// One row of the sweep.
#[derive(Clone, Debug)]
pub struct Claim {
    /// Short name.
    pub name: String,
    /// Statistics across seeds.
    pub stats: SeedStats,
}

/// Sweep output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// All claims.
    pub claims: Vec<Claim>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the sweep (parallel over seeds per claim).
pub fn run(p: &Params) -> Outcome {
    type Metric<'a> = Box<dyn Fn(u64) -> f64 + Sync + 'a>;
    let rows: Vec<(&str, Metric)> = vec![
        (
            "E4: oracle message reduction",
            Box::new(|s| gnutella_message_reduction(p, s)),
        ),
        (
            "E6: exchange-oracle locality jump (pp)",
            Box::new(|s| exchange_locality_jump(p, s)),
        ),
        (
            "E9: PNS+PR AS-hop reduction",
            Box::new(|s| kademlia_hops_reduction(p, s)),
        ),
        (
            "E10: BNS payload-locality gain (abs)",
            Box::new(|s| swarm_locality_gain(p, s)),
        ),
    ];
    let mut table = Table::new(
        "E13 — seed sensitivity of the headline effects",
        &["claim", "mean ± std", "min", "max", "direction holds"],
    );
    let mut claims = Vec::new();
    for (name, metric) in rows {
        let stats = seed_sweep(&p.seeds, p.threads, metric);
        table.row(&[
            name.to_owned(),
            stats.render(),
            format!("{:.3}", stats.min),
            format!("{:.3}", stats.max),
            if stats.all_positive() {
                format!("yes ({}/{} seeds)", stats.n, stats.n)
            } else {
                "NO".to_owned()
            },
        ]);
        claims.push(Claim {
            name: name.to_owned(),
            stats,
        });
    }
    Outcome { claims, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_headline_effect_holds_across_seeds() {
        let out = run(&Params::quick(500));
        assert_eq!(out.claims.len(), 4);
        for c in &out.claims {
            assert!(
                c.stats.all_positive(),
                "{} reversed on some seed: min {}",
                c.name,
                c.stats.min
            );
        }
    }
}
