//! E14 (extension) — the latency-aware structured overlay of §4:
//! Geographically Scoped Hashing after Leopard \[33\].
//!
//! Workload: every peer publishes and retrieves *regionally popular*
//! content (the locality-correlated interest of \[25\]\[18\]\[24\]). Compared:
//! a plain Kademlia DHT (content hashes are location-blind, so a lookup
//! for the file "next door" routes across the world) versus the scoped
//! DHT (zone-prefixed identifiers keep both the route and the replica set
//! in the requester's region).

use crate::experiments::NetParams;
use crate::report::{f, pct, Table};
use uap_kademlia::{DhtConfig, DhtNetwork, Key, ProximityMode, ScopedDht};
use uap_net::HostId;
use uap_sim::SimRng;

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Regional content items per zone.
    pub items_per_zone: usize,
    /// Retrievals to measure.
    pub retrievals: usize,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(160, seed),
            items_per_zone: 5,
            retrievals: 120,
        }
    }

    /// Full instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            items_per_zone: 10,
            retrievals: 1_000,
        }
    }
}

/// Per-system measurements.
#[derive(Clone, Copy, Debug)]
pub struct SystemResult {
    /// Mean AS hops per lookup RPC.
    pub as_hops_per_rpc: f64,
    /// Mean retrieval latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Retrieval success ratio.
    pub success: f64,
    /// Inter-AS share of RPCs.
    pub inter_as_share: f64,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Plain DHT result.
    pub plain: SystemResult,
    /// Scoped (Leopard-style) result.
    pub scoped: SystemResult,
    /// Rendered table.
    pub table: Table,
}

const WORLD_KM: f64 = 5_000.0;

fn regional_names(zone: u8, items: usize) -> Vec<Vec<u8>> {
    (0..items)
        .map(|i| format!("regional-{zone}-{i}").into_bytes())
        .collect()
}

fn run_plain(p: &Params) -> SystemResult {
    let mut rng = SimRng::new(p.net.seed ^ 0xE14);
    let mut dht = DhtNetwork::build(
        p.net.build(),
        DhtConfig {
            proximity: ProximityMode::None,
            ..Default::default()
        },
        &mut rng,
    );
    let n = dht.len();
    // Publish: each zone's items stored under plain (location-blind) keys
    // by a publisher from that zone.
    let zones: Vec<u8> = (0..n)
        .map(|i| {
            uap_kademlia::gsh::zone_of(&dht.underlay.host(HostId::from_index(i)).geo, WORLD_KM)
        })
        .collect();
    let mut seen_zones: Vec<u8> = zones.clone();
    seen_zones.sort_unstable();
    seen_zones.dedup();
    for &z in &seen_zones {
        // lint:allow(expect) — z was drawn from this very list two lines up
        let pi = zones.iter().position(|&x| x == z).expect("seen zone");
        let publisher = HostId::from_index(pi);
        for name in regional_names(z, p.items_per_zone) {
            let key = Key::hash_of(&name);
            dht.store(publisher, &key, 1, &mut rng);
        }
    }
    // Retrieve own-zone content.
    let mut hops = 0u64;
    let mut rpcs = 0u64;
    let mut inter = 0u64;
    let mut lat = 0.0;
    let mut ok = 0usize;
    for i in 0..p.retrievals {
        let h = HostId::from_index(i * 13 % n);
        let z = zones[h.idx()];
        let name = &regional_names(z, p.items_per_zone)[i % p.items_per_zone];
        let key = Key::hash_of(name);
        let (out, got) = dht.retrieve(h, &key, &mut rng);
        hops += out.as_hops_sum;
        rpcs += out.rpcs;
        inter += out.inter_as_rpcs;
        lat += out.latency_us as f64 / 1_000.0;
        if got.is_some() {
            ok += 1;
        }
    }
    SystemResult {
        as_hops_per_rpc: hops as f64 / rpcs.max(1) as f64,
        mean_latency_ms: lat / p.retrievals as f64,
        success: ok as f64 / p.retrievals as f64,
        inter_as_share: inter as f64 / rpcs.max(1) as f64,
    }
}

fn run_scoped(p: &Params) -> SystemResult {
    let mut rng = SimRng::new(p.net.seed ^ 0xE14);
    let mut dht = ScopedDht::build(
        p.net.build(),
        DhtConfig {
            proximity: ProximityMode::None,
            ..Default::default()
        },
        WORLD_KM,
        &mut rng,
    );
    let n = dht.dht.len();
    let zones: Vec<u8> = (0..n)
        .map(|i| dht.zone_of_host(HostId::from_index(i)))
        .collect();
    let mut seen_zones: Vec<u8> = zones.clone();
    seen_zones.sort_unstable();
    seen_zones.dedup();
    for &z in &seen_zones {
        // lint:allow(expect) — z was drawn from this very list two lines up
        let pi = zones.iter().position(|&x| x == z).expect("seen zone");
        let publisher = HostId::from_index(pi);
        for name in regional_names(z, p.items_per_zone) {
            dht.publish_regional(publisher, &name, 1, &mut rng);
        }
    }
    let mut hops = 0u64;
    let mut rpcs = 0u64;
    let mut inter = 0u64;
    let mut lat = 0.0;
    let mut ok = 0usize;
    for i in 0..p.retrievals {
        let h = HostId::from_index(i * 13 % n);
        let z = zones[h.idx()];
        let name = &regional_names(z, p.items_per_zone)[i % p.items_per_zone];
        let (out, got) = dht.retrieve_regional(h, name, &mut rng);
        hops += out.as_hops_sum;
        rpcs += out.rpcs;
        inter += out.inter_as_rpcs;
        lat += out.latency_us as f64 / 1_000.0;
        if got.is_some() {
            ok += 1;
        }
    }
    SystemResult {
        as_hops_per_rpc: hops as f64 / rpcs.max(1) as f64,
        mean_latency_ms: lat / p.retrievals as f64,
        success: ok as f64 / p.retrievals as f64,
        inter_as_share: inter as f64 / rpcs.max(1) as f64,
    }
}

/// Runs the comparison.
pub fn run(p: &Params) -> Outcome {
    let plain = run_plain(p);
    let scoped = run_scoped(p);
    let mut table = Table::new(
        "E14 — geographically scoped hashing (Leopard [33]) vs plain DHT",
        &[
            "system",
            "AS-hops/RPC",
            "mean retrieval latency (ms)",
            "success",
            "inter-AS RPC share",
        ],
    );
    for (label, r) in [("plain kademlia", &plain), ("scoped (GSH)", &scoped)] {
        table.row(&[
            label.to_owned(),
            f(r.as_hops_per_rpc),
            f(r.mean_latency_ms),
            pct(r.success),
            pct(r.inter_as_share),
        ]);
    }
    Outcome {
        plain,
        scoped,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsh_localizes_regional_retrievals() {
        let out = run(&Params::quick(91));
        assert!(
            out.plain.success > 0.95,
            "plain success {}",
            out.plain.success
        );
        assert!(
            out.scoped.success > 0.95,
            "scoped success {}",
            out.scoped.success
        );
        assert!(
            out.scoped.as_hops_per_rpc < out.plain.as_hops_per_rpc,
            "scoped {} !< plain {}",
            out.scoped.as_hops_per_rpc,
            out.plain.as_hops_per_rpc
        );
        assert!(
            out.scoped.mean_latency_ms < out.plain.mean_latency_ms,
            "scoped latency {} !< plain {}",
            out.scoped.mean_latency_ms,
            out.plain.mean_latency_ms
        );
    }
}
