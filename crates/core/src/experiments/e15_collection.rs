//! E15 (extension) — the ISP-location collection techniques of Figure 3,
//! head to head.
//!
//! The survey classifies *how* ISP-location can be collected (IP-to-ISP
//! mapping, the oracle, P4P's iTracker, CDN inference) but does not
//! compare them quantitatively. This harness does: the same neighbor-
//! selection workload is served by each technique, and we report the
//! quality of the selections (true AS-hops of the chosen peers) against
//! the messages each technique spent — the accuracy/overhead frontier an
//! implementer actually chooses on.

use crate::experiments::NetParams;
use crate::report::{f, Table};
use uap_info::provider::{IspLocator, ProximityEstimator};
use uap_info::{
    Ip2IspService, OnoEstimator, Oracle, P4pEstimator, P4pService, PdistanceWeights, SimulatedCdn,
};
use uap_net::{HostId, Underlay};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Selection tasks (each picks the best `want` of `candidates`).
    pub tasks: usize,
    /// Candidate-set size per task.
    pub candidates: usize,
    /// Neighbors picked per task.
    pub want: usize,
}

impl Params {
    /// Small instance.
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(150, seed),
            tasks: 60,
            candidates: 30,
            want: 4,
        }
    }

    /// Full instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            tasks: 500,
            candidates: 50,
            want: 4,
        }
    }
}

/// One technique's score.
#[derive(Clone, Debug)]
pub struct TechniqueResult {
    /// Technique name.
    pub name: String,
    /// Mean true AS-hops of the selected peers (lower = better locality).
    pub mean_selected_as_hops: f64,
    /// Messages the technique cost.
    pub messages: u64,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// One entry per technique (random baseline first).
    pub techniques: Vec<TechniqueResult>,
    /// Rendered table.
    pub table: Table,
}

struct Task {
    who: HostId,
    candidates: Vec<HostId>,
}

fn make_tasks(u: &Underlay, p: &Params, rng: &mut SimRng) -> Vec<Task> {
    let n = u.n_hosts();
    (0..p.tasks)
        .map(|_| {
            let who = HostId::from_index(rng.index(n));
            let candidates: Vec<HostId> = rng
                .sample_indices(n, p.candidates + 1)
                .into_iter()
                .map(HostId::from_index)
                .filter(|&h| h != who)
                .take(p.candidates)
                .collect();
            Task { who, candidates }
        })
        .collect()
}

fn score(u: &Underlay, tasks: &[Task], selections: &[Vec<HostId>]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (t, sel) in tasks.iter().zip(selections) {
        for &s in sel {
            sum += u.as_hops(t.who, s).unwrap_or(99) as f64;
            count += 1;
        }
    }
    sum / count.max(1) as f64
}

/// Runs the shoot-out.
pub fn run(p: &Params) -> Outcome {
    run_traced(p, &mut Tracer::disabled())
}

/// Like [`run`], but records the per-call collection cost of the oracle
/// technique (`info`/`oracle.rank`) into `tracer`, with one
/// `experiment`/`phase` marker (Info) per technique.
pub fn run_traced(p: &Params, tracer: &mut Tracer) -> Outcome {
    let u = p.net.build();
    let mut rng = SimRng::new(p.net.seed ^ 0xE15);
    let tasks = make_tasks(&u, p, &mut rng);
    let mut techniques = Vec::new();
    let phase = |t: &mut Tracer, name: &'static str| {
        t.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", name);
            },
        );
    };

    // Random baseline: pick the first `want` (candidate order is random).
    {
        phase(tracer, "random");
        let selections: Vec<Vec<HostId>> = tasks
            .iter()
            .map(|t| t.candidates.iter().copied().take(p.want).collect())
            .collect();
        techniques.push(TechniqueResult {
            name: "random (no information)".into(),
            mean_selected_as_hops: score(&u, &tasks, &selections),
            messages: 0,
        });
    }
    // Oracle: exact per-query ranking.
    {
        phase(tracer, "oracle");
        let mut oracle = Oracle::new(usize::MAX);
        let selections: Vec<Vec<HostId>> = tasks
            .iter()
            .map(|t| {
                oracle
                    .rank_traced(&u, t.who, &t.candidates, SimTime::ZERO, tracer)
                    .into_iter()
                    .take(p.want)
                    .collect()
            })
            .collect();
        techniques.push(TechniqueResult {
            name: "isp oracle".into(),
            mean_selected_as_hops: score(&u, &tasks, &selections),
            messages: 2 * oracle.queries(),
        });
    }
    // P4P: cached p-distance maps.
    {
        phase(tracer, "p4p");
        let svc = P4pService::build(&u, PdistanceWeights::default());
        let mut est = P4pEstimator::new(&u, svc);
        let selections: Vec<Vec<HostId>> = tasks
            .iter()
            .map(|t| {
                est.rank(t.who, &t.candidates, &mut rng)
                    .into_iter()
                    .take(p.want)
                    .collect()
            })
            .collect();
        techniques.push(TechniqueResult {
            name: "p4p itracker (cached maps)".into(),
            mean_selected_as_hops: score(&u, &tasks, &selections),
            messages: est.overhead_messages(),
        });
    }
    // IP-to-ISP mapping: same-AS first, the rest in candidate order.
    {
        phase(tracer, "ip2isp");
        let mut mapping = Ip2IspService::build(&u, 1.0, SimRng::new(p.net.seed ^ 0x1731));
        let selections: Vec<Vec<HostId>> = tasks
            .iter()
            .map(|t| {
                let my = mapping.isp_of(t.who);
                let mut same: Vec<HostId> = t
                    .candidates
                    .iter()
                    .copied()
                    .filter(|&c| mapping.isp_of(c) == my)
                    .collect();
                for &c in &t.candidates {
                    if same.len() >= p.want {
                        break;
                    }
                    if !same.contains(&c) {
                        same.push(c);
                    }
                }
                same.truncate(p.want);
                same
            })
            .collect();
        techniques.push(TechniqueResult {
            name: "ip2isp mapping (same-AS first)".into(),
            mean_selected_as_hops: score(&u, &tasks, &selections),
            messages: mapping.queries(),
        });
    }
    // CDN/Ono inference.
    {
        phase(tracer, "cdn-ono");
        let cdn = SimulatedCdn::deploy(&u, 6);
        let mut ono = OnoEstimator::new(&u, cdn, 30);
        let selections: Vec<Vec<HostId>> = tasks
            .iter()
            .map(|t| {
                ono.rank(t.who, &t.candidates, &mut rng)
                    .into_iter()
                    .take(p.want)
                    .collect()
            })
            .collect();
        techniques.push(TechniqueResult {
            name: "cdn/ono ratio maps".into(),
            mean_selected_as_hops: score(&u, &tasks, &selections),
            messages: ono.overhead_messages(),
        });
    }

    let mut table = Table::new(
        "E15 — ISP-location collection techniques, quality vs overhead",
        &["technique", "mean AS-hops of selections", "messages"],
    );
    for t in &techniques {
        table.row(&[
            t.name.clone(),
            f(t.mean_selected_as_hops),
            t.messages.to_string(),
        ]);
    }
    Outcome { techniques, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_technique_beats_random_and_oracle_is_best() {
        let out = run(&Params::quick(97));
        let by_name = |n: &str| {
            out.techniques
                .iter()
                .find(|t| t.name.starts_with(n))
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let random = by_name("random");
        let oracle = by_name("isp oracle");
        let p4p = by_name("p4p");
        let ip = by_name("ip2isp");
        let ono = by_name("cdn/ono");
        for t in [oracle, p4p, ip, ono] {
            assert!(
                t.mean_selected_as_hops < random.mean_selected_as_hops,
                "{} ({}) not better than random ({})",
                t.name,
                t.mean_selected_as_hops,
                random.mean_selected_as_hops
            );
        }
        // The oracle has perfect information; nobody should beat it.
        for t in [p4p, ip, ono] {
            assert!(t.mean_selected_as_hops >= oracle.mean_selected_as_hops - 1e-9);
        }
        // P4P amortizes: far fewer messages than the oracle's per-query
        // round trips once tasks outnumber partitions.
        assert!(p4p.messages < oracle.messages);
    }
}
