//! E16 — resilience under deterministic fault campaigns (extension).
//!
//! One shared [`FaultPlan`] (a transit-link partition, latency inflation
//! and a host-crash window over the same epoch) is driven through all
//! three overlays plus a raw underlay probe, producing degradation and
//! recovery curves:
//!
//! - **underlay**: AS-pair reachability and component count at every
//!   epoch boundary;
//! - **Gnutella**: query and download success before / during / after
//!   the fault window, underlay-aware vs unaware, with download
//!   re-sourcing doing the recovery work;
//! - **Kademlia**: retrieval success and RPC retransmit cost across a
//!   pre-fault / faulted / recovered phase sequence;
//! - **BitTorrent**: swarm completion progress through a crash epoch,
//!   with tracker re-announces replacing dead neighbors.
//!
//! The paper's claim under test: underlay awareness does not make the
//! overlays brittle — after the last epoch clears, every recovery curve
//! regains its pre-fault level.

use crate::experiments::NetParams;
use crate::report::{f, pct, Table};
use uap_bittorrent::{run_swarm_with, SwarmConfig, TrackerPolicy};
use uap_gnutella::{run_experiment_with, GnutellaConfig, NeighborSelection};
use uap_kademlia::{DhtConfig, DhtNetwork, Key};
use uap_net::{FaultKind, FaultPlan, FaultState, HostId, Routing, RoutingMode};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Underlay shape.
    pub net: NetParams,
    /// Simulated Gnutella duration (the fault window sits inside it).
    pub duration: SimTime,
    /// Fault window start (all three fault kinds share it).
    pub fault_start: SimTime,
    /// Fault window end.
    pub fault_end: SimTime,
    /// Fraction of transit links cut during the window.
    pub transit_down_p: f64,
    /// Latency inflation factor during the window.
    pub latency_factor: f64,
    /// Number of hosts (`0..crash_hosts`) crashed during the window.
    pub crash_hosts: usize,
    /// Keys stored and retrieved in the Kademlia phases.
    pub n_keys: usize,
    /// Swarm leechers (the swarm gets its own, round-aligned window).
    pub swarm_leechers: usize,
    /// Swarm seeds.
    pub swarm_seeds: usize,
    /// Swarm fault window start.
    pub swarm_fault_start: SimTime,
    /// Swarm fault window end.
    pub swarm_fault_end: SimTime,
}

impl Params {
    /// Small instance (seconds).
    pub fn quick(seed: u64) -> Params {
        Params {
            net: NetParams::quick(150, seed),
            duration: SimTime::from_mins(24),
            fault_start: SimTime::from_mins(8),
            fault_end: SimTime::from_mins(16),
            transit_down_p: 0.7,
            latency_factor: 2.0,
            crash_hosts: 20,
            n_keys: 20,
            swarm_leechers: 60,
            swarm_seeds: 4,
            swarm_fault_start: SimTime::from_secs(60),
            swarm_fault_end: SimTime::from_secs(360),
        }
    }

    /// Paper-scale instance.
    pub fn full(seed: u64) -> Params {
        Params {
            net: NetParams::full(seed),
            duration: SimTime::from_mins(40),
            fault_start: SimTime::from_mins(12),
            fault_end: SimTime::from_mins(28),
            transit_down_p: 0.7,
            latency_factor: 2.0,
            crash_hosts: 60,
            n_keys: 40,
            swarm_leechers: 200,
            swarm_seeds: 10,
            swarm_fault_start: SimTime::from_secs(100),
            swarm_fault_end: SimTime::from_secs(600),
        }
    }

    /// The shared campaign: partition + latency inflation + crashes over
    /// one window. Masks are salt-derived, so every consumer of the plan
    /// sees the identical cut set.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new()
            .epoch(
                self.fault_start,
                self.fault_end,
                FaultKind::TransitDown {
                    p: self.transit_down_p,
                    salt: 0xE16,
                },
            )
            .epoch(
                self.fault_start,
                self.fault_end,
                FaultKind::LatencyInflation {
                    factor: self.latency_factor,
                },
            )
            .epoch(
                self.fault_start,
                self.fault_end,
                FaultKind::HostCrash {
                    hosts: (0..HostId::from_index(self.crash_hosts).0)
                        .map(HostId)
                        .collect(),
                },
            )
    }

    fn swarm_plan(&self) -> FaultPlan {
        // Crash leechers only (seeds occupy the first host slots) and cut
        // the same transit fraction, over the round-aligned window.
        let first = HostId::from_index(self.swarm_seeds).0;
        FaultPlan::new()
            .epoch(
                self.swarm_fault_start,
                self.swarm_fault_end,
                FaultKind::TransitDown {
                    p: self.transit_down_p,
                    salt: 0xE16,
                },
            )
            .epoch(
                self.swarm_fault_start,
                self.swarm_fault_end,
                FaultKind::HostCrash {
                    hosts: (first..first + HostId::from_index(self.crash_hosts).0)
                        .map(HostId)
                        .collect(),
                },
            )
    }
}

/// Query/download success fractions for one Gnutella configuration, over
/// the pre-fault / during-fault / post-recovery windows.
#[derive(Clone, Debug)]
pub struct GnutellaCurve {
    /// Configuration label.
    pub label: String,
    /// Query success fraction per window.
    pub query: [f64; 3],
    /// Download completion fraction per window.
    pub download: [f64; 3],
}

/// One Kademlia phase (pre-fault, faulted, recovered).
#[derive(Clone, Debug)]
pub struct KadPhase {
    /// Phase label.
    pub label: String,
    /// Retrievals that returned the stored value.
    pub successes: usize,
    /// Retrievals attempted.
    pub attempts: usize,
    /// RPCs issued across the phase.
    pub rpcs: u64,
    /// Retransmit attempts across the phase.
    pub retransmits: u64,
    /// Mean lookup latency (ms).
    pub mean_latency_ms: f64,
}

/// One swarm policy's trip through the crash epoch.
#[derive(Clone, Debug)]
pub struct SwarmResult {
    /// Tracker policy label.
    pub label: String,
    /// Leechers finished by the end of the run.
    pub completed: usize,
    /// Leechers total.
    pub leechers: usize,
    /// Rounds simulated.
    pub rounds: u32,
    /// Fault-driven tracker re-announces.
    pub reannounces: u64,
    /// Finished leechers when the fault window closed.
    pub done_at_fault_end: usize,
}

/// Experiment output: the four tables plus the raw curves for tests.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Reachability at every epoch boundary.
    pub reachability: Table,
    /// Gnutella success curves.
    pub gnutella: Table,
    /// Kademlia phase results.
    pub kademlia: Table,
    /// Swarm progress results.
    pub bittorrent: Table,
    /// Raw Gnutella curves.
    pub curves: Vec<GnutellaCurve>,
    /// Raw Kademlia phases.
    pub kad_phases: Vec<KadPhase>,
    /// Raw swarm results.
    pub swarms: Vec<SwarmResult>,
}

/// Runs the full campaign untraced.
pub fn run(p: &Params) -> Outcome {
    run_traced(p, &mut Tracer::disabled())
}

/// Like [`run`], but threads `tracer` through the overlay runs, with one
/// `experiment`/`phase` marker per configuration segment.
pub fn run_traced(p: &Params, tracer: &mut Tracer) -> Outcome {
    let reachability = probe_reachability(p);
    let (gnutella, curves) = run_gnutella(p, tracer);
    let (kademlia, kad_phases) = run_kademlia(p, tracer);
    let (bittorrent, swarms) = run_swarms(p, tracer);
    Outcome {
        reachability,
        gnutella,
        kademlia,
        bittorrent,
        curves,
        kad_phases,
        swarms,
    }
}

/// Samples the compiled plan at `t = 0` and every epoch boundary and
/// measures valley-free reachability under each mask.
fn probe_reachability(p: &Params) -> Table {
    let underlay = p.net.build();
    let compiled = p.plan().compile(&underlay.graph);
    let mut table = Table::new(
        "E16a — AS reachability across fault epochs",
        &[
            "t (s)",
            "links down",
            "crashed hosts",
            "reachable pairs",
            "components",
        ],
    );
    let mut sample = |t: SimTime| {
        let state = compiled.state_at(t);
        let routing = Routing::compute_with_mask(
            &underlay.graph,
            RoutingMode::ValleyFree,
            state.mask.as_deref(),
        );
        table.row(&[
            (t.as_micros() / 1_000_000).to_string(),
            state.links_down().to_string(),
            state.crashed.len().to_string(),
            pct(routing.reachable_fraction()),
            underlay
                .graph
                .component_count(state.mask.as_deref())
                .to_string(),
        ]);
    };
    sample(SimTime::ZERO);
    for &b in compiled.boundaries() {
        sample(b);
    }
    table
}

fn frac(hits: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Buckets a `(time, success)` log into pre/during/post window fractions.
fn windowed(log: &[(SimTime, bool)], start: SimTime, end: SimTime) -> [f64; 3] {
    let mut hits = [0usize; 3];
    let mut totals = [0usize; 3];
    for &(t, ok) in log {
        let w = if t < start {
            0
        } else if t < end {
            1
        } else {
            2
        };
        totals[w] += 1;
        if ok {
            hits[w] += 1;
        }
    }
    [
        frac(hits[0], totals[0]),
        frac(hits[1], totals[1]),
        frac(hits[2], totals[2]),
    ]
}

fn run_gnutella(p: &Params, tracer: &mut Tracer) -> (Table, Vec<GnutellaCurve>) {
    let configs: Vec<(&str, NeighborSelection, bool)> = vec![
        ("unaware", NeighborSelection::Random, false),
        (
            "oracle-aware",
            NeighborSelection::OracleBiased { list_size: 10 },
            true,
        ),
    ];
    let mut table = Table::new(
        "E16b — Gnutella success around the fault window (pre / fault / post)",
        &[
            "config",
            "query pre",
            "query fault",
            "query post",
            "dl pre",
            "dl fault",
            "dl post",
        ],
    );
    let mut curves = Vec::new();
    for (label, selection, oracle_dl) in configs {
        tracer.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", format!("gnutella/{label}"));
            },
        );
        let cfg = GnutellaConfig {
            selection,
            oracle_at_file_exchange: oracle_dl,
            duration: p.duration,
            download_retries: 3,
            faults: Some(p.plan()),
            ..Default::default()
        };
        let (_, world) = run_experiment_with(p.net.build(), cfg, p.net.seed ^ 0xE16, tracer);
        let query = windowed(world.query_log(), p.fault_start, p.fault_end);
        let download = windowed(world.download_log(), p.fault_start, p.fault_end);
        table.row(&[
            label.to_string(),
            pct(query[0]),
            pct(query[1]),
            pct(query[2]),
            pct(download[0]),
            pct(download[1]),
            pct(download[2]),
        ]);
        curves.push(GnutellaCurve {
            label: label.to_string(),
            query,
            download,
        });
    }
    (table, curves)
}

fn run_kademlia(p: &Params, tracer: &mut Tracer) -> (Table, Vec<KadPhase>) {
    let mut rng = SimRng::new(p.net.seed ^ 0x16AD);
    let cfg = DhtConfig {
        rpc_retries: 2,
        ..Default::default()
    };
    let mut net = DhtNetwork::build(p.net.build(), cfg, &mut rng);
    tracer.emit(
        SimTime::ZERO,
        "experiment",
        TraceLevel::Info,
        "phase",
        |f| {
            f.str("name", "kademlia/retrieval");
        },
    );
    // Joins stay untraced (they happen inside `build`); the phase
    // retrievals below record their lookup spans into the experiment's
    // tracer, then the swap is undone before the tables are built.
    std::mem::swap(&mut net.tracer, tracer);
    let n = net.len();
    let compiled = p.plan().compile(&net.underlay.graph);
    let mid = SimTime::from_micros((p.fault_start.as_micros() + p.fault_end.as_micros()) / 2);
    // Store everything before the campaign; replicas land on live nodes.
    let keys: Vec<Key> = (0..p.n_keys)
        .map(|i| Key::hash_of(format!("e16-key-{i}").as_bytes()))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        let from = HostId::from_index((i * 11) % n);
        net.store(from, k, i as u64, &mut rng);
    }
    // Query hosts sit outside the crash set so every phase issues the
    // same retrieval workload.
    let querier = |i: usize| HostId::from_index(p.crash_hosts + (i * 7) % (n - p.crash_hosts));
    let mut phases = Vec::new();
    let mut run_phase = |label: &str, net: &mut DhtNetwork, rng: &mut SimRng| {
        let mut ph = KadPhase {
            label: label.to_string(),
            successes: 0,
            attempts: keys.len(),
            rpcs: 0,
            retransmits: 0,
            mean_latency_ms: 0.0,
        };
        let mut latency_us = 0u64;
        for (i, k) in keys.iter().enumerate() {
            let (out, got) = net.retrieve(querier(i), k, rng);
            if got == Some(i as u64) {
                ph.successes += 1;
            }
            ph.rpcs += out.rpcs;
            ph.retransmits += out.retransmits;
            latency_us += out.latency_us;
        }
        ph.mean_latency_ms = latency_us as f64 / keys.len() as f64 / 1_000.0;
        phases.push(ph);
    };
    run_phase("pre-fault", &mut net, &mut rng);
    let state = compiled.state_at(mid);
    net.underlay.apply_fault_state(&state);
    for &h in &state.crashed {
        net.set_online(h, false);
    }
    run_phase("faulted", &mut net, &mut rng);
    net.underlay.apply_fault_state(&FaultState::clear());
    for &h in &state.crashed {
        net.set_online(h, true);
    }
    run_phase("recovered", &mut net, &mut rng);
    std::mem::swap(&mut net.tracer, tracer);
    let mut table = Table::new(
        "E16c — Kademlia retrieval with RPC retransmit (retries = 2)",
        &[
            "phase",
            "retrieved",
            "rpcs",
            "retransmits",
            "mean latency (ms)",
        ],
    );
    for ph in &phases {
        table.row(&[
            ph.label.clone(),
            format!("{}/{}", ph.successes, ph.attempts),
            ph.rpcs.to_string(),
            ph.retransmits.to_string(),
            f(ph.mean_latency_ms),
        ]);
    }
    (table, phases)
}

fn run_swarms(p: &Params, tracer: &mut Tracer) -> (Table, Vec<SwarmResult>) {
    let configs: Vec<(&str, TrackerPolicy)> = vec![
        ("random tracker", TrackerPolicy::Random),
        (
            "BNS tracker",
            TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            },
        ),
    ];
    let mut table = Table::new(
        "E16d — swarm completion through a crash epoch",
        &[
            "policy",
            "completed",
            "rounds",
            "re-announces",
            "done@window-close",
        ],
    );
    let mut results = Vec::new();
    for (label, tracker) in configs {
        tracer.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", format!("bittorrent/{label}"));
            },
        );
        let cfg = SwarmConfig {
            n_leechers: p.swarm_leechers,
            n_seeds: p.swarm_seeds,
            tracker,
            faults: Some(p.swarm_plan()),
            ..Default::default()
        };
        let round = cfg.round;
        let (report, _) = run_swarm_with(p.net.build(), cfg, p.net.seed ^ 0x5316, tracer);
        let close_round = (p.swarm_fault_end.as_micros() / round.as_micros()) as usize;
        let done_at_fault_end = report
            .completed_by_round
            .get(close_round.saturating_sub(1))
            .copied()
            .unwrap_or(report.completed);
        table.row(&[
            label.to_string(),
            format!("{}/{}", report.completed, report.leechers),
            report.rounds.to_string(),
            report.reannounces.to_string(),
            done_at_fault_end.to_string(),
        ]);
        results.push(SwarmResult {
            label: label.to_string(),
            completed: report.completed,
            leechers: report.leechers,
            rounds: report.rounds,
            reannounces: report.reannounces,
            done_at_fault_end,
        });
    }
    (table, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_dips_during_the_window_and_recovers() {
        let p = Params::quick(61);
        let out = run(&p);
        let t = &out.reachability;
        assert_eq!(t.len(), 3); // t=0 plus two boundaries
        assert_eq!(
            t.cell(0, 3),
            t.cell(2, 3),
            "post-window must equal pre-fault"
        );
        assert_ne!(
            t.cell(0, 3),
            t.cell(1, 3),
            "partition must cut reachability"
        );
        assert_eq!(t.cell(0, 1), "0");
        assert_ne!(t.cell(1, 1), "0");
    }

    #[test]
    fn overlays_regain_pre_fault_levels() {
        let out = run(&Params::quick(61));
        for c in &out.curves {
            // Query success is a sampled fraction (~600 queries per
            // window, ±1-2% sampling noise), so "regained pre-fault
            // level" means: strictly above the fault-window level and
            // within sampling tolerance of the pre-fault window.
            assert!(
                c.query[2] > c.query[1],
                "{}: query success must climb back above the fault level ({:?})",
                c.label,
                c.query
            );
            assert!(
                c.query[2] >= c.query[0] - 0.03,
                "{}: query success must recover ({:?})",
                c.label,
                c.query
            );
            assert!(
                c.download[2] >= c.download[0],
                "{}: download success must recover ({:?})",
                c.label,
                c.download
            );
            assert!(
                c.download[1] < 1.0,
                "{}: the fault window must actually hurt downloads ({:?})",
                c.label,
                c.download
            );
        }
        let pre = &out.kad_phases[0];
        let faulted = &out.kad_phases[1];
        let recovered = &out.kad_phases[2];
        assert_eq!(pre.retransmits, 0, "fault-free retrievals never retransmit");
        assert!(
            faulted.retransmits > 0,
            "crashed replicas must cost retransmits"
        );
        assert!(faulted.mean_latency_ms > pre.mean_latency_ms);
        assert!(
            recovered.successes >= pre.successes,
            "retrieval must recover"
        );
        for s in &out.swarms {
            assert_eq!(s.completed, s.leechers, "{}: swarm must recover", s.label);
            assert!(
                s.reannounces > 0,
                "{}: crashes must force re-announces",
                s.label
            );
            assert!(
                s.done_at_fault_end < s.completed,
                "{}: some completions must land after the window",
                s.label
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&Params::quick(62));
        let b = run(&Params::quick(62));
        assert_eq!(a.reachability.to_csv(), b.reachability.to_csv());
        assert_eq!(a.gnutella.to_csv(), b.gnutella.to_csv());
        assert_eq!(a.kademlia.to_csv(), b.kademlia.to_csv());
        assert_eq!(a.bittorrent.to_csv(), b.bittorrent.to_csv());
    }
}
