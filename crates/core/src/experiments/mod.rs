//! Experiment harnesses — one module per paper artifact.
//!
//! | Module | Paper artifact | What it regenerates |
//! |---|---|---|
//! | [`e01_hierarchy`] | Figure 1 | hierarchical ISP topology census |
//! | [`e02_cost`] | Figure 2 | transit vs peering cost curves |
//! | [`e03_coordinates`] | Figure 4 + Examples 4/5 | ICS numbers + accuracy sweep |
//! | [`e04_messages`] | Table 1 | Gnutella message counts, unbiased vs oracle |
//! | [`e05_clustering`] | Figures 5/6 | overlay topology structure |
//! | [`e06_exchange`] | §4 percentages | intra-AS file-exchange share |
//! | [`e07_testlab`] | §5 testlab | 45-node runs on ring/star/tree/mesh |
//! | [`e09_kademlia`] | §4 \[17\] | proximity routing in Kademlia |
//! | [`e10_bittorrent`] | \[3\]\[32\] | swarm locality and ISP bills |
//! | [`e11_challenges`] | §6 | asymmetry, long-hop, mobility |
//! | [`e12_overhead`] | §5.4 | awareness overhead and churn robustness |
//! | [`e13_variance`] | (extension) | seed sensitivity of the headline effects |
//! | [`e14_gsh`] | §4 / Table 1 "Leopard" | geographically scoped hashing |
//! | [`e16_resilience`] | (extension) | fault-campaign degradation and recovery curves |
//!
//! (E8, the Table 2 impact matrix, lives in [`crate::impact`] because it
//! composes several of these.)
//!
//! Every harness takes a params struct with `quick()` (seconds, used in
//! tests and criterion benches) and `full()` (the figures quoted in
//! EXPERIMENTS.md) constructors, and returns [`crate::report::Table`]s
//! ready to print or dump as CSV.

pub mod e01_hierarchy;
pub mod e02_cost;
pub mod e03_coordinates;
pub mod e04_messages;
pub mod e05_clustering;
pub mod e06_exchange;
pub mod e07_testlab;
pub mod e09_kademlia;
pub mod e10_bittorrent;
pub mod e11_challenges;
pub mod e12_overhead;
pub mod e13_variance;
pub mod e14_gsh;
pub mod e15_collection;
pub mod e16_resilience;
pub mod sweep;

use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use uap_sim::SimRng;

/// Shared underlay shape used by the overlay experiments: a hierarchical
/// local/transit-ISP Internet (Figure 1's structure).
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Tier-1 (global transit) count.
    pub tier1: usize,
    /// Tier-2 per Tier-1.
    pub tier2_per_tier1: usize,
    /// Tier-3 per Tier-2.
    pub tier3_per_tier2: usize,
    /// End hosts attached to Tier-3 ISPs.
    pub n_hosts: usize,
    /// Topology/population seed.
    pub seed: u64,
}

impl NetParams {
    /// A small network for tests and benches (~150 hosts, 20 leaf ASes).
    pub fn quick(n_hosts: usize, seed: u64) -> NetParams {
        NetParams {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 4,
            n_hosts,
            seed,
        }
    }

    /// The paper-scale network (~1 000 hosts over ~40 leaf ASes).
    pub fn full(seed: u64) -> NetParams {
        NetParams {
            tier1: 3,
            tier2_per_tier1: 3,
            tier3_per_tier2: 4,
            n_hosts: 1_000,
            seed,
        }
    }

    /// Builds the underlay.
    pub fn build(&self) -> Underlay {
        let mut rng = SimRng::new(self.seed);
        let graph = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: self.tier1,
            tier2_per_tier1: self.tier2_per_tier1,
            tier3_per_tier2: self.tier3_per_tier2,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            graph,
            &PopulationSpec::leaf(self.n_hosts),
            UnderlayConfig::default(),
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_build() {
        let q = NetParams::quick(100, 1).build();
        assert_eq!(q.n_hosts(), 100);
        assert_eq!(q.n_ases(), 2 + 4 + 16);
        let f = NetParams::full(1);
        assert_eq!(f.n_hosts, 1_000);
    }
}
