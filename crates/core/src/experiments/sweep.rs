//! Parallel parameter sweeps and seed-sensitivity statistics.
//!
//! Each simulation run is single-threaded and deterministic; sweeps over
//! seeds or parameters are embarrassingly parallel. [`parallel_map`] fans
//! work out over crossbeam scoped threads, and [`SeedStats`] summarizes a
//! metric across seeds — the error bars behind EXPERIMENTS.md's claim
//! that "no qualitative conclusion changes with the seed".

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item using up to `threads` worker threads,
/// preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    // Wrap items in Options so workers can take them out by index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Order-preserving fork-join: results land in their input slots, so
    // output is independent of worker scheduling. lint:allow(threads)
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().take().expect("each slot taken once"); // lint:allow(expect)
                let r = f(item);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("worker panicked"); // lint:allow(expect)
    results
        .into_iter()
        .map(|m| m.into_inner().expect("all slots filled")) // lint:allow(expect)
        .collect()
}

/// Summary statistics of a metric across seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedStats {
    /// Number of seeds.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl SeedStats {
    /// Computes the statistics of a sample.
    pub fn of(values: &[f64]) -> SeedStats {
        let n = values.len();
        if n == 0 {
            return SeedStats {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        SeedStats {
            n,
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// `mean ± std` rendered for tables.
    pub fn render(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.std)
    }

    /// Whether every observation is strictly positive — the "qualitative
    /// direction holds for every seed" check.
    pub fn all_positive(&self) -> bool {
        self.n > 0 && self.min > 0.0
    }
}

/// Runs `metric` for each seed in parallel and summarizes.
pub fn seed_sweep<F>(seeds: &[u64], threads: usize, metric: F) -> SeedStats
where
    F: Fn(u64) -> f64 + Sync,
{
    let values = parallel_map(seeds.to_vec(), threads, metric);
    SeedStats::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn parallel_map_runs_every_item_exactly_once() {
        let counter = AtomicU32::new(0);
        let out = parallel_map((0..57).collect(), 4, |_x: u32| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7u32], 16, |x| x + 1), vec![8]);
    }

    #[test]
    fn stats_are_correct() {
        let s = SeedStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.all_positive());
        let neg = SeedStats::of(&[1.0, -0.5]);
        assert!(!neg.all_positive());
        let empty = SeedStats::of(&[]);
        assert_eq!(empty.n, 0);
        assert!(!empty.all_positive());
    }

    #[test]
    fn seed_sweep_is_deterministic_regardless_of_threads() {
        let seeds: Vec<u64> = (0..16).collect();
        let f = |s: u64| (s as f64).sin().abs() + 1.0;
        let a = seed_sweep(&seeds, 1, f);
        let b = seed_sweep(&seeds, 8, f);
        assert_eq!(a, b);
        assert!(a.all_positive());
    }
}
