//! The general architecture: Figure 3's taxonomy as data.
//!
//! An [`AwarenessProfile`] names *what* underlay information a system
//! consumes ([`InfoType`]), *how* it is collected ([`CollectionTechnique`])
//! and *what for* ([`UsageStrategy`]). [`taxonomy`] enumerates the valid
//! (information, technique) pairs exactly as Figure 3 draws them, and
//! [`AwarenessProfile::validate`] rejects combinations the taxonomy does
//! not contain — the framework's structural guarantee.

use std::fmt;

/// The four kinds of underlay information (§2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InfoType {
    /// Which ISP a peer connects through (§2.1).
    IspLocation,
    /// Pairwise packet delay (§2.2).
    Latency,
    /// Physical position (§2.4).
    Geolocation,
    /// Peer capabilities: bandwidth, CPU, storage, uptime (§2.3).
    PeerResources,
}

impl InfoType {
    /// All four, in the paper's order.
    pub const ALL: [InfoType; 4] = [
        InfoType::IspLocation,
        InfoType::Latency,
        InfoType::Geolocation,
        InfoType::PeerResources,
    ];
}

impl fmt::Display for InfoType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InfoType::IspLocation => "ISP-location",
            InfoType::Latency => "Latency",
            InfoType::Geolocation => "Geolocation",
            InfoType::PeerResources => "Peer Resources",
        };
        f.write_str(s)
    }
}

/// Collection techniques — the leaves of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CollectionTechnique {
    /// IP-to-ISP mapping services \[13\]\[14\]\[15\].
    IpToIspMapping,
    /// ISP component in the network (the oracle of \[1\], P4P \[29\]).
    IspComponent,
    /// CDN-provided information (Ono \[5\]).
    CdnInference,
    /// Explicit ping/traceroute measurements.
    ExplicitMeasurement,
    /// Decentralized coordinates (Vivaldi \[7\]).
    VivaldiCoordinates,
    /// Landmark/beacon coordinates (ICS \[20\], GNP-style).
    LandmarkCoordinates,
    /// Satellite positioning (GPS/Galileo/GLONASS \[12\]).
    Gps,
    /// IP-to-location mapping services.
    IpToLocationMapping,
    /// The ISP's customer records.
    IspProvidedLocation,
    /// Information management overlay (SkyEye.KOM \[11\]).
    InfoManagementOverlay,
}

impl fmt::Display for CollectionTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectionTechnique::IpToIspMapping => "IP-to-ISP mapping service",
            CollectionTechnique::IspComponent => "ISP component in network (oracle)",
            CollectionTechnique::CdnInference => "CDN-provided information",
            CollectionTechnique::ExplicitMeasurement => "explicit measurement (ping)",
            CollectionTechnique::VivaldiCoordinates => "prediction: Vivaldi coordinates",
            CollectionTechnique::LandmarkCoordinates => "prediction: landmark/ICS coordinates",
            CollectionTechnique::Gps => "GPS",
            CollectionTechnique::IpToLocationMapping => "IP-to-location mapping service",
            CollectionTechnique::IspProvidedLocation => "ISP-provided location",
            CollectionTechnique::InfoManagementOverlay => "information management overlay",
        };
        f.write_str(s)
    }
}

/// Usage strategies (§4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UsageStrategy {
    /// Biased neighbor selection (BNS \[3\], oracle \[1\]).
    BiasedNeighborSelection,
    /// Source selection at file-exchange time (\[1\] §4).
    BiasedSourceSelection,
    /// Proximity-aware DHT routing (Kademlia PNS/PR \[17\]).
    ProximityRouting,
    /// Latency-aware overlay construction (Leopard \[33\], eCAN \[30\]).
    LatencyAwareOverlay,
    /// Geolocation-based overlay with location-constrained search
    /// (Globase.KOM \[19\], GeoPeer \[2\]).
    GeoOverlay,
    /// Resource-aware superpeer selection (SkyEye.KOM \[11\]).
    SuperpeerSelection,
    /// Cost-aware transfer scheduling (CAT \[32\]).
    CostAwareScheduling,
}

impl fmt::Display for UsageStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UsageStrategy::BiasedNeighborSelection => "biased neighbor selection",
            UsageStrategy::BiasedSourceSelection => "biased source selection",
            UsageStrategy::ProximityRouting => "proximity DHT routing",
            UsageStrategy::LatencyAwareOverlay => "latency-aware overlay",
            UsageStrategy::GeoOverlay => "geolocation overlay",
            UsageStrategy::SuperpeerSelection => "superpeer selection",
            UsageStrategy::CostAwareScheduling => "cost-aware scheduling",
        };
        f.write_str(s)
    }
}

/// The (information, technique) pairs of Figure 3.
pub fn taxonomy() -> Vec<(InfoType, CollectionTechnique)> {
    use CollectionTechnique as C;
    use InfoType as I;
    vec![
        (I::IspLocation, C::IpToIspMapping),
        (I::IspLocation, C::IspComponent),
        (I::IspLocation, C::CdnInference),
        (I::Latency, C::ExplicitMeasurement),
        (I::Latency, C::VivaldiCoordinates),
        (I::Latency, C::LandmarkCoordinates),
        (I::Geolocation, C::Gps),
        (I::Geolocation, C::IpToLocationMapping),
        (I::Geolocation, C::IspProvidedLocation),
        (I::PeerResources, C::InfoManagementOverlay),
    ]
}

/// The information each usage strategy consumes.
pub fn required_info(usage: UsageStrategy) -> InfoType {
    match usage {
        UsageStrategy::BiasedNeighborSelection
        | UsageStrategy::BiasedSourceSelection
        | UsageStrategy::ProximityRouting
        | UsageStrategy::CostAwareScheduling => InfoType::IspLocation,
        UsageStrategy::LatencyAwareOverlay => InfoType::Latency,
        UsageStrategy::GeoOverlay => InfoType::Geolocation,
        UsageStrategy::SuperpeerSelection => InfoType::PeerResources,
    }
}

/// A complete awareness configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AwarenessProfile {
    /// The information type in play.
    pub info: InfoType,
    /// How it is collected.
    pub collection: CollectionTechnique,
    /// What the overlay does with it.
    pub usage: UsageStrategy,
}

impl AwarenessProfile {
    /// Checks the profile against the taxonomy: the collection technique
    /// must produce the declared information type, and the usage strategy
    /// must consume it.
    pub fn validate(&self) -> Result<(), String> {
        if !taxonomy().contains(&(self.info, self.collection)) {
            return Err(format!(
                "{} is not a collection technique for {}",
                self.collection, self.info
            ));
        }
        if required_info(self.usage) != self.info {
            return Err(format!(
                "{} consumes {}, not {}",
                self.usage,
                required_info(self.usage),
                self.info
            ));
        }
        Ok(())
    }

    /// The surveyed systems of the paper's Table 1, as valid profiles —
    /// the framework can express every row.
    pub fn surveyed_systems() -> Vec<(&'static str, AwarenessProfile)> {
        use CollectionTechnique as C;
        use InfoType as I;
        use UsageStrategy as U;
        vec![
            (
                "BNS (Bindal et al.)",
                AwarenessProfile {
                    info: I::IspLocation,
                    collection: C::IspComponent,
                    usage: U::BiasedNeighborSelection,
                },
            ),
            (
                "Oracle (Aggarwal et al.)",
                AwarenessProfile {
                    info: I::IspLocation,
                    collection: C::IspComponent,
                    usage: U::BiasedNeighborSelection,
                },
            ),
            (
                "Ono (Choffnes/Bustamante)",
                AwarenessProfile {
                    info: I::IspLocation,
                    collection: C::CdnInference,
                    usage: U::BiasedNeighborSelection,
                },
            ),
            (
                "CAT (Yamazaki et al.)",
                AwarenessProfile {
                    info: I::IspLocation,
                    collection: C::IpToIspMapping,
                    usage: U::CostAwareScheduling,
                },
            ),
            (
                "Proximity Kademlia (Kaune et al.)",
                AwarenessProfile {
                    info: I::IspLocation,
                    collection: C::IpToIspMapping,
                    usage: U::ProximityRouting,
                },
            ),
            (
                "Leopard (Yu et al.)",
                AwarenessProfile {
                    info: I::Latency,
                    collection: C::LandmarkCoordinates,
                    usage: U::LatencyAwareOverlay,
                },
            ),
            (
                "Landmark proximity (Ratnasamy et al.)",
                AwarenessProfile {
                    info: I::Latency,
                    collection: C::LandmarkCoordinates,
                    usage: U::LatencyAwareOverlay,
                },
            ),
            (
                "Globase.KOM (Kovacevic et al.)",
                AwarenessProfile {
                    info: I::Geolocation,
                    collection: C::Gps,
                    usage: U::GeoOverlay,
                },
            ),
            (
                "GeoPeer (Araujo/Rodrigues)",
                AwarenessProfile {
                    info: I::Geolocation,
                    collection: C::Gps,
                    usage: U::GeoOverlay,
                },
            ),
            (
                "SkyEye.KOM (Graffi et al.)",
                AwarenessProfile {
                    info: I::PeerResources,
                    collection: C::InfoManagementOverlay,
                    usage: U::SuperpeerSelection,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_figure3_shape() {
        let t = taxonomy();
        assert_eq!(t.len(), 10);
        let isp = t
            .iter()
            .filter(|(i, _)| *i == InfoType::IspLocation)
            .count();
        let lat = t.iter().filter(|(i, _)| *i == InfoType::Latency).count();
        let geo = t
            .iter()
            .filter(|(i, _)| *i == InfoType::Geolocation)
            .count();
        let res = t
            .iter()
            .filter(|(i, _)| *i == InfoType::PeerResources)
            .count();
        assert_eq!((isp, lat, geo, res), (3, 3, 3, 1));
    }

    #[test]
    fn valid_profile_passes() {
        let p = AwarenessProfile {
            info: InfoType::Latency,
            collection: CollectionTechnique::VivaldiCoordinates,
            usage: UsageStrategy::LatencyAwareOverlay,
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn mismatched_collection_fails() {
        let p = AwarenessProfile {
            info: InfoType::Latency,
            collection: CollectionTechnique::Gps,
            usage: UsageStrategy::LatencyAwareOverlay,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn mismatched_usage_fails() {
        let p = AwarenessProfile {
            info: InfoType::Geolocation,
            collection: CollectionTechnique::Gps,
            usage: UsageStrategy::SuperpeerSelection,
        };
        let err = p.validate().unwrap_err();
        assert!(err.contains("consumes"), "{err}");
    }

    #[test]
    fn every_surveyed_system_is_expressible() {
        for (name, profile) in AwarenessProfile::surveyed_systems() {
            assert!(
                profile.validate().is_ok(),
                "{name}: {:?}",
                profile.validate()
            );
        }
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(InfoType::IspLocation.to_string(), "ISP-location");
        assert_eq!(
            CollectionTechnique::IspComponent.to_string(),
            "ISP component in network (oracle)"
        );
        assert_eq!(
            UsageStrategy::BiasedNeighborSelection.to_string(),
            "biased neighbor selection"
        );
    }
}
