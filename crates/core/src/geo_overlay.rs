//! A geolocation-based overlay with location-constrained search, after
//! Globase.KOM (Kovacevic, Liebau, Steinmetz \[19\]).
//!
//! §4: "Geolocation information is used to build an overlay where
//! neighboring peers are geographically close. […] Kovacevic et al.
//! present a hierarchical tree-based P2P system that enables
//! geolocation-based overlay operations."
//!
//! Structure: a quadtree over the world box. A zone splits when it holds
//! more than `max_zone_peers` peers; each zone elects the highest-capacity
//! member as its **supervisor**. A location-constrained query (rectangle)
//! is routed from the root down only into intersecting zones — message
//! cost proportional to the area touched, not the network size, which is
//! the "new application areas" payoff measured in Table 2.
//!
//! Peers register with positions from a pluggable geolocation source;
//! noisy sources (IP-to-location) put peers in the wrong zone, degrading
//! recall — experiment E8 quantifies the difference between GPS and
//! IP-mapping registrations.

use uap_net::{GeoPoint, HostId, Underlay};

/// An axis-aligned query/zone rectangle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge (exclusive).
    pub x1: f64,
    /// Top edge (exclusive).
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle; panics if degenerate.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        assert!(x1 > x0 && y1 > y0, "degenerate rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// Whether a point lies inside.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.x_km >= self.x0 && p.x_km < self.x1 && p.y_km >= self.y0 && p.y_km < self.y1
    }

    /// Whether two rectangles intersect.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    fn quadrant(&self, q: usize) -> Rect {
        let mx = (self.x0 + self.x1) / 2.0;
        let my = (self.y0 + self.y1) / 2.0;
        match q {
            0 => Rect {
                x0: self.x0,
                y0: self.y0,
                x1: mx,
                y1: my,
            },
            1 => Rect {
                x0: mx,
                y0: self.y0,
                x1: self.x1,
                y1: my,
            },
            2 => Rect {
                x0: self.x0,
                y0: my,
                x1: mx,
                y1: self.y1,
            },
            _ => Rect {
                x0: mx,
                y0: my,
                x1: self.x1,
                y1: self.y1,
            },
        }
    }
}

enum Node {
    Leaf { members: Vec<(HostId, GeoPoint)> },
    Inner { children: Box<[Node; 4]> },
}

/// Result of a location-constrained query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GeoQueryOutcome {
    /// Peers reported inside the query rectangle.
    pub found: Vec<HostId>,
    /// Overlay messages spent (one per zone supervisor contacted).
    pub messages: u64,
    /// Zones visited.
    pub zones_visited: u64,
}

/// The zone tree.
pub struct GeoOverlay {
    root: Node,
    bounds: Rect,
    max_zone_peers: usize,
    n_members: usize,
}

impl GeoOverlay {
    /// Builds the overlay for the given world bounds.
    pub fn new(bounds: Rect, max_zone_peers: usize) -> GeoOverlay {
        assert!(max_zone_peers >= 1);
        GeoOverlay {
            root: Node::Leaf {
                members: Vec::new(),
            },
            bounds,
            max_zone_peers,
            n_members: 0,
        }
    }

    /// Registered peers.
    pub fn len(&self) -> usize {
        self.n_members
    }

    /// Whether the overlay has no members.
    pub fn is_empty(&self) -> bool {
        self.n_members == 0
    }

    /// Registers a peer at its (reported) position. Positions outside the
    /// world bounds are clamped onto it.
    pub fn join(&mut self, h: HostId, pos: GeoPoint) {
        let pos = GeoPoint::new(
            pos.x_km.clamp(self.bounds.x0, self.bounds.x1 - 1e-9),
            pos.y_km.clamp(self.bounds.y0, self.bounds.y1 - 1e-9),
        );
        let max = self.max_zone_peers;
        Self::insert(&mut self.root, self.bounds, h, pos, max, 0);
        self.n_members += 1;
    }

    // lint:allow(alloc) — zone splits allocate the four child leaves; amortized structural growth
    fn insert(node: &mut Node, zone: Rect, h: HostId, pos: GeoPoint, max: usize, depth: usize) {
        match node {
            Node::Leaf { members } => {
                members.push((h, pos));
                // Split when overfull (depth cap avoids infinite splits on
                // coincident points).
                if members.len() > max && depth < 20 {
                    let old = std::mem::take(members);
                    let mut children = Box::new([
                        Node::Leaf {
                            members: Vec::new(),
                        },
                        Node::Leaf {
                            members: Vec::new(),
                        },
                        Node::Leaf {
                            members: Vec::new(),
                        },
                        Node::Leaf {
                            members: Vec::new(),
                        },
                    ]);
                    for (m, p) in old {
                        for q in 0..4 {
                            if zone.quadrant(q).contains(&p) {
                                Self::insert(
                                    &mut children[q],
                                    zone.quadrant(q),
                                    m,
                                    p,
                                    max,
                                    depth + 1,
                                );
                                break;
                            }
                        }
                    }
                    *node = Node::Inner { children };
                }
            }
            Node::Inner { children } => {
                for q in 0..4 {
                    if zone.quadrant(q).contains(&pos) {
                        Self::insert(&mut children[q], zone.quadrant(q), h, pos, max, depth + 1);
                        return;
                    }
                }
            }
        }
    }

    /// Removes a peer (linear in its zone).
    pub fn leave(&mut self, h: HostId) -> bool {
        fn rec(node: &mut Node, h: HostId) -> bool {
            match node {
                Node::Leaf { members } => {
                    if let Some(pos) = members.iter().position(|&(m, _)| m == h) {
                        members.swap_remove(pos);
                        true
                    } else {
                        false
                    }
                }
                Node::Inner { children } => children.iter_mut().any(|c| rec(c, h)),
            }
        }
        let removed = rec(&mut self.root, h);
        if removed {
            self.n_members -= 1;
        }
        removed
    }

    /// Location-constrained search: all peers registered inside `query`.
    pub fn search(&self, query: &Rect) -> GeoQueryOutcome {
        let mut out = GeoQueryOutcome::default();
        Self::search_rec(&self.root, self.bounds, query, &mut out);
        out
    }

    fn search_rec(node: &Node, zone: Rect, query: &Rect, out: &mut GeoQueryOutcome) {
        if !zone.intersects(query) {
            return;
        }
        out.zones_visited += 1;
        out.messages += 1; // one message to this zone's supervisor
        match node {
            Node::Leaf { members } => {
                for &(m, p) in members {
                    if query.contains(&p) {
                        out.found.push(m);
                    }
                }
            }
            Node::Inner { children } => {
                for q in 0..4 {
                    Self::search_rec(&children[q], zone.quadrant(q), query, out);
                }
            }
        }
    }

    /// Location-constrained search with **dead supervisors** (§2.4:
    /// "Challenges faced, when using such an overlay, include routing
    /// around dead nodes"). For each visited zone the query first contacts
    /// the zone's supervisor (its highest-id member here, deterministic);
    /// if that peer is in `dead`, the contact times out (the message is
    /// still paid for) and the querier retries the remaining members in
    /// order until a live one answers for the zone. A zone whose members
    /// are all dead contributes nothing — its peers are unreachable.
    pub fn search_with_failures(
        &self,
        query: &Rect,
        dead: &std::collections::BTreeSet<HostId>,
    ) -> GeoQueryOutcome {
        let mut out = GeoQueryOutcome::default();
        Self::search_failures_rec(&self.root, self.bounds, query, dead, &mut out);
        out
    }

    fn search_failures_rec(
        node: &Node,
        zone: Rect,
        query: &Rect,
        dead: &std::collections::BTreeSet<HostId>,
        out: &mut GeoQueryOutcome,
    ) {
        if !zone.intersects(query) {
            return;
        }
        out.zones_visited += 1;
        match node {
            Node::Leaf { members } => {
                // Try contacts in descending id order (the deterministic
                // supervisor ordering): each dead contact costs a timed-out
                // message; the first live one answers for the zone.
                let mut contacts: Vec<HostId> = members.iter().map(|&(m, _)| m).collect();
                contacts.sort_unstable_by(|a, b| b.cmp(a));
                let mut answered = false;
                for c in contacts {
                    out.messages += 1;
                    if !dead.contains(&c) {
                        answered = true;
                        break;
                    }
                }
                if answered {
                    for &(m, p) in members {
                        if query.contains(&p) && !dead.contains(&m) {
                            out.found.push(m);
                        }
                    }
                }
            }
            Node::Inner { children } => {
                for q in 0..4 {
                    Self::search_failures_rec(&children[q], zone.quadrant(q), query, dead, out);
                }
            }
        }
    }

    /// The supervisor (highest-capacity member) of the zone containing
    /// `pos`, if any.
    pub fn supervisor_at(&self, underlay: &Underlay, pos: &GeoPoint) -> Option<HostId> {
        fn rec<'a>(
            node: &'a Node,
            zone: Rect,
            pos: &GeoPoint,
        ) -> Option<&'a Vec<(HostId, GeoPoint)>> {
            match node {
                Node::Leaf { members } => Some(members),
                Node::Inner { children } => {
                    for q in 0..4 {
                        if zone.quadrant(q).contains(pos) {
                            return rec(&children[q], zone.quadrant(q), pos);
                        }
                    }
                    None
                }
            }
        }
        let members = rec(&self.root, self.bounds, pos)?;
        members
            .iter()
            .max_by(|(a, _), (b, _)| {
                underlay
                    .host(*a)
                    .capacity_score()
                    .total_cmp(&underlay.host(*b).capacity_score())
                    .then(b.cmp(a))
            })
            .map(|&(h, _)| h)
    }

    /// Maximum tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn rec(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Inner { children } => 1 + children.iter().map(rec).max().unwrap_or(0),
            }
        }
        rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};
    use uap_sim::SimRng;

    fn world() -> Rect {
        Rect::new(0.0, 0.0, 5_000.0, 5_000.0)
    }

    fn underlay(n: usize) -> Underlay {
        let mut rng = SimRng::new(111);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.0,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(&GeoPoint::new(5.0, 5.0)));
        assert!(!r.contains(&GeoPoint::new(10.0, 5.0))); // right edge exclusive
        assert!(r.intersects(&Rect::new(9.0, 9.0, 20.0, 20.0)));
        assert!(!r.intersects(&Rect::new(10.0, 0.0, 20.0, 10.0)));
    }

    #[test]
    fn search_finds_exactly_the_peers_in_range() {
        let u = underlay(300);
        let mut g = GeoOverlay::new(world(), 8);
        for h in u.hosts.ids() {
            g.join(h, u.host(h).geo);
        }
        assert_eq!(g.len(), 300);
        let q = Rect::new(1_000.0, 1_000.0, 3_000.0, 3_000.0);
        let out = g.search(&q);
        let truth: Vec<HostId> = u
            .hosts
            .ids()
            .filter(|&h| q.contains(&u.host(h).geo))
            .collect();
        let mut found = out.found.clone();
        found.sort();
        let mut expected = truth.clone();
        expected.sort();
        assert_eq!(found, expected);
        assert!(out.messages > 0);
    }

    #[test]
    fn query_cost_scales_with_area_not_population() {
        let u = underlay(400);
        let mut g = GeoOverlay::new(world(), 8);
        for h in u.hosts.ids() {
            g.join(h, u.host(h).geo);
        }
        let small = g.search(&Rect::new(0.0, 0.0, 500.0, 500.0));
        let big = g.search(&Rect::new(0.0, 0.0, 4_999.0, 4_999.0));
        assert!(small.zones_visited < big.zones_visited);
        // A tiny query touches a handful of zones, far less than n.
        assert!(
            (small.zones_visited as usize) < 400 / 4,
            "small query visited {} zones",
            small.zones_visited
        );
    }

    #[test]
    fn split_and_depth() {
        let mut g = GeoOverlay::new(world(), 2);
        // Cluster points to force splits.
        for i in 0..20u32 {
            g.join(HostId(i), GeoPoint::new(10.0 + i as f64 * 0.1, 10.0));
        }
        assert!(g.depth() > 1);
        let out = g.search(&Rect::new(0.0, 0.0, 100.0, 100.0));
        assert_eq!(out.found.len(), 20);
    }

    #[test]
    fn leave_removes() {
        let mut g = GeoOverlay::new(world(), 4);
        g.join(HostId(1), GeoPoint::new(100.0, 100.0));
        g.join(HostId(2), GeoPoint::new(200.0, 200.0));
        assert!(g.leave(HostId(1)));
        assert!(!g.leave(HostId(1)));
        assert_eq!(g.len(), 1);
        let out = g.search(&Rect::new(0.0, 0.0, 5_000.0, 5_000.0));
        assert_eq!(out.found, vec![HostId(2)]);
    }

    #[test]
    fn out_of_bounds_positions_clamp() {
        let mut g = GeoOverlay::new(world(), 4);
        g.join(HostId(7), GeoPoint::new(-50.0, 9_999.0));
        let out = g.search(&Rect::new(0.0, 0.0, 5_000.0, 5_000.0));
        assert_eq!(out.found, vec![HostId(7)]);
    }

    #[test]
    fn supervisor_is_highest_capacity_member() {
        let u = underlay(50);
        let mut g = GeoOverlay::new(world(), 64); // single zone
        for h in u.hosts.ids().take(50) {
            g.join(h, u.host(h).geo);
        }
        let sup = g
            .supervisor_at(&u, &GeoPoint::new(2_500.0, 2_500.0))
            .unwrap();
        let best = u
            .hosts
            .ids()
            .take(50)
            .max_by(|&a, &b| {
                u.host(a)
                    .capacity_score()
                    .partial_cmp(&u.host(b).capacity_score())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(sup, best);
    }

    #[test]
    fn noisy_registration_degrades_recall() {
        // GPS-registered overlay vs IP-mapping-registered overlay: the
        // noisy one misses peers whose reported zone differs from truth.
        use uap_info::{GeoLocator, GeoService, GeoSource};
        let u = underlay(300);
        let mut rng = SimRng::new(112);
        let mut exact = GeoOverlay::new(world(), 8);
        let mut noisy = GeoOverlay::new(world(), 8);
        let mut gps = GeoService::new(&u, GeoSource::Gps);
        let mut ipmap = GeoService::new(&u, GeoSource::IpMapping);
        for h in u.hosts.ids() {
            exact.join(h, gps.locate(h, &mut rng));
            noisy.join(h, ipmap.locate(h, &mut rng));
        }
        let q = Rect::new(1_000.0, 1_000.0, 2_000.0, 2_000.0);
        let truth: std::collections::BTreeSet<HostId> = u
            .hosts
            .ids()
            .filter(|&h| q.contains(&u.host(h).geo))
            .collect();
        if truth.is_empty() {
            return; // fixture produced empty region; nothing to compare
        }
        let recall = |out: &GeoQueryOutcome| {
            out.found.iter().filter(|h| truth.contains(h)).count() as f64 / truth.len() as f64
        };
        let r_exact = recall(&exact.search(&q));
        let r_noisy = recall(&noisy.search(&q));
        assert!(r_exact > 0.99, "gps recall {r_exact}");
        assert!(r_noisy <= r_exact);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use std::collections::BTreeSet;
    use uap_net::{HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
    use uap_sim::SimRng;

    fn underlay(n: usize) -> Underlay {
        let mut rng = SimRng::new(141);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.0,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    fn populated_overlay(u: &Underlay) -> GeoOverlay {
        let mut g = GeoOverlay::new(Rect::new(0.0, 0.0, 5_000.0, 5_000.0), 8);
        for h in u.hosts.ids() {
            g.join(h, u.host(h).geo);
        }
        g
    }

    #[test]
    fn no_failures_matches_plain_search() {
        let u = underlay(300);
        let g = populated_overlay(&u);
        let q = Rect::new(500.0, 500.0, 4_500.0, 4_500.0);
        let plain = g.search(&q);
        let fail = g.search_with_failures(&q, &BTreeSet::new());
        let mut a = plain.found.clone();
        let mut b = fail.found.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn dead_supervisors_cost_retries_and_drop_dead_peers() {
        let u = underlay(300);
        let g = populated_overlay(&u);
        let q = Rect::new(0.0, 0.0, 5_000.0, 5_000.0);
        let mut rng = SimRng::new(142);
        // Kill 30% of peers.
        let dead: BTreeSet<HostId> = rng
            .sample_indices(300, 90)
            .into_iter()
            .map(|i| HostId(i as u32))
            .collect();
        let healthy = g.search_with_failures(&q, &BTreeSet::new());
        let degraded = g.search_with_failures(&q, &dead);
        // Dead peers never appear in results.
        assert!(degraded.found.iter().all(|h| !dead.contains(h)));
        // Routing around dead supervisors costs extra (timed-out) messages
        // per zone on average.
        assert!(
            degraded.messages > healthy.messages,
            "no retry cost visible: {} vs {}",
            degraded.messages,
            healthy.messages
        );
        // Live peers in answered zones are still found: recall over live
        // peers stays high (only fully-dead zones lose members).
        let live_truth = healthy.found.iter().filter(|h| !dead.contains(h)).count();
        assert!(
            degraded.found.len() as f64 > 0.9 * live_truth as f64,
            "recall collapsed: {} of {}",
            degraded.found.len(),
            live_truth
        );
    }

    #[test]
    fn fully_dead_zone_is_unreachable() {
        let mut g = GeoOverlay::new(Rect::new(0.0, 0.0, 100.0, 100.0), 2);
        // Three peers clustered in one corner → their own zone after split.
        g.join(HostId(1), GeoPoint::new(10.0, 10.0));
        g.join(HostId(2), GeoPoint::new(12.0, 10.0));
        g.join(HostId(3), GeoPoint::new(90.0, 90.0));
        let dead: BTreeSet<HostId> = [HostId(1), HostId(2)].into_iter().collect();
        let out = g.search_with_failures(&Rect::new(0.0, 0.0, 100.0, 100.0), &dead);
        assert_eq!(out.found, vec![HostId(3)]);
    }
}
