//! Overlay-graph structure metrics.
//!
//! Figure 6 of the paper contrasts "(a) uniform random neighbor selection
//! and (b) biased neighbor selection": the biased overlay clusters along
//! AS boundaries with "a minimal number of inter-AS connections necessary
//! to keep the network connected". [`OverlayStats`] quantifies exactly
//! that: intra-AS edge fraction, inter-AS edge count, connectivity of the
//! online subgraph, and degree statistics.

use std::collections::BTreeMap;
use uap_net::{HostId, Underlay};

/// Structural summary of one overlay snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct OverlayStats {
    /// Total edges.
    pub edges: usize,
    /// Edges whose endpoints share an AS.
    pub intra_as_edges: usize,
    /// Edges crossing AS boundaries.
    pub inter_as_edges: usize,
    /// Nodes with at least one edge.
    pub connected_nodes: usize,
    /// Connected components among nodes with degree ≥ 1.
    pub components: usize,
    /// Mean degree over connected nodes.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Newman modularity of the AS partition (clustered overlays score
    /// high; random overlays near zero).
    pub as_modularity: f64,
}

impl OverlayStats {
    /// Fraction of edges that stay inside an AS.
    pub fn intra_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.intra_as_edges as f64 / self.edges as f64
        }
    }

    /// Computes the statistics for an edge list over an underlay.
    pub fn compute(underlay: &Underlay, edges: &[(HostId, HostId)]) -> OverlayStats {
        let mut degree: BTreeMap<HostId, usize> = BTreeMap::new();
        let mut intra = 0usize;
        for &(a, b) in edges {
            *degree.entry(a).or_insert(0) += 1;
            *degree.entry(b).or_insert(0) += 1;
            if underlay.same_as(a, b) {
                intra += 1;
            }
        }
        let connected_nodes = degree.len();
        let mean_degree = if connected_nodes == 0 {
            0.0
        } else {
            2.0 * edges.len() as f64 / connected_nodes as f64
        };
        let max_degree = degree.values().copied().max().unwrap_or(0);

        // Union-find over participating nodes.
        let ids: Vec<HostId> = degree.keys().copied().collect();
        let index: BTreeMap<HostId, usize> = ids.iter().enumerate().map(|(i, &h)| (h, i)).collect();
        let mut parent: Vec<usize> = (0..ids.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, index[&a]), find(&mut parent, index[&b]));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut roots: Vec<usize> = (0..ids.len()).map(|i| find(&mut parent, i)).collect();
        roots.sort_unstable();
        roots.dedup();
        let components = roots.len();

        // Newman modularity with the AS partition: Q = Σ_c (e_c/m −
        // (d_c/2m)²), where e_c is edges inside community c and d_c the
        // total degree of its nodes.
        let m = edges.len() as f64;
        let as_modularity = if m == 0.0 {
            0.0
        } else {
            let mut e_in: BTreeMap<u16, f64> = BTreeMap::new();
            let mut deg_sum: BTreeMap<u16, f64> = BTreeMap::new();
            for &(a, b) in edges {
                let (aa, ab) = (underlay.hosts.as_of(a).0, underlay.hosts.as_of(b).0);
                if aa == ab {
                    *e_in.entry(aa).or_insert(0.0) += 1.0;
                }
                *deg_sum.entry(aa).or_insert(0.0) += 1.0;
                *deg_sum.entry(ab).or_insert(0.0) += 1.0;
            }
            deg_sum
                .iter()
                .map(|(asn, &d)| {
                    let e = e_in.get(asn).copied().unwrap_or(0.0);
                    e / m - (d / (2.0 * m)).powi(2)
                })
                .sum()
        };

        OverlayStats {
            edges: edges.len(),
            intra_as_edges: intra,
            inter_as_edges: edges.len() - intra,
            connected_nodes,
            components,
            mean_degree,
            max_degree,
            as_modularity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
    use uap_sim::SimRng;

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(101);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.0,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(100),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn empty_graph() {
        let u = underlay();
        let s = OverlayStats::compute(&u, &[]);
        assert_eq!(s.edges, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.intra_fraction(), 0.0);
        assert_eq!(s.as_modularity, 0.0);
    }

    #[test]
    fn classifies_edges() {
        let u = underlay();
        // Find one intra and one inter pair.
        let a0 = HostId(0);
        let same = u
            .hosts
            .ids()
            .find(|&h| h != a0 && u.same_as(a0, h))
            .unwrap();
        let diff = u.hosts.ids().find(|&h| !u.same_as(a0, h)).unwrap();
        let s = OverlayStats::compute(&u, &[(a0, same), (a0, diff)]);
        assert_eq!(s.edges, 2);
        assert_eq!(s.intra_as_edges, 1);
        assert_eq!(s.inter_as_edges, 1);
        assert_eq!(s.intra_fraction(), 0.5);
        assert_eq!(s.connected_nodes, 3);
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn component_counting() {
        let u = underlay();
        let e = vec![
            (HostId(0), HostId(1)),
            (HostId(1), HostId(2)),
            (HostId(10), HostId(11)),
        ];
        let s = OverlayStats::compute(&u, &e);
        assert_eq!(s.components, 2);
        assert_eq!(s.connected_nodes, 5);
    }

    #[test]
    fn modularity_separates_clustered_from_random() {
        let u = underlay();
        let mut rng = SimRng::new(102);
        // Clustered: ring within each AS.
        let mut clustered = Vec::new();
        for a in 0..u.n_ases() {
            let members = u.hosts.in_as(uap_net::AsId(a as u16));
            for w in members.windows(2) {
                clustered.push((w[0], w[1]));
            }
        }
        // Random with the same edge count.
        let mut random = Vec::new();
        while random.len() < clustered.len() {
            let a = HostId(rng.below(100) as u32);
            let b = HostId(rng.below(100) as u32);
            if a != b {
                random.push((a, b));
            }
        }
        let sc = OverlayStats::compute(&u, &clustered);
        let sr = OverlayStats::compute(&u, &random);
        assert!(sc.as_modularity > 0.5, "clustered Q = {}", sc.as_modularity);
        assert!(
            sr.as_modularity < 0.3,
            "random Q = {} suspiciously high",
            sr.as_modularity
        );
        assert!(sc.intra_fraction() > sr.intra_fraction());
    }
}
