//! E8 — Table 2: "Impact of underlay awareness on Internet users and ISPs".
//!
//! The paper grades each underlay-information type against six parameters
//! with `++` (big effect), `+` (small effect), `o` (neutral):
//!
//! ```text
//! Impact on  Parameter              ISP-loc  Latency  Geo  Resources
//! Users      Download time          ++       o        o    ++
//!            Delay                  o        ++       +    o
//! ISPs       ISP OAM                ++       o        o    o
//!            ISP Costs              ++       o        o    +
//! Both       New application areas  o        +        ++   o
//!            Resilience             ++       ++       o    +
//! ```
//!
//! We *measure* every cell: one Gnutella run per information type (with
//! the matching neighbor-selection policy), a geo-overlay capability probe
//! for the geolocation column, a transit-failure probe for resilience, and
//! map relative improvements over the unbiased baseline onto the same
//! three bands (`++` ≥ 30 %, `+` ≥ 10 %, `o` below). EXPERIMENTS.md
//! records where our signs agree with the paper's.

use crate::experiments::NetParams;
use crate::geo_overlay::{GeoOverlay, Rect};
use crate::report::Table;
use uap_gnutella::{
    run_experiment, GnutellaConfig, GnutellaReport, NeighborSelection, RoleAssignment,
};
use uap_net::failure::FailureScenario;
use uap_net::{Routing, RoutingMode, Underlay};
use uap_sim::{SimRng, SimTime};

/// A Table 2 band.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImpactBand {
    /// Big effect (`++`): ≥ 30 % improvement.
    Big,
    /// Small effect (`+`): ≥ 10 %.
    Small,
    /// Neutral (`o`).
    Neutral,
}

impl ImpactBand {
    /// Maps a relative improvement onto a band.
    pub fn from_improvement(rel: f64) -> ImpactBand {
        if rel >= 0.30 {
            ImpactBand::Big
        } else if rel >= 0.10 {
            ImpactBand::Small
        } else {
            ImpactBand::Neutral
        }
    }

    /// The paper's notation.
    pub fn symbol(&self) -> &'static str {
        match self {
            ImpactBand::Big => "++",
            ImpactBand::Small => "+",
            ImpactBand::Neutral => "o",
        }
    }
}

/// One measured cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Relative improvement over baseline (negative = worse).
    pub improvement: f64,
    /// The resulting band.
    pub band: ImpactBand,
}

impl Cell {
    fn new(improvement: f64) -> Cell {
        Cell {
            improvement,
            band: ImpactBand::from_improvement(improvement),
        }
    }
}

/// The measured matrix: `cells[row][col]` with rows in Table 2 order
/// (download time, delay, OAM, costs, new apps, resilience) and columns
/// (ISP-location, latency, geolocation, peer resources).
#[derive(Clone, Debug)]
pub struct ImpactMatrix {
    /// The 6×4 cells.
    pub cells: Vec<Vec<Cell>>,
    /// Rendered table with paper bands alongside.
    pub table: Table,
}

/// Table 2's own entries, for agreement scoring.
pub const PAPER_BANDS: [[&str; 4]; 6] = [
    ["++", "o", "o", "++"],
    ["o", "++", "+", "o"],
    ["++", "o", "o", "o"],
    ["++", "o", "o", "+"],
    ["o", "+", "++", "o"],
    ["++", "++", "o", "+"],
];

/// Row labels.
pub const ROWS: [&str; 6] = [
    "Download time",
    "Delay",
    "ISP OAM",
    "ISP Costs",
    "New application areas",
    "Resilience",
];

/// Column labels.
pub const COLS: [&str; 4] = ["ISP-location", "Latency", "Geolocation", "Peer Resources"];

struct ColumnRun {
    report: GnutellaReport,
    external_bytes: u64,
    transit_bytes: u64,
    edge_survival: f64,
    mean_neighbor_uptime: f64,
}

fn run_column(
    net: &NetParams,
    selection: NeighborSelection,
    roles: RoleAssignment,
    oracle_exchange: bool,
    bandwidth_source: bool,
    duration: SimTime,
) -> ColumnRun {
    let cfg = GnutellaConfig {
        selection,
        roles,
        oracle_at_file_exchange: oracle_exchange,
        bandwidth_aware_source: bandwidth_source,
        duration,
        hostcache_size: 1000.min(net.n_hosts),
        ..Default::default()
    };
    let (report, world) = run_experiment(net.build(), cfg, net.seed ^ 0xE8);
    let (_, peering, transit) = world.underlay.traffic.totals();
    let external_bytes = peering + transit;
    let edge_survival = edge_survival_under_transit_failure(&world.underlay, &report, net.seed);
    let mean_neighbor_uptime = mean_edge_uptime(&world.underlay, &report);
    ColumnRun {
        report,
        external_bytes,
        transit_bytes: transit,
        edge_survival,
        mean_neighbor_uptime,
    }
}

/// Fraction of overlay edges whose endpoints can still reach each other
/// after 30 % of transit links fail.
fn edge_survival_under_transit_failure(
    underlay: &Underlay,
    report: &GnutellaReport,
    seed: u64,
) -> f64 {
    if report.edges.is_empty() {
        return 0.0;
    }
    let mut rng = SimRng::new(seed ^ 0xFA11);
    let scenario = FailureScenario::transit_only(&underlay.graph, 0.3, &mut rng);
    let routing = Routing::compute_with_mask(
        &underlay.graph,
        RoutingMode::ValleyFree,
        Some(&scenario.mask),
    );
    let alive = report
        .edges
        .iter()
        .filter(|&&(a, b)| {
            let (aa, ab) = (underlay.hosts.as_of(a), underlay.hosts.as_of(b));
            aa == ab || routing.as_hops(aa, ab).is_some()
        })
        .count();
    alive as f64 / report.edges.len() as f64
}

/// Mean product of endpoint online fractions over overlay edges — edge
/// stability under churn.
fn mean_edge_uptime(underlay: &Underlay, report: &GnutellaReport) -> f64 {
    if report.edges.is_empty() {
        return 0.0;
    }
    report
        .edges
        .iter()
        .map(|&(a, b)| underlay.host(a).online_fraction * underlay.host(b).online_fraction)
        .sum::<f64>()
        / report.edges.len() as f64
}

/// Geolocation capability probe: message cost of a location-constrained
/// query via the zone tree vs flooding every peer. Returns the relative
/// saving.
fn geo_capability_gain(net: &NetParams) -> f64 {
    let underlay = net.build();
    let mut overlay = GeoOverlay::new(Rect::new(0.0, 0.0, 5_000.0, 5_000.0), 8);
    for h in underlay.hosts.ids() {
        overlay.join(h, underlay.host(h).geo);
    }
    let q = Rect::new(1_000.0, 1_000.0, 2_200.0, 2_200.0);
    let out = overlay.search(&q);
    let flooding_msgs = underlay.n_hosts() as f64; // ask everyone
    (flooding_msgs - out.messages as f64) / flooding_msgs
}

/// Latency capability probe: share of overlay edges under the 100 ms VoIP
/// budget, policy vs baseline.
fn voip_edge_share(underlay: &Underlay, report: &GnutellaReport) -> f64 {
    if report.edges.is_empty() {
        return 0.0;
    }
    report
        .edges
        .iter()
        .filter(|&&(a, b)| underlay.rtt_us(a, b).map(|r| r < 100_000).unwrap_or(false))
        .count() as f64
        / report.edges.len() as f64
}

/// Runs the full matrix. `duration` bounds each of the five Gnutella runs.
pub fn run(net: &NetParams, duration: SimTime) -> ImpactMatrix {
    // Baseline.
    let base = run_column(
        net,
        NeighborSelection::Random,
        RoleAssignment::AllUltrapeers,
        false,
        false,
        duration,
    );
    // Per-information-type configurations (§4's usage mapping).
    let columns: Vec<ColumnRun> = vec![
        run_column(
            net,
            NeighborSelection::OracleBiased { list_size: 1000 },
            RoleAssignment::AllUltrapeers,
            true,
            false,
            duration,
        ),
        run_column(
            net,
            NeighborSelection::LatencyBiased,
            RoleAssignment::AllUltrapeers,
            false,
            false,
            duration,
        ),
        run_column(
            net,
            NeighborSelection::GeoBiased,
            RoleAssignment::AllUltrapeers,
            false,
            false,
            duration,
        ),
        // Peer resources: capacity-biased neighbors, capacity-based role
        // assignment, and bandwidth-aware source selection ([6]).
        run_column(
            net,
            NeighborSelection::CapacityBiased,
            RoleAssignment::CapacityTopFraction(0.3),
            false,
            true,
            duration,
        ),
    ];
    let rel_reduction = |base: f64, v: f64| {
        if base <= 0.0 {
            0.0
        } else {
            (base - v) / base
        }
    };
    let mut cells: Vec<Vec<Cell>> = vec![Vec::new(); 6];
    // The VoIP probe needs an underlay next to the stored edge lists; the
    // run consumed its own, but `NetParams::build` is a pure function of
    // the seed, so a fresh build matches host-for-host.
    let fresh = net.build();
    let base_voip = voip_edge_share(&fresh, &base.report);
    for (ci, col) in columns.iter().enumerate() {
        // Row 0: download time.
        cells[0].push(Cell::new(rel_reduction(
            base.report.mean_download_secs,
            col.report.mean_download_secs,
        )));
        // Row 1: delay (time to first hit).
        cells[1].push(Cell::new(rel_reduction(
            base.report.mean_query_delay_ms,
            col.report.mean_query_delay_ms,
        )));
        // Row 2: ISP OAM — external (inter-AS) byte reduction.
        cells[2].push(Cell::new(rel_reduction(
            base.external_bytes as f64,
            col.external_bytes as f64,
        )));
        // Row 3: ISP costs — transit byte reduction.
        cells[3].push(Cell::new(rel_reduction(
            base.transit_bytes as f64,
            col.transit_bytes as f64,
        )));
        // Row 4: new application areas — capability probes.
        let gain = match ci {
            0 => 0.0, // ISP-location: no new application class
            1 => {
                let share = voip_edge_share(&fresh, &col.report);
                (share - base_voip).max(0.0)
            }
            2 => geo_capability_gain(net),
            _ => 0.0,
        };
        cells[4].push(Cell::new(gain));
        // Row 5: resilience — edge survival under transit failure, with
        // the resources column graded on neighbor uptime instead (its
        // mechanism is churn-stability, not path redundancy).
        let resilience = if ci == 3 {
            rel_improvement_up(base.mean_neighbor_uptime, col.mean_neighbor_uptime)
        } else {
            rel_improvement_up(base.edge_survival, col.edge_survival)
        };
        cells[5].push(Cell::new(resilience));
    }
    fn rel_improvement_up(base: f64, v: f64) -> f64 {
        if base <= 0.0 {
            0.0
        } else {
            (v - base) / base
        }
    }

    let mut table = Table::new(
        "Table 2 — measured impact of underlay awareness (band / paper band)",
        &["Parameter", COLS[0], COLS[1], COLS[2], COLS[3]],
    );
    for (ri, row_name) in ROWS.iter().enumerate() {
        let mut row = vec![row_name.to_string()];
        for ci in 0..4 {
            row.push(format!(
                "{} ({:+.0}%) [paper {}]",
                cells[ri][ci].band.symbol(),
                100.0 * cells[ri][ci].improvement,
                PAPER_BANDS[ri][ci]
            ));
        }
        table.row(&row);
    }
    ImpactMatrix { cells, table }
}

impl ImpactMatrix {
    /// Fraction of cells where our band direction agrees with the paper
    /// (both `++/+` i.e. an effect, or both `o`).
    pub fn agreement(&self) -> f64 {
        let mut agree = 0usize;
        for (ri, row) in self.cells.iter().enumerate() {
            for (ci, cell) in row.iter().enumerate() {
                let paper_effect = PAPER_BANDS[ri][ci] != "o";
                let ours_effect = cell.band != ImpactBand::Neutral;
                if paper_effect == ours_effect {
                    agree += 1;
                }
            }
        }
        agree as f64 / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_mapping() {
        assert_eq!(ImpactBand::from_improvement(0.5), ImpactBand::Big);
        assert_eq!(ImpactBand::from_improvement(0.15), ImpactBand::Small);
        assert_eq!(ImpactBand::from_improvement(0.05), ImpactBand::Neutral);
        assert_eq!(ImpactBand::from_improvement(-0.4), ImpactBand::Neutral);
        assert_eq!(ImpactBand::Big.symbol(), "++");
    }

    #[test]
    fn matrix_headline_cells_match_paper_direction() {
        let net = NetParams::quick(150, 81);
        let m = run(&net, SimTime::from_mins(8));
        // The four strongest claims of Table 2 must reproduce:
        // ISP-location improves ISP costs (++):
        assert!(
            m.cells[3][0].improvement > 0.10,
            "ISP cost improvement {}",
            m.cells[3][0].improvement
        );
        // Latency awareness improves delay (++):
        assert!(
            m.cells[1][1].improvement > 0.10,
            "delay improvement {}",
            m.cells[1][1].improvement
        );
        // Geolocation opens new application areas (++):
        assert!(
            m.cells[4][2].improvement > 0.30,
            "geo capability {}",
            m.cells[4][2].improvement
        );
        // ISP-location improves OAM (++):
        assert!(
            m.cells[2][0].improvement > 0.10,
            "OAM improvement {}",
            m.cells[2][0].improvement
        );
    }

    #[test]
    fn agreement_is_majority() {
        let net = NetParams::quick(150, 82);
        let m = run(&net, SimTime::from_mins(8));
        assert!(
            m.agreement() >= 0.5,
            "agreement with Table 2 only {:.0}%",
            100.0 * m.agreement()
        );
        assert_eq!(m.table.len(), 6);
    }
}
