//! # uap-core — the underlay-awareness framework
//!
//! The paper closes with: "Another open research issue is the development
//! of a general architecture for underlay awareness in which different
//! underlay information can be collected and used. Thus an underlay
//! awareness framework is the definitive next step in implementing
//! underlay awareness in the Internet." This crate is that framework,
//! assembled from the workspace's substrates:
//!
//! * [`framework`] — the taxonomy of Figure 3 as data, plus
//!   [`framework::AwarenessProfile`]s binding an *information type* to a
//!   *collection technique* and a *usage strategy*;
//! * [`assemble`] — profile-driven factories that instantiate the matching
//!   collection service behind the uniform provider traits;
//! * [`graphstats`] — overlay-graph structure metrics (the quantities
//!   behind the Figure 5/6 topology comparison);
//! * [`geo_overlay`] — a Globase.KOM-style \[19\] geolocation overlay (zone
//!   quadtree with supervisors) providing location-constrained search,
//!   the "new application areas" row of Table 2;
//! * [`experiments`] — one module per paper artifact plus extensions (E1–E15, see
//!   DESIGN.md's experiment index), each reproducing a table or figure;
//! * [`impact`] — experiment E8: the measured impact matrix reproducing
//!   Table 2's `++ / + / o` entries;
//! * [`report`] — plain-text tables and CSV output shared by the
//!   experiment binaries.

#![forbid(unsafe_code)]

pub mod assemble;
pub mod experiments;
pub mod framework;
pub mod geo_overlay;
pub mod graphstats;
pub mod impact;
pub mod report;

pub use assemble::{build_geo_locator, build_proximity_estimator, AssembleConfig};
pub use framework::{AwarenessProfile, CollectionTechnique, InfoType, UsageStrategy};
pub use geo_overlay::{GeoOverlay, GeoQueryOutcome};
pub use graphstats::OverlayStats;
pub use impact::{ImpactBand, ImpactMatrix};
pub use report::Table;
