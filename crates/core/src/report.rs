//! Plain-text tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed above).
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column).
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Row accessor.
    pub fn row_cells(&self, r: usize) -> &[String] {
        &self.rows[r]
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serializes as CSV (RFC-4180-ish quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to the experiment binaries' output directory.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Renders the one-line pointer the experiment binaries print for every
/// artifact they write (CSV, RunReport JSON, trace JSONL), so a run's
/// output always names the files it produced.
pub fn artifact_line(kind: &str, path: &Path) -> String {
    format!("({kind} written to {})", path.display())
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "count"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_quotes_specials() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        t.row(&["he said \"hi\"".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn artifact_line_names_the_path() {
        let line = artifact_line("csv", Path::new("results/out.csv"));
        assert_eq!(line, "(csv written to results/out.csv)");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(std::f64::consts::PI), "3.142");
        assert_eq!(f(42.5), "42.5");
        assert_eq!(f(1234.56), "1235");
        assert_eq!(pct(0.4057), "40.57%");
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("t", &["x"]);
        t.row(&["1".into()]);
        let path = std::env::temp_dir().join("uap_report_test/out.csv");
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "x\n1\n");
        let _ = std::fs::remove_file(path);
    }
}
