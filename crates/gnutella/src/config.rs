//! Simulation configuration.

use crate::selection::NeighborSelection;
use uap_sim::{ChurnConfig, SimTime};

/// How ultrapeer/leaf roles are assigned.
#[derive(Clone, Debug, PartialEq)]
pub enum RoleAssignment {
    /// Everyone is an ultrapeer (a flat Gnutella 0.4 network).
    AllUltrapeers,
    /// The top fraction of hosts by capacity score become ultrapeers —
    /// resource-aware role assignment (§2.3).
    CapacityTopFraction(f64),
    /// Every `k`-th host is an ultrapeer (the testlab's fixed 1:2 pattern:
    /// `k = 3` gives one ultrapeer and two leaves per machine).
    EveryKth(usize),
}

/// Parameters of the content model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContentParams {
    /// Catalogue size.
    pub n_files: usize,
    /// Zipf popularity exponent.
    pub zipf_s: f64,
    /// Regional-interest mixture weight in `[0, 1]`.
    pub locality: f64,
}

impl Default for ContentParams {
    fn default() -> Self {
        ContentParams {
            n_files: 1_000,
            zipf_s: 0.9,
            locality: 0.6,
        }
    }
}

/// How many files each peer shares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShareScheme {
    /// Everyone shares `shared_per_peer` files (the testlab's "uniform
    /// scheme": "each node shares 6 files each").
    Uniform,
    /// The testlab's "variable scheme": "each ultrapeer shares 12 files,
    /// half the leaf nodes share 6 files each, and the remaining leaf
    /// nodes share no content" — ultrapeers share `2 × shared_per_peer`,
    /// even-indexed leaves share `shared_per_peer`, odd-indexed leaves
    /// share nothing.
    Variable,
}

/// Full Gnutella experiment configuration.
#[derive(Clone, Debug)]
pub struct GnutellaConfig {
    /// Neighbor selection policy (the experiment's independent variable).
    pub selection: NeighborSelection,
    /// Whether the downloader consults the oracle again when choosing
    /// among `QueryHit` providers (the second oracle call of \[1\], which
    /// lifted intra-AS file exchange from ~10 % to ~40 %).
    pub oracle_at_file_exchange: bool,
    /// Bandwidth-aware source selection (da Silva et al. \[6\]): pick the
    /// provider with the highest uplink among the QueryHits. Mutually
    /// exclusive with `oracle_at_file_exchange` (oracle wins if both set).
    pub bandwidth_aware_source: bool,
    /// Target ultrapeer↔ultrapeer degree.
    pub up_degree: usize,
    /// Leaf→ultrapeer attachment count.
    pub leaf_degree: usize,
    /// Role assignment.
    pub roles: RoleAssignment,
    /// TTL of discovery ping floods.
    pub ping_ttl: u32,
    /// Pong records returned per answered ping (pong caching serves
    /// several known hosts per reply; Gnutella 0.6 uses up to 10).
    pub pongs_per_reply: u64,
    /// TTL of query floods.
    pub query_ttl: u32,
    /// Interval between a node's ping cycles.
    pub ping_interval: SimTime,
    /// Mean inter-query time per node (exponential).
    pub query_interval: SimTime,
    /// Files each peer shares (base count; see [`ShareScheme`]).
    pub shared_per_peer: usize,
    /// Distribution of share counts over roles.
    pub share_scheme: ShareScheme,
    /// Hostcache capacity per node.
    pub hostcache_size: usize,
    /// Size of an exchanged file in bytes.
    pub file_size_bytes: u64,
    /// Churn model.
    pub churn: ChurnConfig,
    /// Simulated duration.
    pub duration: SimTime,
    /// Content model parameters.
    pub content: ContentParams,
    /// Whether to charge overlay signalling bytes to the traffic ledger
    /// (needed by the overhead experiment, off by default for speed).
    pub account_overhead_traffic: bool,
    /// Download re-sourcing cap: how many *alternate* QueryHit providers a
    /// downloader tries after a transfer failure before abandoning the
    /// download (0 = give up on the first failure).
    pub download_retries: usize,
    /// Time-scheduled underlay fault campaign (`None` = fault-free run).
    pub faults: Option<uap_net::FaultPlan>,
}

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            selection: NeighborSelection::Random,
            oracle_at_file_exchange: false,
            bandwidth_aware_source: false,
            up_degree: 4,
            leaf_degree: 2,
            roles: RoleAssignment::AllUltrapeers,
            ping_ttl: 2,
            pongs_per_reply: 10,
            query_ttl: 4,
            ping_interval: SimTime::from_secs(60),
            query_interval: SimTime::from_secs(120),
            shared_per_peer: 20,
            share_scheme: ShareScheme::Uniform,
            hostcache_size: 50,
            file_size_bytes: 4 << 20, // 4 MiB, a 2008-era MP3/clip
            churn: ChurnConfig::none(),
            duration: SimTime::from_mins(30),
            content: ContentParams::default(),
            account_overhead_traffic: false,
            download_retries: 2,
            faults: None,
        }
    }
}

/// Wire sizes in bytes (Gnutella 0.4 header is 23 bytes).
pub mod wire {
    /// Ping: bare header.
    pub const PING: u64 = 23;
    /// Pong: header + port/IP/stats payload.
    pub const PONG: u64 = 23 + 14;
    /// Query: header + flags + a short search string.
    pub const QUERY: u64 = 23 + 20;
    /// QueryHit: header + result record + servent id.
    pub const QUERY_HIT: u64 = 23 + 60;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GnutellaConfig::default();
        assert!(c.up_degree >= 2);
        assert!(c.query_ttl >= 1);
        assert!(c.hostcache_size > c.up_degree);
        assert!(c.churn.is_static());
        assert_eq!(c.selection, NeighborSelection::Random);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the invariant
    fn wire_sizes_ordered() {
        assert!(wire::PING < wire::PONG);
        assert!(wire::QUERY < wire::QUERY_HIT);
    }
}
