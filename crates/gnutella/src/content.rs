//! Content and interest model.
//!
//! Two empirical facts drive the locality experiments:
//!
//! * file popularity is Zipf-like;
//! * user interest is **locality-correlated**: "locality correlated users'
//!   searches, whose desired contents are located in the proximity"
//!   (\[25\]\[18\]\[24\], cited in §2.1) — peers in the same region ask for (and
//!   therefore share) overlapping content.
//!
//! [`ContentModel`] mixes a global Zipf catalogue with a per-AS slice of
//! regionally popular files: with probability `locality` a peer draws from
//! its AS's slice, otherwise from the global distribution. Peers *share*
//! files drawn from the same distribution they *search* from, which is how
//! the correlation arises in the wild.

use uap_net::AsId;
use uap_sim::{SimRng, Zipf};

/// A shared file identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u32);

/// The catalogue plus the interest distributions.
pub struct ContentModel {
    n_files: usize,
    global: Zipf,
    /// Per-AS regional sub-catalogue: contiguous file-id ranges.
    as_slice: Vec<(u32, u32)>,
    regional: Zipf,
    /// Probability an interest draw is regional.
    pub locality: f64,
}

impl ContentModel {
    /// Builds a catalogue of `n_files` for `n_ases` regions.
    ///
    /// `zipf_s` is the popularity exponent (≈ 0.8–1.0 in measurement
    /// studies); `locality` the regional-interest mixture weight in
    /// `[0, 1]` (0 = no interest locality at all).
    pub fn new(n_files: usize, n_ases: usize, zipf_s: f64, locality: f64) -> ContentModel {
        assert!(n_files >= n_ases.max(1), "need at least one file per AS");
        let slice_len = (n_files / n_ases.max(1)).max(1);
        let as_slice = (0..n_ases)
            .map(|a| {
                let start = (a * slice_len) as u32;
                let end = (((a + 1) * slice_len).min(n_files)) as u32;
                (start, end.max(start + 1))
            })
            .collect();
        ContentModel {
            n_files,
            global: Zipf::new(n_files, zipf_s),
            as_slice,
            regional: Zipf::new(slice_len, zipf_s),
            locality: locality.clamp(0.0, 1.0),
        }
    }

    /// Catalogue size.
    pub fn n_files(&self) -> usize {
        self.n_files
    }

    /// Draws a file this peer is interested in (for queries).
    pub fn sample_interest(&self, asn: AsId, rng: &mut SimRng) -> FileId {
        if rng.chance(self.locality) {
            let (start, end) = self.as_slice[asn.idx() % self.as_slice.len()];
            let span = (end - start) as usize;
            let rank = self.regional.sample(rng).min(span.saturating_sub(1));
            FileId(start + rank as u32)
        } else {
            FileId(self.global.sample(rng) as u32)
        }
    }

    /// Draws the set of files a peer shares (k distinct draws from its own
    /// interest distribution — people share what they fetched).
    pub fn seed_shares(&self, asn: AsId, k: usize, rng: &mut SimRng) -> Vec<FileId> {
        let mut out: Vec<FileId> = Vec::with_capacity(k);
        let mut guard = 0;
        while out.len() < k && guard < k * 50 {
            guard += 1;
            let f = self.sample_interest(asn, rng);
            if !out.contains(&f) {
                out.push(f);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_is_in_range() {
        let m = ContentModel::new(1_000, 10, 0.9, 0.5);
        let mut rng = SimRng::new(1);
        for _ in 0..1_000 {
            let f = m.sample_interest(AsId(3), &mut rng);
            assert!((f.0 as usize) < m.n_files());
        }
    }

    #[test]
    fn full_locality_stays_in_slice() {
        let m = ContentModel::new(1_000, 10, 0.9, 1.0);
        let mut rng = SimRng::new(2);
        for _ in 0..500 {
            let f = m.sample_interest(AsId(4), &mut rng);
            assert!((400..500).contains(&f.0), "file {} outside AS4 slice", f.0);
        }
    }

    #[test]
    fn zero_locality_ignores_region() {
        let m = ContentModel::new(1_000, 10, 1.0, 0.0);
        let mut rng = SimRng::new(3);
        // With pure Zipf, rank 0 (file 0) must dominate regardless of AS.
        let hits = (0..2_000)
            .filter(|_| m.sample_interest(AsId(9), &mut rng) == FileId(0))
            .count();
        assert!(hits > 100, "file 0 drawn only {hits} times");
    }

    #[test]
    fn same_as_peers_share_more_overlap_than_cross_as() {
        let m = ContentModel::new(2_000, 8, 0.8, 0.7);
        let mut rng = SimRng::new(4);
        let overlap = |a: AsId, b: AsId, rng: &mut SimRng| {
            let mut acc = 0usize;
            for _ in 0..30 {
                let sa = m.seed_shares(a, 20, rng);
                let sb = m.seed_shares(b, 20, rng);
                acc += sa.iter().filter(|f| sb.contains(f)).count();
            }
            acc
        };
        let same = overlap(AsId(2), AsId(2), &mut rng);
        let cross = overlap(AsId(2), AsId(6), &mut rng);
        assert!(
            same > cross,
            "same-AS overlap {same} not > cross-AS {cross}"
        );
    }

    #[test]
    fn seed_shares_distinct_and_sorted() {
        let m = ContentModel::new(500, 5, 0.9, 0.5);
        let mut rng = SimRng::new(5);
        let shares = m.seed_shares(AsId(0), 25, &mut rng);
        assert_eq!(shares.len(), 25);
        for w in shares.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn tiny_catalogue_works() {
        let m = ContentModel::new(10, 10, 1.0, 1.0);
        let mut rng = SimRng::new(6);
        let f = m.sample_interest(AsId(9), &mut rng);
        assert_eq!(f, FileId(9));
    }
}
