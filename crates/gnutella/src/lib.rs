//! # uap-gnutella — an unstructured overlay with pluggable neighbor selection
//!
//! The Gnutella-style substrate the paper's reprinted oracle study
//! (Aggarwal, Feldmann, Scheideler \[1\]) runs on: ping/pong host discovery,
//! TTL-limited query flooding with duplicate suppression, ultrapeer/leaf
//! roles, hostcaches, churn, and the HTTP-like file-exchange stage that
//! happens outside the Gnutella message flow.
//!
//! Underlay awareness enters in exactly the two places the study modified:
//!
//! 1. **Neighbor selection** ([`selection`]) — when a node joins (or
//!    repairs a lost connection) it can pick neighbors uniformly at random,
//!    or hand its hostcache to the ISP's oracle, which "ranks the list
//!    according to AS hops distance" (biased neighbor selection);
//! 2. **Source selection at file-exchange time** — when a query returns
//!    multiple `QueryHit`s, the downloader can pick a random provider or
//!    consult the oracle again.
//!
//! The crate exposes [`sim::GnutellaSim`] (event-driven, with churn) and
//! the [`sim::run_experiment`] entry point that produces the
//! [`report::GnutellaReport`] experiments E4–E7 consume.
//!
//! Why biased selection reduces *all four* message counts here — with no
//! hand-tuning: flooding with duplicate suppression emits one message per
//! edge incident to the reached ball. Oracle-biased overlays are strongly
//! clustered along AS boundaries, so a TTL-limited flood's ball expands
//! more slowly (neighbors' neighborhoods overlap), reaching fewer distinct
//! nodes and crossing fewer edges. Search success survives because user
//! interest — and therefore shared content — is locality-correlated, which
//! is the empirical premise the paper cites (\[25\]\[18\]\[24\]).

#![forbid(unsafe_code)]

pub mod config;
pub mod content;
pub mod overlay;
pub mod report;
pub mod selection;
pub mod sim;
pub mod wire;

pub use config::{GnutellaConfig, RoleAssignment, ShareScheme};
pub use content::{ContentModel, FileId};
pub use overlay::Overlay;
pub use report::GnutellaReport;
pub use selection::NeighborSelection;
pub use sim::{run_experiment, run_experiment_with, GnutellaSim};
