//! Overlay graph bookkeeping and flood mechanics.
//!
//! [`Overlay`] keeps the (undirected) neighbor sets plus the cached
//! per-edge underlay latency, and implements the two flood primitives both
//! the ping and query paths share:
//!
//! * [`Overlay::flood`] — TTL-limited BFS with duplicate suppression over
//!   the ultrapeer mesh, delivering to attached leaves, counting every
//!   transmission (including duplicates, which real flooding pays for) and
//!   accumulating the underlay latency along the tree.

use uap_net::{HostId, Underlay};

/// Role of a node in the two-tier overlay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Floods and routes; the backbone.
    Ultrapeer,
    /// Attaches to ultrapeers; does not forward.
    Leaf,
}

/// A node that a flood reached.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reached {
    /// The node.
    pub host: HostId,
    /// Overlay hops from the origin.
    pub hops: u32,
    /// Accumulated one-way underlay latency from the origin, microseconds.
    pub latency_us: u64,
}

/// Outcome of one flood.
#[derive(Clone, Debug, Default)]
pub struct FloodResult {
    /// Every node the flood reached (origin excluded), in BFS order.
    pub reached: Vec<Reached>,
    /// Total transmissions, duplicates included.
    pub messages: u64,
}

/// The overlay adjacency structure.
pub struct Overlay {
    neighbors: Vec<Vec<HostId>>,
    latency_cache: Vec<Vec<u64>>,
    roles: Vec<Role>,
    online: Vec<bool>,
    edge_count: usize,
    /// Flood scratch: generation-stamped visited marks + the BFS queue,
    /// reused across floods so the per-ping/per-query path allocates
    /// nothing (a slot is "seen" when its stamp equals the current
    /// generation; bumping the generation resets all marks in O(1)).
    seen_gen: Vec<u64>,
    generation: u64,
    queue: std::collections::VecDeque<(HostId, u32, u64)>,
    /// Reused peer snapshot for `set_online`'s edge-drop loop.
    scratch_peers: Vec<HostId>,
}

impl Overlay {
    /// An empty overlay over `n` potential nodes (all offline, ultrapeer
    /// role by default).
    pub fn new(n: usize) -> Overlay {
        Overlay {
            neighbors: vec![Vec::new(); n],
            latency_cache: vec![Vec::new(); n],
            roles: vec![Role::Ultrapeer; n],
            online: vec![false; n],
            edge_count: 0,
            seen_gen: vec![0; n],
            generation: 0,
            queue: std::collections::VecDeque::new(),
            scratch_peers: Vec::new(),
        }
    }

    /// Number of potential nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the overlay has no slots.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Sets a node's role.
    pub fn set_role(&mut self, h: HostId, role: Role) {
        self.roles[h.idx()] = role;
    }

    /// A node's role.
    pub fn role(&self, h: HostId) -> Role {
        self.roles[h.idx()]
    }

    /// Marks a node online/offline. Going offline drops all its edges.
    pub fn set_online(&mut self, h: HostId, online: bool) {
        self.online[h.idx()] = online;
        if !online {
            // Snapshot into the reused scratch (remove_edge mutates the
            // neighbor list we are iterating), preserving drop order.
            let mut peers = std::mem::take(&mut self.scratch_peers);
            peers.clear();
            peers.extend_from_slice(&self.neighbors[h.idx()]);
            for &p in &peers {
                self.remove_edge(h, p);
            }
            self.scratch_peers = peers;
        }
    }

    /// Whether a node is online.
    pub fn is_online(&self, h: HostId) -> bool {
        self.online[h.idx()]
    }

    /// All online nodes.
    pub fn online_nodes(&self) -> Vec<HostId> {
        (0..self.len() as u32)
            .map(HostId)
            .filter(|&h| self.is_online(h))
            .collect()
    }

    /// Adds an undirected edge, caching its underlay latency. No-op if the
    /// edge exists or endpoints coincide.
    pub fn add_edge(&mut self, underlay: &Underlay, a: HostId, b: HostId) {
        if a == b || self.has_edge(a, b) {
            return;
        }
        let lat = underlay.latency_us(a, b).unwrap_or(u64::MAX / 4);
        self.neighbors[a.idx()].push(b);
        self.latency_cache[a.idx()].push(lat);
        self.neighbors[b.idx()].push(a);
        self.latency_cache[b.idx()].push(lat);
        self.edge_count += 1;
    }

    /// Removes an undirected edge if present.
    pub fn remove_edge(&mut self, a: HostId, b: HostId) {
        let mut removed = false;
        if let Some(pos) = self.neighbors[a.idx()].iter().position(|&x| x == b) {
            self.neighbors[a.idx()].swap_remove(pos);
            self.latency_cache[a.idx()].swap_remove(pos);
            removed = true;
        }
        if let Some(pos) = self.neighbors[b.idx()].iter().position(|&x| x == a) {
            self.neighbors[b.idx()].swap_remove(pos);
            self.latency_cache[b.idx()].swap_remove(pos);
        }
        if removed {
            self.edge_count -= 1;
        }
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, a: HostId, b: HostId) -> bool {
        self.neighbors[a.idx()].contains(&b)
    }

    /// Current neighbors of a node.
    pub fn neighbors(&self, h: HostId) -> &[HostId] {
        &self.neighbors[h.idx()]
    }

    /// Degree of a node.
    pub fn degree(&self, h: HostId) -> usize {
        self.neighbors[h.idx()].len()
    }

    /// Total undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Snapshot of all edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(HostId, HostId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for a in 0..self.len() {
            for &b in &self.neighbors[a] {
                if (a as u32) < b.0 {
                    out.push((HostId(a as u32), b));
                }
            }
        }
        out
    }

    /// TTL-limited flood from `origin` with duplicate suppression.
    ///
    /// Semantics: the origin transmits to every neighbor; a node receiving
    /// the flood for the first time at hop `h < ttl` forwards to all its
    /// neighbors except the sender (each transmission is counted, including
    /// those that arrive at already-visited nodes and are dropped).
    /// Ultrapeers forward; leaves receive but never forward. Leaves
    /// attached to a reached ultrapeer are delivered to (and counted) as
    /// hop `h + 1` even when `h + 1 == ttl`, like real leaf delivery.
    pub fn flood(&mut self, origin: HostId, ttl: u32) -> FloodResult {
        let mut result = FloodResult::default();
        self.flood_into(origin, ttl, &mut result);
        result
    }

    /// Like [`Overlay::flood`], but clears and fills `out` instead of
    /// allocating a result — the sim reuses one `FloodResult` across all
    /// ping/query floods. Needs `&mut self` for the generation-stamped
    /// visited scratch (the overlay topology is not modified).
    pub fn flood_into(&mut self, origin: HostId, ttl: u32, out: &mut FloodResult) {
        out.reached.clear();
        out.messages = 0;
        if ttl == 0 || !self.is_online(origin) {
            return;
        }
        self.generation += 1;
        let gen = self.generation;
        self.seen_gen[origin.idx()] = gen;
        // Queue of (host, hops, latency) of *forwarding* nodes.
        self.queue.clear();
        self.queue.push_back((origin, 0u32, 0u64));
        while let Some((v, hops, lat)) = self.queue.pop_front() {
            if hops >= ttl {
                continue;
            }
            for (i, &w) in self.neighbors[v.idx()].iter().enumerate() {
                out.messages += 1;
                if self.seen_gen[w.idx()] == gen {
                    continue;
                }
                self.seen_gen[w.idx()] = gen;
                // Saturating: edges to fault-unreachable peers carry the
                // u64::MAX/4 sentinel, which plain addition could overflow.
                let wl = lat.saturating_add(self.latency_cache[v.idx()][i]);
                out.reached.push(Reached {
                    host: w,
                    hops: hops + 1,
                    latency_us: wl,
                });
                if self.roles[w.idx()] == Role::Ultrapeer {
                    self.queue.push_back((w, hops + 1, wl));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
    use uap_sim::SimRng;

    fn underlay(n: usize) -> Underlay {
        let mut rng = SimRng::new(71);
        let g = TopologySpec::new(TopologyKind::Mesh {
            n: 5,
            extra_edge_prob: 0.5,
        })
        .build(&mut rng);
        let cfg = UnderlayConfig {
            routing: uap_net::RoutingMode::ShortestPath,
            ..Default::default()
        };
        Underlay::build(g, &PopulationSpec::uniform(n), cfg, &mut rng)
    }

    fn line_overlay(u: &Underlay, n: u32) -> Overlay {
        let mut o = Overlay::new(n as usize);
        for i in 0..n {
            o.set_online(HostId(i), true);
        }
        for i in 0..n - 1 {
            o.add_edge(u, HostId(i), HostId(i + 1));
        }
        o
    }

    #[test]
    fn edges_are_undirected_and_deduped() {
        let u = underlay(10);
        let mut o = Overlay::new(10);
        o.add_edge(&u, HostId(0), HostId(1));
        o.add_edge(&u, HostId(1), HostId(0));
        o.add_edge(&u, HostId(0), HostId(0));
        assert_eq!(o.edge_count(), 1);
        assert!(o.has_edge(HostId(0), HostId(1)));
        assert!(o.has_edge(HostId(1), HostId(0)));
        o.remove_edge(HostId(0), HostId(1));
        assert_eq!(o.edge_count(), 0);
        assert_eq!(o.degree(HostId(0)), 0);
    }

    #[test]
    fn going_offline_drops_edges() {
        let u = underlay(10);
        let mut o = Overlay::new(10);
        for i in 0..5 {
            o.set_online(HostId(i), true);
        }
        o.add_edge(&u, HostId(0), HostId(1));
        o.add_edge(&u, HostId(0), HostId(2));
        o.set_online(HostId(0), false);
        assert_eq!(o.edge_count(), 0);
        assert_eq!(o.degree(HostId(1)), 0);
        assert_eq!(
            o.online_nodes(),
            vec![HostId(1), HostId(2), HostId(3), HostId(4)]
        );
    }

    #[test]
    fn flood_on_line_respects_ttl() {
        let u = underlay(10);
        let mut o = line_overlay(&u, 10);
        let r = o.flood(HostId(0), 3);
        // Reaches nodes 1, 2, 3.
        assert_eq!(r.reached.len(), 3);
        assert_eq!(r.reached[0].host, HostId(1));
        assert_eq!(r.reached[2].hops, 3);
        // Transmissions: 0->1, 1->2 (+1 back-transmission suppressed? no:
        // node 1 forwards to 0 and 2 … our model forwards to all neighbors,
        // the copy to the sender is suppressed only via `seen`).
        assert!(r.messages >= 3);
    }

    #[test]
    fn flood_counts_duplicates_in_cycles() {
        let u = underlay(3);
        let mut o = Overlay::new(3);
        for i in 0..3 {
            o.set_online(HostId(i), true);
        }
        o.add_edge(&u, HostId(0), HostId(1));
        o.add_edge(&u, HostId(1), HostId(2));
        o.add_edge(&u, HostId(2), HostId(0));
        let r = o.flood(HostId(0), 2);
        assert_eq!(r.reached.len(), 2);
        // Origin sends 2; nodes 1 and 2 each forward to their two
        // neighbors (copies back to 0 and across both count): 2 + 2 + 2.
        assert_eq!(r.messages, 6);
    }

    #[test]
    fn latency_accumulates_along_tree() {
        let u = underlay(10);
        let mut o = line_overlay(&u, 4);
        let r = o.flood(HostId(0), 3);
        let lat: Vec<u64> = r.reached.iter().map(|x| x.latency_us).collect();
        assert!(lat[0] < lat[1] && lat[1] < lat[2]);
        assert_eq!(lat[0], u.latency_us(HostId(0), HostId(1)).unwrap());
    }

    #[test]
    fn leaves_receive_but_do_not_forward() {
        let u = underlay(10);
        let mut o = Overlay::new(10);
        for i in 0..4 {
            o.set_online(HostId(i), true);
        }
        // up0 - leaf1 - up2 would break the chain at the leaf.
        o.set_role(HostId(1), Role::Leaf);
        o.add_edge(&u, HostId(0), HostId(1));
        o.add_edge(&u, HostId(1), HostId(2));
        let r = o.flood(HostId(0), 5);
        assert_eq!(r.reached.len(), 1);
        assert_eq!(r.reached[0].host, HostId(1));
    }

    #[test]
    fn zero_ttl_or_offline_origin_is_empty() {
        let u = underlay(10);
        let mut o = line_overlay(&u, 5);
        assert_eq!(o.flood(HostId(0), 0).reached.len(), 0);
        let mut o2 = line_overlay(&u, 5);
        o2.set_online(HostId(0), false);
        assert_eq!(o2.flood(HostId(0), 3).reached.len(), 0);
    }

    #[test]
    fn clustered_ball_smaller_than_random_ball() {
        // The mechanism behind Table 1: same degree, but a clustered
        // overlay's TTL-ball is smaller. Build two 64-node overlays of
        // degree 4: one ring-of-cliques (clustered), one random.
        let u = underlay(64);
        let mut rng = SimRng::new(72);
        let mut clustered = Overlay::new(64);
        let mut random = Overlay::new(64);
        for i in 0..64 {
            clustered.set_online(HostId(i), true);
            random.set_online(HostId(i), true);
        }
        // Clustered: 16 cliques of 4 (degree 3 inside) + ring links.
        for c in 0..16u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    clustered.add_edge(&u, HostId(base + i), HostId(base + j));
                }
            }
            let next = ((c + 1) % 16) * 4;
            clustered.add_edge(&u, HostId(base), HostId(next + 1));
        }
        // Random: same edge count.
        let target = clustered.edge_count();
        while random.edge_count() < target {
            let a = HostId(rng.below(64) as u32);
            let b = HostId(rng.below(64) as u32);
            if a != b {
                random.add_edge(&u, a, b);
            }
        }
        let rc = clustered.flood(HostId(0), 3);
        let rr = random.flood(HostId(0), 3);
        assert!(
            rc.reached.len() < rr.reached.len(),
            "clustered ball {} !< random ball {}",
            rc.reached.len(),
            rr.reached.len()
        );
        assert!(rc.messages < rr.messages);
    }
}
