//! Experiment output.

use std::fmt;
use uap_net::HostId;

/// Everything the E4–E7 harnesses need from one Gnutella run.
#[derive(Clone, Debug, Default)]
pub struct GnutellaReport {
    /// Ping transmissions (the "Ping" row of Table 1).
    pub ping_msgs: u64,
    /// Pong transmissions.
    pub pong_msgs: u64,
    /// Query transmissions.
    pub query_msgs: u64,
    /// QueryHit transmissions.
    pub queryhit_msgs: u64,
    /// Queries issued by users.
    pub queries_issued: u64,
    /// Queries that returned at least one hit.
    pub queries_successful: u64,
    /// Completed downloads.
    pub downloads: u64,
    /// Downloads served from a same-AS provider.
    pub downloads_intra_as: u64,
    /// Mean time to first hit, milliseconds.
    pub mean_query_delay_ms: f64,
    /// Mean download duration, seconds.
    pub mean_download_secs: f64,
    /// Oracle queries spent on neighbor selection.
    pub oracle_queries: u64,
    /// RTT probe messages spent by latency-biased selection.
    pub probe_messages: u64,
    /// Final overlay edge snapshot.
    pub edges: Vec<(HostId, HostId)>,
    /// Fraction of *download* bytes that stayed intra-AS.
    pub download_locality: f64,
    /// Join events processed.
    pub joins: u64,
    /// Engine events processed.
    pub events: u64,
}

impl GnutellaReport {
    /// Total signalling messages (the sum Table 1 itemizes).
    pub fn total_msgs(&self) -> u64 {
        self.ping_msgs + self.pong_msgs + self.query_msgs + self.queryhit_msgs
    }

    /// Search success ratio.
    pub fn success_ratio(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.queries_successful as f64 / self.queries_issued as f64
        }
    }

    /// Intra-AS share of file exchanges (the §4 percentages).
    pub fn intra_as_exchange_pct(&self) -> f64 {
        if self.downloads == 0 {
            0.0
        } else {
            100.0 * self.downloads_intra_as as f64 / self.downloads as f64
        }
    }
}

impl fmt::Display for GnutellaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  Ping      {:>12}", self.ping_msgs)?;
        writeln!(f, "  Pong      {:>12}", self.pong_msgs)?;
        writeln!(f, "  Query     {:>12}", self.query_msgs)?;
        writeln!(f, "  QueryHit  {:>12}", self.queryhit_msgs)?;
        writeln!(
            f,
            "  search success {:.1}%  intra-AS exchange {:.2}%",
            100.0 * self.success_ratio(),
            self.intra_as_exchange_pct()
        )?;
        writeln!(
            f,
            "  mean first-hit delay {:.1} ms, mean download {:.1} s",
            self.mean_query_delay_ms, self.mean_download_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let r = GnutellaReport {
            ping_msgs: 10,
            pong_msgs: 20,
            query_msgs: 5,
            queryhit_msgs: 2,
            queries_issued: 10,
            queries_successful: 8,
            downloads: 4,
            downloads_intra_as: 1,
            ..Default::default()
        };
        assert_eq!(r.total_msgs(), 37);
        assert!((r.success_ratio() - 0.8).abs() < 1e-12);
        assert!((r.intra_as_exchange_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero_not_nan() {
        let r = GnutellaReport::default();
        assert_eq!(r.success_ratio(), 0.0);
        assert_eq!(r.intra_as_exchange_pct(), 0.0);
        let s = r.to_string();
        assert!(s.contains("Ping"));
    }
}
