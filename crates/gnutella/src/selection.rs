//! Neighbor selection strategies (§4, "usage of underlay information").
//!
//! The join/repair path hands a candidate list (the node's hostcache) to
//! one of these policies:
//!
//! * [`NeighborSelection::Random`] — unbiased Gnutella;
//! * [`NeighborSelection::OracleBiased`] — biased neighbor selection via
//!   the ISP oracle of Aggarwal et al. \[1\], with the configurable list
//!   size the study sweeps (100 vs 1000);
//! * [`NeighborSelection::LatencyBiased`] — pick the lowest-RTT candidates
//!   (what a Vivaldi/ping-based system does);
//! * [`NeighborSelection::GeoBiased`] — pick geographically closest
//!   (Globase/GeoPeer-style);
//! * [`NeighborSelection::CapacityBiased`] — prefer high-capacity peers
//!   (resource-aware superpeer-style attachment).

use uap_info::Oracle;
use uap_net::{HostId, Underlay};
use uap_sim::SimRng;

/// The pluggable policy.
#[derive(Clone, Debug, PartialEq)]
pub enum NeighborSelection {
    /// Uniform random choice (the baseline).
    Random,
    /// Hand (up to `list_size` of) the hostcache to the ISP oracle, take
    /// its top-ranked entries.
    OracleBiased {
        /// Maximum candidate-list length sent to the oracle per query.
        list_size: usize,
    },
    /// Rank candidates by measured RTT (2 messages per probe).
    LatencyBiased,
    /// Rank candidates by geographic distance (requires a geolocation
    /// service; exact ISP-provided positions are assumed here).
    GeoBiased,
    /// Rank candidates by descending capacity score.
    CapacityBiased,
}

/// Mutable selection state (oracle counters, probe counters), plus
/// reusable scoring scratch so the per-join ranking path allocates
/// nothing (the alloc pass in `xtask analyze` ratchets this).
pub struct Selector {
    /// The policy in force.
    pub policy: NeighborSelection,
    oracle: Oracle,
    probe_messages: u64,
    scored: Vec<(u64, HostId)>,
    scored_cap: Vec<(HostId, f64)>,
}

impl Selector {
    /// Creates a selector for a policy.
    pub fn new(policy: NeighborSelection) -> Selector {
        let list = match policy {
            NeighborSelection::OracleBiased { list_size } => list_size,
            _ => usize::MAX,
        };
        Selector {
            policy,
            oracle: Oracle::new(list),
            probe_messages: 0,
            scored: Vec::new(),
            scored_cap: Vec::new(),
        }
    }

    /// Oracle queries issued (0 for non-oracle policies).
    pub fn oracle_queries(&self) -> u64 {
        self.oracle.queries()
    }

    /// RTT probe messages spent (0 for non-latency policies).
    pub fn probe_messages(&self) -> u64 {
        self.probe_messages
    }

    /// Orders `candidates` best-first for `joiner` under the policy.
    pub fn rank(
        &mut self,
        underlay: &Underlay,
        joiner: HostId,
        candidates: &[HostId],
        rng: &mut SimRng,
    ) -> Vec<HostId> {
        let mut out = Vec::new();
        self.rank_into(underlay, joiner, candidates, rng, &mut out);
        out
    }

    /// Like [`Selector::rank`], but clears and fills `out` instead of
    /// allocating the ranked list — join/repair hands in a reused buffer.
    pub fn rank_into(
        &mut self,
        underlay: &Underlay,
        joiner: HostId,
        candidates: &[HostId],
        rng: &mut SimRng,
        out: &mut Vec<HostId>,
    ) {
        out.clear();
        match self.policy {
            NeighborSelection::Random => {
                out.extend_from_slice(candidates);
                rng.shuffle(out);
            }
            NeighborSelection::OracleBiased { .. } => {
                // The study shuffles the hostcache before the oracle call;
                // the oracle then sorts its prefix.
                out.extend_from_slice(candidates);
                rng.shuffle(out);
                self.oracle.rank_in_place(underlay, joiner, out);
            }
            NeighborSelection::LatencyBiased => {
                let scored = &mut self.scored;
                scored.clear();
                scored.extend(candidates.iter().map(|&c| {
                    self.probe_messages += 2;
                    (
                        underlay.measured_rtt_us(joiner, c, rng).unwrap_or(u64::MAX),
                        c,
                    )
                }));
                scored.sort_by_key(|&(rtt, h)| (rtt, h));
                out.extend(scored.iter().map(|&(_, h)| h));
            }
            NeighborSelection::GeoBiased => {
                let scored = &mut self.scored;
                scored.clear();
                scored.extend(candidates.iter().map(|&c| {
                    // Quantize to metres for a stable integer sort key.
                    let km = underlay.geo_distance_km(joiner, c);
                    ((km * 1000.0) as u64, c)
                }));
                scored.sort_by_key(|&(d, h)| (d, h));
                out.extend(scored.iter().map(|&(_, h)| h));
            }
            NeighborSelection::CapacityBiased => {
                let scored = &mut self.scored_cap;
                scored.clear();
                scored.extend(
                    candidates
                        .iter()
                        .map(|&c| (c, underlay.host(c).capacity_score())),
                );
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                out.extend(scored.iter().map(|&(h, _)| h));
            }
        }
    }

    /// Picks up to `want` neighbors from `candidates`.
    pub fn select(
        &mut self,
        underlay: &Underlay,
        joiner: HostId,
        candidates: &[HostId],
        want: usize,
        rng: &mut SimRng,
    ) -> Vec<HostId> {
        let mut ranked = self.rank(underlay, joiner, candidates, rng);
        ranked.truncate(want);
        ranked
    }

    /// Like [`Selector::select`], but fills a reused buffer.
    pub fn select_into(
        &mut self,
        underlay: &Underlay,
        joiner: HostId,
        candidates: &[HostId],
        want: usize,
        rng: &mut SimRng,
        out: &mut Vec<HostId>,
    ) {
        self.rank_into(underlay, joiner, candidates, rng, out);
        out.truncate(want);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(81);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.2,
            tier3_peering_prob: 0.2,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(200),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn oracle_biased_prefers_same_as() {
        let u = underlay();
        let joiner = HostId(0);
        let my_as = u.hosts.as_of(joiner);
        let mut sel = Selector::new(NeighborSelection::OracleBiased { list_size: 1000 });
        let candidates: Vec<HostId> = u.hosts.ids().filter(|&h| h != joiner).collect();
        let mut rng = SimRng::new(82);
        let picked = sel.select(&u, joiner, &candidates, 4, &mut rng);
        assert_eq!(picked.len(), 4);
        let same_as_available = u.hosts.in_as(my_as).len() - 1;
        let same_as_picked = picked.iter().filter(|&&h| u.same_as(joiner, h)).count();
        assert_eq!(same_as_picked, same_as_available.min(4));
        assert_eq!(sel.oracle_queries(), 1);
    }

    #[test]
    fn list_size_limits_oracle_view() {
        let u = underlay();
        let mut sel = Selector::new(NeighborSelection::OracleBiased { list_size: 5 });
        let candidates: Vec<HostId> = u.hosts.ids().take(100).collect();
        let mut rng = SimRng::new(83);
        let ranked = sel.rank(&u, HostId(150), &candidates, &mut rng);
        assert_eq!(ranked.len(), 5);
    }

    #[test]
    fn latency_biased_orders_by_rtt() {
        let u = underlay();
        let mut sel = Selector::new(NeighborSelection::LatencyBiased);
        let joiner = HostId(10);
        let candidates: Vec<HostId> = (0..50).map(HostId).filter(|&h| h != joiner).collect();
        let mut rng = SimRng::new(84);
        let ranked = sel.rank(&u, joiner, &candidates, &mut rng);
        let rtts: Vec<u64> = ranked
            .iter()
            .map(|&h| u.rtt_us(joiner, h).unwrap())
            .collect();
        for w in rtts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(sel.probe_messages(), 49 * 2);
    }

    #[test]
    fn geo_biased_orders_by_distance() {
        let u = underlay();
        let mut sel = Selector::new(NeighborSelection::GeoBiased);
        let joiner = HostId(7);
        let candidates: Vec<HostId> = (0..40).map(HostId).filter(|&h| h != joiner).collect();
        let mut rng = SimRng::new(85);
        let ranked = sel.rank(&u, joiner, &candidates, &mut rng);
        let dists: Vec<f64> = ranked
            .iter()
            .map(|&h| u.geo_distance_km(joiner, h))
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-3);
        }
    }

    #[test]
    fn capacity_biased_orders_descending() {
        let u = underlay();
        let mut sel = Selector::new(NeighborSelection::CapacityBiased);
        let candidates: Vec<HostId> = (0..40).map(HostId).collect();
        let mut rng = SimRng::new(86);
        let ranked = sel.rank(&u, HostId(100), &candidates, &mut rng);
        let caps: Vec<f64> = ranked.iter().map(|&h| u.host(h).capacity_score()).collect();
        for w in caps.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn random_is_a_permutation() {
        let u = underlay();
        let mut sel = Selector::new(NeighborSelection::Random);
        let candidates: Vec<HostId> = (0..30).map(HostId).collect();
        let mut rng = SimRng::new(87);
        let mut ranked = sel.rank(&u, HostId(100), &candidates, &mut rng);
        ranked.sort();
        assert_eq!(ranked, candidates);
        assert_eq!(sel.oracle_queries(), 0);
        assert_eq!(sel.probe_messages(), 0);
    }

    #[test]
    fn select_truncates() {
        let u = underlay();
        let mut sel = Selector::new(NeighborSelection::Random);
        let candidates: Vec<HostId> = (0..30).map(HostId).collect();
        let mut rng = SimRng::new(88);
        assert_eq!(
            sel.select(&u, HostId(100), &candidates, 3, &mut rng).len(),
            3
        );
        assert_eq!(
            sel.select(&u, HostId(100), &candidates, 99, &mut rng).len(),
            30
        );
    }
}
