//! The event-driven Gnutella simulation.
//!
//! Joins, leaves (churn), periodic ping cycles, user queries and the
//! file-exchange stage are events on the `uap-sim` engine; the flood
//! mechanics themselves run synchronously inside an event (per-message
//! events would multiply the event count by orders of magnitude without
//! changing any reported quantity — flood latency is accumulated along the
//! BFS tree instead).

use crate::config::{wire, GnutellaConfig, RoleAssignment, ShareScheme};
use crate::content::{ContentModel, FileId};
use crate::overlay::{Overlay, Role};
use crate::report::GnutellaReport;
use crate::selection::Selector;
use uap_info::Oracle;
use uap_net::{CompiledFaultPlan, FlowAllocator, HostId, TrafficCategory, Underlay};
use uap_sim::{ChurnModel, Ctx, SimTime, Simulator, TraceLevel, Tracer, World};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Churn transition for a host (join if offline, leave if online).
    Churn(HostId),
    /// Periodic discovery ping. The second field is the session epoch the
    /// cycle belongs to; cycles from ended sessions are dropped.
    PingCycle(HostId, u32),
    /// User issues a query (with session epoch).
    QueryCycle(HostId, u32),
    /// Neighbor-set repair after losing connections.
    Repair(HostId),
    /// Fault-plan epoch boundary (index into the compiled plan's sorted
    /// boundary list): rebuild routing, invalidate the route cache, and
    /// crash/restart the affected hosts.
    Fault(u32),
}

/// The simulation world.
pub struct GnutellaSim {
    /// The underlay (owned; its traffic ledger accumulates the run).
    pub underlay: Underlay,
    /// The overlay graph.
    pub overlay: Overlay,
    cfg: GnutellaConfig,
    content: ContentModel,
    selector: Selector,
    exchange_oracle: Oracle,
    shared: Vec<Vec<FileId>>,
    hostcache: Vec<Vec<HostId>>,
    churn: Vec<ChurnModel>,
    epoch: Vec<u32>,
    query_delay_sum_ms: f64,
    download_secs_sum: f64,
    download_bytes_intra: u64,
    download_bytes_total: u64,
    /// Compiled fault campaign (None = fault-free run).
    faults: Option<CompiledFaultPlan>,
    /// Hosts currently down because of a `HostCrash` fault epoch — a
    /// crashed host stays off the overlay regardless of its churn state.
    crashed: Vec<bool>,
    /// Per-query outcome log `(time, found a provider)` — the raw series
    /// the resilience experiment buckets into recovery curves.
    query_log: Vec<(SimTime, bool)>,
    /// Per-download outcome log `(time, completed)`, including re-sourced
    /// and abandoned downloads.
    download_log: Vec<(SimTime, bool)>,
    /// `seq` of the most recent `fault.epoch` trace event — the cause
    /// anchor for recovery events (download retries point at the epoch
    /// that made their source unreachable).
    last_fault_seq: Option<u64>,
    /// Max-min bandwidth allocator: each download is modeled as a single
    /// flow so its rate respects both access links and the AS links on
    /// its path (see docs/BANDWIDTH.md).
    flows: FlowAllocator,
    next_flow_id: u64,
    /// Hot-path scratch buffers, reused across events (taken with
    /// `std::mem::take` around calls that need `&mut self`) so the
    /// per-event bodies stay allocation-free — the alloc pass in
    /// `xtask analyze` ratchets this.
    scratch_flood: crate::overlay::FloodResult,
    scratch_hits: Vec<crate::overlay::Reached>,
    scratch_providers: Vec<HostId>,
    scratch_candidates: Vec<HostId>,
    scratch_picked: Vec<HostId>,
    scratch_neighbors: Vec<HostId>,
    scratch_tried: Vec<HostId>,
    scratch_crash: Vec<bool>,
}

impl GnutellaSim {
    /// Builds the world and schedules the bootstrap events.
    pub fn new(underlay: Underlay, cfg: GnutellaConfig, sim: &mut Simulator<Ev>) -> GnutellaSim {
        let n = underlay.n_hosts();
        let content = ContentModel::new(
            cfg.content.n_files,
            underlay.n_ases(),
            cfg.content.zipf_s,
            cfg.content.locality,
        );
        let mut overlay = Overlay::new(n);
        // Role assignment.
        match &cfg.roles {
            RoleAssignment::AllUltrapeers => {}
            RoleAssignment::EveryKth(k) => {
                let k = (*k).max(1);
                for i in 0..n {
                    if i % k != 0 {
                        overlay.set_role(HostId(i as u32), Role::Leaf);
                    }
                }
            }
            RoleAssignment::CapacityTopFraction(frac) => {
                let mut by_cap: Vec<HostId> = underlay.hosts.ids().collect();
                by_cap.sort_by(|&a, &b| {
                    underlay
                        .host(b)
                        .capacity_score()
                        .total_cmp(&underlay.host(a).capacity_score())
                        .then(a.cmp(&b))
                });
                let n_up = ((n as f64 * frac).ceil() as usize).clamp(1, n);
                for &h in &by_cap[n_up..] {
                    overlay.set_role(h, Role::Leaf);
                }
            }
        }
        let rng = sim.rng();
        // Content seeding: each peer shares what its region fetches.
        let shared: Vec<Vec<FileId>> = (0..n)
            .map(|i| {
                let h = HostId(i as u32);
                let asn = underlay.hosts.as_of(h);
                let count = match cfg.share_scheme {
                    ShareScheme::Uniform => cfg.shared_per_peer,
                    ShareScheme::Variable => match overlay.role(h) {
                        Role::Ultrapeer => cfg.shared_per_peer * 2,
                        Role::Leaf if i % 2 == 0 => cfg.shared_per_peer,
                        Role::Leaf => 0,
                    },
                };
                content.seed_shares(asn, count, rng)
            })
            .collect();
        // Static bootstrap hostcaches: a random membership sample, "filled
        // with a random subset of the network nodes' IP addresses" as in
        // the testlab study.
        let hostcache: Vec<Vec<HostId>> = (0..n)
            .map(|i| {
                let mut cache: Vec<HostId> = rng
                    .sample_indices(n, cfg.hostcache_size + 1)
                    .into_iter()
                    .map(|x| HostId(x as u32))
                    .filter(|&h| h != HostId(i as u32))
                    .collect();
                cache.truncate(cfg.hostcache_size);
                cache
            })
            .collect();
        let churn: Vec<ChurnModel> = (0..n).map(|_| ChurnModel::start(&cfg.churn, rng)).collect();
        let selector = Selector::new(cfg.selection.clone());
        let exchange_oracle = Oracle::new(usize::MAX);

        // Role census: how the promotion policy split the population
        // (CapacityTopFraction is the capacity-ranked ultrapeer promotion).
        let ultrapeers = (0..n)
            .filter(|&i| overlay.role(HostId(i as u32)) == Role::Ultrapeer)
            .count();
        sim.tracer_mut()
            .emit(SimTime::ZERO, "gnutella", TraceLevel::Info, "roles", |f| {
                f.u64("hosts", n as u64)
                    .u64("ultrapeers", ultrapeers as u64)
                    .u64("leaves", (n - ultrapeers) as u64);
            });

        let faults = cfg.faults.as_ref().map(|p| p.compile(&underlay.graph));
        let flows = FlowAllocator::new(&underlay);
        let mut world = GnutellaSim {
            underlay,
            overlay,
            cfg,
            content,
            selector,
            exchange_oracle,
            shared,
            hostcache,
            churn,
            epoch: vec![0; n],
            query_delay_sum_ms: 0.0,
            download_secs_sum: 0.0,
            download_bytes_intra: 0,
            download_bytes_total: 0,
            faults,
            crashed: vec![false; n],
            query_log: Vec::new(),
            download_log: Vec::new(),
            last_fault_seq: None,
            flows,
            next_flow_id: 0,
            scratch_flood: crate::overlay::FloodResult::default(),
            scratch_hits: Vec::new(),
            scratch_providers: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_picked: Vec::new(),
            scratch_neighbors: Vec::new(),
            scratch_tried: Vec::new(),
            scratch_crash: Vec::new(),
        };
        world.bootstrap(sim);
        world
    }

    fn bootstrap(&mut self, sim: &mut Simulator<Ev>) {
        let n = self.underlay.n_hosts();
        for i in 0..n {
            let h = HostId(i as u32);
            if self.churn[i].is_online() {
                // Stagger initial joins over the first minute so early
                // joiners have someone to connect to and later ones see a
                // grown network.
                let t = SimTime::from_micros(sim.rng().below(60_000_000));
                sim.schedule_at(t, Ev::Churn(h));
            } else {
                let t = self.churn[i].next_transition();
                if t != SimTime::MAX {
                    sim.schedule_at(t, Ev::Churn(h));
                }
            }
        }
        if let Some(plan) = &self.faults {
            for (i, &t) in plan.boundaries().iter().enumerate() {
                sim.schedule_at(t, Ev::Fault(i as u32));
            }
        }
    }

    /// Applies the composed fault state at one epoch boundary: routing
    /// rebuild + route-cache invalidation on the underlay, then a diff of
    /// the crash set against the previous one (newly crashed hosts drop
    /// off the overlay, restored hosts rejoin if their churn state allows).
    fn fault_boundary(&mut self, idx: usize, ctx: &mut Ctx<'_, Ev>) {
        let (t, state) = match &self.faults {
            None => return,
            Some(plan) => {
                let t = *plan
                    .boundaries()
                    .get(idx)
                    .expect("Ev::Fault only carries scheduled boundary indices"); // lint:allow(expect)
                (t, plan.state_at(t))
            }
        };
        debug_assert_eq!(t, ctx.now());
        let repair = self.underlay.apply_fault_state(&state);
        ctx.metrics.incr("net.fault.epochs", 1);
        let fault_seq = ctx.trace("net", TraceLevel::Info, "fault.epoch", |f| {
            f.u64("boundary", idx as u64);
            state.trace_fields(f);
        });
        // The epoch becomes the cause anchor: everything this boundary
        // triggers — leaves, crash restores, the Repair events they
        // schedule, and later download retries — points back at it.
        self.last_fault_seq = fault_seq.or(self.last_fault_seq);
        ctx.tracer.set_cause(fault_seq);
        ctx.trace("net", TraceLevel::Info, "routing.repair", |f| {
            f.u64("boundary", idx as u64)
                .u64("changed_links", repair.changed_links as u64)
                .u64("dirty_sources", repair.dirty_sources as u64)
                .u64("sources_total", repair.sources_total as u64)
                .bool("full_rebuild", repair.full_rebuild);
        });
        let mut now_crashed = std::mem::take(&mut self.scratch_crash);
        now_crashed.clear();
        now_crashed.resize(self.crashed.len(), false);
        for h in &state.crashed {
            if h.idx() < now_crashed.len() {
                now_crashed[h.idx()] = true;
            }
        }
        for (i, &now_down) in now_crashed.iter().enumerate() {
            let h = HostId(i as u32);
            match (self.crashed[i], now_down) {
                (false, true) => {
                    self.crashed[i] = true;
                    self.leave(h, ctx);
                }
                (true, false) => {
                    self.crashed[i] = false;
                    if self.churn[i].is_online() {
                        self.join(h, ctx);
                    }
                }
                _ => {}
            }
        }
        self.scratch_crash = now_crashed;
    }

    fn join(&mut self, h: HostId, ctx: &mut Ctx<'_, Ev>) {
        if self.overlay.is_online(h) || self.crashed[h.idx()] {
            return;
        }
        self.overlay.set_online(h, true);
        self.epoch[h.idx()] += 1;
        let ep = self.epoch[h.idx()];
        ctx.metrics.incr("gnutella.joins", 1);
        ctx.trace("gnutella", TraceLevel::Debug, "join", |f| {
            f.u64("host", h.0 as u64).u64("epoch", ep as u64);
        });
        self.connect(h, ctx);
        // Kick off this node's periodic cycles with a random phase.
        let ping_phase =
            SimTime::from_micros(ctx.rng.below(self.cfg.ping_interval.as_micros().max(1)));
        ctx.schedule_in(ping_phase, Ev::PingCycle(h, ep));
        let q = SimTime::from_secs_f64(ctx.rng.exp(self.cfg.query_interval.as_secs_f64()));
        ctx.schedule_in(q, Ev::QueryCycle(h, ep));
    }

    /// (Re)fills a node's neighbor set from its hostcache using the
    /// configured selection policy.
    fn connect(&mut self, h: HostId, ctx: &mut Ctx<'_, Ev>) {
        let target = match self.overlay.role(h) {
            Role::Ultrapeer => self.cfg.up_degree,
            Role::Leaf => self.cfg.leaf_degree,
        };
        let have = self.overlay.degree(h);
        if have >= target {
            return;
        }
        // Candidates: online ultrapeers from the hostcache (both roles
        // attach to ultrapeers only), not already neighbors.
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        candidates.extend(self.hostcache[h.idx()].iter().copied().filter(|&c| {
            c != h
                && self.overlay.is_online(c)
                && self.overlay.role(c) == Role::Ultrapeer
                && !self.overlay.has_edge(h, c)
        }));
        if candidates.is_empty() {
            self.scratch_candidates = candidates;
            return;
        }
        let mut picked = std::mem::take(&mut self.scratch_picked);
        self.selector.select_into(
            &self.underlay,
            h,
            &candidates,
            target - have,
            ctx.rng,
            &mut picked,
        );
        let added = picked.len();
        for &p in &picked {
            self.overlay.add_edge(&self.underlay, h, p);
        }
        ctx.trace("gnutella", TraceLevel::Trace, "connect", |f| {
            f.u64("host", h.0 as u64).u64("added", added as u64);
        });
        self.scratch_candidates = candidates;
        self.scratch_picked = picked;
    }

    fn leave(&mut self, h: HostId, ctx: &mut Ctx<'_, Ev>) {
        if !self.overlay.is_online(h) {
            return;
        }
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        neighbors.clear();
        neighbors.extend_from_slice(self.overlay.neighbors(h));
        self.overlay.set_online(h, false);
        ctx.metrics.incr("gnutella.leaves", 1);
        ctx.trace("gnutella", TraceLevel::Debug, "leave", |f| {
            f.u64("host", h.0 as u64)
                .u64("neighbors", neighbors.len() as u64);
        });
        // Neighbors notice the dead connection after a detection delay and
        // repair their degree.
        for &nb in &neighbors {
            ctx.schedule_in(SimTime::from_secs(5), Ev::Repair(nb));
        }
        self.scratch_neighbors = neighbors;
    }

    fn ping_cycle(&mut self, h: HostId, ep: u32, ctx: &mut Ctx<'_, Ev>) {
        if !self.overlay.is_online(h) || self.epoch[h.idx()] != ep {
            return;
        }
        let mut flood = std::mem::take(&mut self.scratch_flood);
        self.overlay.flood_into(h, self.cfg.ping_ttl, &mut flood);
        ctx.metrics.incr("gnutella.msg.ping", flood.messages);
        let mut pongs = 0u64;
        for r in &flood.reached {
            // Each reached node answers with pong-cache records (several
            // pong messages) routed back over `hops` overlay links.
            pongs += r.hops as u64 * self.cfg.pongs_per_reply;
        }
        ctx.metrics.incr("gnutella.msg.pong", pongs);
        ctx.trace("gnutella", TraceLevel::Debug, "flood.ping", |f| {
            f.u64("host", h.0 as u64)
                .u64("msgs", flood.messages)
                .u64("reached", flood.reached.len() as u64)
                .u64("pongs", pongs);
        });
        if self.cfg.account_overhead_traffic {
            self.account_overhead(h, &flood, wire::PING, wire::PONG, ctx.now());
        }
        // Refresh the hostcache from the pongs (newest first, bounded).
        let cache = &mut self.hostcache[h.idx()];
        for r in &flood.reached {
            if r.host != h && !cache.contains(&r.host) {
                if cache.len() >= self.cfg.hostcache_size {
                    cache.remove(0);
                }
                cache.push(r.host);
            }
        }
        self.scratch_flood = flood;
        // Periodic self-reschedule with root provenance: each cycle is a
        // fresh causal root, not a descendant of every cycle before it.
        ctx.schedule_in_root(self.cfg.ping_interval, Ev::PingCycle(h, ep));
    }

    fn query_cycle(&mut self, h: HostId, ep: u32, ctx: &mut Ctx<'_, Ev>) {
        if !self.overlay.is_online(h) || self.epoch[h.idx()] != ep {
            return;
        }
        // Exactly one pending QueryCycle per online session: reschedule
        // here, success or not (root provenance — see ping_cycle).
        let next = SimTime::from_secs_f64(ctx.rng.exp(self.cfg.query_interval.as_secs_f64()));
        ctx.schedule_in_root(next, Ev::QueryCycle(h, ep));
        let asn = self.underlay.hosts.as_of(h);
        let file = self.content.sample_interest(asn, ctx.rng);
        ctx.metrics.incr("gnutella.queries", 1);
        // Open the query span: it covers the flood, QueryHit routing,
        // source selection and the download (including retries). The id
        // comes from the tracer's deterministic counter, so allocating it
        // unconditionally keeps traces byte-identical per seed.
        let span = ctx.tracer.alloc_span();
        let prev_prov = ctx.tracer.provenance();
        ctx.tracer.set_span(Some(span));
        ctx.trace("gnutella", TraceLevel::Debug, "span.open", |f| {
            f.str("span_kind", "query")
                .u64("host", h.0 as u64)
                .u64("file", file.0 as u64);
        });
        let mut flood = std::mem::take(&mut self.scratch_flood);
        self.overlay.flood_into(h, self.cfg.query_ttl, &mut flood);
        ctx.metrics.incr("gnutella.msg.query", flood.messages);
        // Hits: reached nodes sharing the file reply with a QueryHit routed
        // back over their hop distance.
        let mut hits = std::mem::take(&mut self.scratch_hits);
        hits.clear();
        let mut hit_msgs = 0u64;
        for r in &flood.reached {
            if self.shared[r.host.idx()].binary_search(&file).is_ok() {
                hits.push(*r);
                hit_msgs += r.hops as u64;
            }
        }
        ctx.metrics.incr("gnutella.msg.queryhit", hit_msgs);
        ctx.trace("gnutella", TraceLevel::Debug, "flood.query", |f| {
            f.u64("host", h.0 as u64)
                .u64("file", file.0 as u64)
                .u64("msgs", flood.messages)
                .u64("reached", flood.reached.len() as u64)
                .u64("hits", hits.len() as u64);
        });
        if self.cfg.account_overhead_traffic {
            self.account_overhead(h, &flood, wire::QUERY, 0, ctx.now());
        }
        self.scratch_flood = flood;
        self.query_log.push((ctx.now(), !hits.is_empty()));
        if hits.is_empty() {
            self.scratch_hits = hits;
            ctx.trace("gnutella", TraceLevel::Debug, "span.close", |f| {
                f.str("span_kind", "query")
                    .bool("hit", false)
                    .u64("dur_us", 0);
            });
            ctx.tracer.set_provenance(prev_prov);
            return;
        }
        ctx.metrics.incr("gnutella.queries.success", 1);
        // Time to first hit: query out + hit back over the same tree path.
        // Saturating: edges created across faulted (unroutable) paths carry
        // the overlay's u64::MAX/4 latency sentinel.
        let first_hit_us = hits
            .iter()
            .map(|r| r.latency_us.saturating_mul(2))
            .min()
            .unwrap_or(0);
        self.query_delay_sum_ms += first_hit_us as f64 / 1_000.0;
        // File-exchange stage: choose the provider.
        let mut providers = std::mem::take(&mut self.scratch_providers);
        providers.clear();
        providers.extend(hits.iter().map(|r| r.host));
        self.scratch_hits = hits;
        let provider = if self.cfg.oracle_at_file_exchange {
            self.exchange_oracle
                .best(&self.underlay, h, &providers)
                .expect("non-empty providers") // lint:allow(expect)
        } else if self.cfg.bandwidth_aware_source {
            *providers
                .iter()
                .max_by_key(|&&p| (self.underlay.host(p).up_kbps, p))
                .expect("non-empty providers") // lint:allow(expect)
        } else {
            *ctx.rng.pick(&providers)
        };
        let secs_before = self.download_secs_sum;
        self.download(h, provider, &providers, ctx);
        self.scratch_providers = providers;
        // Modeled end-to-end duration: time to the first QueryHit plus the
        // transfer time of the (possibly re-sourced) download. Spans in
        // this overlay are synchronous within one event, so the close
        // carries the modeled latency explicitly rather than a sim-time
        // delta (`xtask trace spans` prefers `dur_us` when present).
        let dur_us =
            first_hit_us.saturating_add(((self.download_secs_sum - secs_before) * 1e6) as u64);
        ctx.trace("gnutella", TraceLevel::Debug, "span.close", |f| {
            f.str("span_kind", "query")
                .bool("hit", true)
                .u64("dur_us", dur_us);
        });
        ctx.tracer.set_provenance(prev_prov);
    }

    /// File exchange with re-sourcing: tries the policy-chosen provider
    /// first and, on transfer failure (source unreachable under the active
    /// fault mask), falls back to the remaining QueryHit sources in
    /// underlay-aware order (fewest AS hops first), up to
    /// `cfg.download_retries` alternates before abandoning the download.
    fn download(
        &mut self,
        downloader: HostId,
        provider: HostId,
        providers: &[HostId],
        ctx: &mut Ctx<'_, Ev>,
    ) {
        let bytes = self.cfg.file_size_bytes;
        let mut tried = std::mem::take(&mut self.scratch_tried);
        tried.clear();
        tried.push(provider);
        let mut current = provider;
        loop {
            let secs = self.flow_secs(current, downloader, bytes, ctx);
            if let Some(s) = secs {
                let cat = self.underlay.account_transfer_traced(
                    ctx.now(),
                    current,
                    downloader,
                    bytes,
                    ctx.tracer,
                );
                ctx.metrics.incr("gnutella.downloads", 1);
                self.download_bytes_total += bytes;
                if cat == TrafficCategory::IntraAs {
                    ctx.metrics.incr("gnutella.downloads.intra_as", 1);
                    self.download_bytes_intra += bytes;
                }
                self.download_secs_sum += s;
                ctx.trace("gnutella", TraceLevel::Debug, "download", |f| {
                    f.u64("downloader", downloader.0 as u64)
                        .u64("provider", current.0 as u64)
                        .u64("bytes", bytes)
                        .str("cat", cat.name())
                        .f64("secs", s);
                });
                self.download_log.push((ctx.now(), true));
                break;
            }
            // Transfer failure. Pick the closest untried QueryHit source
            // (AS hops, then host id — deterministic, no extra RNG draws).
            let next = if tried.len() > self.cfg.download_retries {
                None
            } else {
                providers
                    .iter()
                    .copied()
                    .filter(|p| !tried.contains(p))
                    .min_by_key(|&p| {
                        (
                            self.underlay.as_hops(downloader, p).unwrap_or(u32::MAX),
                            p.0,
                        )
                    })
            };
            match next {
                None => {
                    ctx.metrics.incr("gnutella.downloads.failed", 1);
                    self.download_log.push((ctx.now(), false));
                    break;
                }
                Some(p) => {
                    ctx.metrics.incr("gnutella.downloads.retried", 1);
                    // The retry is caused by the fault epoch that took the
                    // source down; whatever follows it (the re-sourced
                    // download, or the next retry) is caused by the retry.
                    ctx.tracer.set_cause(self.last_fault_seq);
                    let retry_seq =
                        ctx.trace("gnutella", TraceLevel::Debug, "download.retry", |f| {
                            f.u64("downloader", downloader.0 as u64)
                                .u64("failed", current.0 as u64)
                                .u64("alternate", p.0 as u64)
                                .u64("attempt", tried.len() as u64);
                        });
                    ctx.tracer.set_cause(retry_seq.or(self.last_fault_seq));
                    tried.push(p);
                    current = p;
                }
            }
        }
        self.scratch_tried = tried;
        self.flows.export_metrics(ctx.metrics);
    }

    /// Models one download as a single flow through the max-min
    /// allocator: one RTT of handshake, then the file at the flow's
    /// allocated rate, further capped by the TCP window/RTT throughput
    /// limit — the cap is what keeps nearby (low-RTT) sources genuinely
    /// faster, not just cheaper for the ISP. Returns `None` when the
    /// pair is unroutable under the active fault mask or the allocated
    /// rate rounds to zero (dead uplink), which sends the caller down
    /// the re-sourcing path.
    fn flow_secs(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: u64,
        ctx: &mut Ctx<'_, Ev>,
    ) -> Option<f64> {
        let rtt_secs = self.underlay.rtt_us(src, dst)? as f64 / 1e6;
        let id = self.next_flow_id;
        self.flows.begin();
        if !self.flows.add_flow(id, src, dst, &self.underlay) {
            return None;
        }
        self.flows.allocate();
        self.next_flow_id += 1;
        let mut rate = self.flows.rate_of(id)?;
        if rtt_secs > 0.0 {
            rate = rate.min(self.underlay.config.tcp_window_bytes as f64 / rtt_secs);
        }
        if rate < 1.0 {
            return None;
        }
        ctx.trace("net", TraceLevel::Debug, "flow.open", |f| {
            f.u64("flow", id)
                .u64("src", src.0 as u64)
                .u64("dst", dst.0 as u64);
        });
        ctx.trace("net", TraceLevel::Debug, "flow.close", |f| {
            f.u64("flow", id).u64("bytes", bytes);
        });
        Some(rtt_secs + bytes as f64 / rate)
    }

    /// The raw per-query outcome series `(time, found a provider)`.
    pub fn query_log(&self) -> &[(SimTime, bool)] {
        &self.query_log
    }

    /// The raw per-download outcome series `(time, completed)`.
    pub fn download_log(&self) -> &[(SimTime, bool)] {
        &self.download_log
    }

    /// Charges flood signalling bytes to the underlay ledger: each
    /// transmission crosses one overlay edge, i.e. one underlay path.
    /// We approximate with the BFS tree edges (duplicate copies follow the
    /// same paths).
    fn account_overhead(
        &mut self,
        origin: HostId,
        flood: &crate::overlay::FloodResult,
        fwd_bytes: u64,
        reply_bytes: u64,
        now: SimTime,
    ) {
        for r in &flood.reached {
            self.underlay
                .account_transfer(now, origin, r.host, fwd_bytes);
            if reply_bytes > 0 {
                self.underlay
                    .account_transfer(now, r.host, origin, reply_bytes);
            }
        }
    }

    /// Extracts the report after the run.
    pub fn report(&self, metrics: &uap_sim::Metrics, events: u64) -> GnutellaReport {
        let queries = metrics.counter("gnutella.queries");
        let succ = metrics.counter("gnutella.queries.success");
        let downloads = metrics.counter("gnutella.downloads");
        GnutellaReport {
            ping_msgs: metrics.counter("gnutella.msg.ping"),
            pong_msgs: metrics.counter("gnutella.msg.pong"),
            query_msgs: metrics.counter("gnutella.msg.query"),
            queryhit_msgs: metrics.counter("gnutella.msg.queryhit"),
            queries_issued: queries,
            queries_successful: succ,
            downloads,
            downloads_intra_as: metrics.counter("gnutella.downloads.intra_as"),
            mean_query_delay_ms: if succ > 0 {
                self.query_delay_sum_ms / succ as f64
            } else {
                0.0
            },
            mean_download_secs: if downloads > 0 {
                self.download_secs_sum / downloads as f64
            } else {
                0.0
            },
            oracle_queries: self.selector.oracle_queries() + self.exchange_oracle.queries(),
            probe_messages: self.selector.probe_messages(),
            edges: self.overlay.edges(),
            download_locality: if self.download_bytes_total > 0 {
                self.download_bytes_intra as f64 / self.download_bytes_total as f64
            } else {
                0.0
            },
            joins: metrics.counter("gnutella.joins"),
            events,
        }
    }
}

impl World<Ev> for GnutellaSim {
    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::Churn(h) => {
                let i = h.idx();
                if self.churn[i].is_online() && !self.overlay.is_online(h) {
                    // Initial (or re-) join.
                    self.join(h, ctx);
                    let t = self.churn[i].next_transition();
                    if t != SimTime::MAX {
                        ctx.schedule_at(t, Ev::Churn(h));
                    }
                } else {
                    // A transition is due.
                    let cfg = self.cfg.churn;
                    self.churn[i].transition(&cfg, ctx.rng);
                    if self.churn[i].is_online() {
                        self.join(h, ctx);
                    } else {
                        self.leave(h, ctx);
                    }
                    let t = self.churn[i].next_transition();
                    if t != SimTime::MAX {
                        ctx.schedule_at(t, Ev::Churn(h));
                    }
                }
            }
            Ev::PingCycle(h, ep) => self.ping_cycle(h, ep, ctx),
            Ev::QueryCycle(h, ep) => self.query_cycle(h, ep, ctx),
            Ev::Repair(h) => {
                if self.overlay.is_online(h) {
                    self.connect(h, ctx);
                }
            }
            Ev::Fault(idx) => self.fault_boundary(idx as usize, ctx),
        }
    }

    fn kind_of(&self, ev: &Ev) -> &'static str {
        match ev {
            Ev::Churn(_) => "churn",
            Ev::PingCycle(..) => "ping_cycle",
            Ev::QueryCycle(..) => "query_cycle",
            Ev::Repair(_) => "repair",
            Ev::Fault(_) => "fault",
        }
    }
}

/// Runs one configured experiment and returns the report plus the world
/// (whose underlay ledger holds the traffic classification).
pub fn run_experiment(
    underlay: Underlay,
    cfg: GnutellaConfig,
    seed: u64,
) -> (GnutellaReport, GnutellaSim) {
    let mut tracer = Tracer::disabled();
    run_experiment_with(underlay, cfg, seed, &mut tracer)
}

/// Like [`run_experiment`], but records into `tracer` (temporarily moved
/// into the engine for the duration of the run and restored afterwards).
/// At end of run this emits the per-link traffic totals and one
/// `gnutella`/`run.end` summary event.
pub fn run_experiment_with(
    underlay: Underlay,
    cfg: GnutellaConfig,
    seed: u64,
    tracer: &mut Tracer,
) -> (GnutellaReport, GnutellaSim) {
    let duration = cfg.duration;
    let mut sim = Simulator::new(seed);
    sim.set_tracer(std::mem::take(tracer));
    let mut world = GnutellaSim::new(underlay, cfg, &mut sim);
    let stats = sim.run_until(&mut world, duration);
    let report = world.report(sim.metrics(), stats.events_processed);
    let mut t = sim.take_tracer();
    world.underlay.trace_link_totals(stats.end_time, &mut t);
    t.emit(
        stats.end_time,
        "gnutella",
        TraceLevel::Info,
        "run.end",
        |f| {
            f.u64("events", stats.events_processed)
                .u64("queries", report.queries_issued)
                .u64("downloads", report.downloads)
                .u64("msgs", report.total_msgs());
        },
    );
    *tracer = t;
    (report, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::NeighborSelection;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};
    use uap_sim::SimRng;

    fn underlay(n_hosts: usize, seed: u64) -> Underlay {
        let mut rng = SimRng::new(seed);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n_hosts),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    fn quick_cfg(selection: NeighborSelection) -> GnutellaConfig {
        GnutellaConfig {
            selection,
            duration: SimTime::from_mins(10),
            ..Default::default()
        }
    }

    #[test]
    fn baseline_run_produces_traffic_and_searches() {
        let (report, world) =
            run_experiment(underlay(150, 1), quick_cfg(NeighborSelection::Random), 42);
        assert!(report.joins >= 150);
        assert!(report.ping_msgs > 0);
        assert!(report.pong_msgs > 0);
        assert!(report.query_msgs > 0);
        assert!(report.queries_issued > 50);
        assert!(
            report.success_ratio() > 0.3,
            "success {}",
            report.success_ratio()
        );
        assert!(!report.edges.is_empty());
        assert!(world.underlay.traffic.transfers() > 0);
    }

    #[test]
    fn oracle_biased_increases_intra_as_edges() {
        let (unbiased, _) =
            run_experiment(underlay(200, 2), quick_cfg(NeighborSelection::Random), 7);
        let (biased, world) = run_experiment(
            underlay(200, 2),
            quick_cfg(NeighborSelection::OracleBiased { list_size: 1000 }),
            7,
        );
        let intra_frac = |edges: &[(HostId, HostId)], u: &Underlay| {
            if edges.is_empty() {
                return 0.0;
            }
            edges.iter().filter(|&&(a, b)| u.same_as(a, b)).count() as f64 / edges.len() as f64
        };
        let fu = intra_frac(&unbiased.edges, &world.underlay);
        let fb = intra_frac(&biased.edges, &world.underlay);
        assert!(fb > 2.0 * fu, "biased intra {fb} vs unbiased {fu}");
        assert!(biased.oracle_queries > 0);
    }

    #[test]
    fn oracle_biased_reduces_message_counts() {
        let n = 300;
        let (unbiased, _) = run_experiment(underlay(n, 3), quick_cfg(NeighborSelection::Random), 9);
        let (biased, _) = run_experiment(
            underlay(n, 3),
            quick_cfg(NeighborSelection::OracleBiased { list_size: 1000 }),
            9,
        );
        assert!(
            biased.total_msgs() < unbiased.total_msgs(),
            "biased {} !< unbiased {}",
            biased.total_msgs(),
            unbiased.total_msgs()
        );
        // Search must not collapse (the §6 "challenge" bound: allow some
        // degradation but not a broken network).
        assert!(biased.success_ratio() > 0.5 * unbiased.success_ratio());
    }

    #[test]
    fn oracle_at_file_exchange_lifts_locality() {
        let n = 250;
        let mut cfg = quick_cfg(NeighborSelection::OracleBiased { list_size: 1000 });
        let (plain, _) = run_experiment(underlay(n, 4), cfg.clone(), 11);
        cfg.oracle_at_file_exchange = true;
        let (oracle_x, _) = run_experiment(underlay(n, 4), cfg, 11);
        assert!(
            oracle_x.intra_as_exchange_pct() > plain.intra_as_exchange_pct(),
            "{} !> {}",
            oracle_x.intra_as_exchange_pct(),
            plain.intra_as_exchange_pct()
        );
    }

    #[test]
    fn churn_run_stays_alive() {
        let mut cfg = quick_cfg(NeighborSelection::Random);
        cfg.churn = uap_sim::ChurnConfig::exponential(300.0);
        cfg.duration = SimTime::from_mins(15);
        let (report, world) = run_experiment(underlay(120, 5), cfg, 13);
        assert!(report.joins > 120, "rejoins should occur: {}", report.joins);
        assert!(report.queries_issued > 0);
        // Some nodes online at the end.
        assert!(!world.overlay.online_nodes().is_empty());
    }

    #[test]
    fn leaf_roles_limit_flooding() {
        let mut cfg = quick_cfg(NeighborSelection::Random);
        cfg.roles = RoleAssignment::EveryKth(3);
        let (report, world) = run_experiment(underlay(90, 6), cfg, 17);
        // Leaves exist and are attached.
        let leaves = (0..90)
            .map(HostId)
            .filter(|&h| world.overlay.role(h) == Role::Leaf)
            .count();
        assert_eq!(leaves, 60);
        assert!(report.queries_issued > 0);
        assert!(report.success_ratio() > 0.2);
    }

    #[test]
    fn fault_campaign_degrades_and_recovers() {
        use uap_net::{FaultKind, FaultPlan};
        let mut cfg = quick_cfg(NeighborSelection::Random);
        cfg.duration = SimTime::from_mins(24);
        cfg.download_retries = 3;
        cfg.faults = Some(
            FaultPlan::new()
                .epoch(
                    SimTime::from_mins(8),
                    SimTime::from_mins(16),
                    FaultKind::TransitDown { p: 0.8, salt: 99 },
                )
                .epoch(
                    SimTime::from_mins(8),
                    SimTime::from_mins(16),
                    FaultKind::LatencyInflation { factor: 2.0 },
                ),
        );
        let (report, world) = run_experiment(underlay(150, 9), cfg, 31);
        // Both epoch boundaries applied (entry + exit share the two times).
        assert_eq!(world.underlay.route_cache_invalidations(), 2);
        // The partition must have made some chosen source unreachable.
        let failed_during = world
            .download_log()
            .iter()
            .filter(|&&(t, ok)| !ok && t >= SimTime::from_mins(8) && t < SimTime::from_mins(16))
            .count();
        assert!(
            failed_during > 0,
            "an 80% transit outage should defeat some downloads"
        );
        // After the last epoch clears, downloads complete again.
        let after: Vec<bool> = world
            .download_log()
            .iter()
            .filter(|&&(t, _)| t >= SimTime::from_mins(16))
            .map(|&(_, ok)| ok)
            .collect();
        assert!(!after.is_empty());
        assert!(
            after.iter().all(|&ok| ok),
            "post-fault downloads must all complete"
        );
        assert!(report.downloads > 0);
    }

    #[test]
    fn host_crash_epochs_drop_and_restore_peers() {
        use uap_net::{FaultKind, FaultPlan};
        let mut cfg = quick_cfg(NeighborSelection::Random);
        cfg.duration = SimTime::from_mins(15);
        let crashed: Vec<HostId> = (0..30u32).map(HostId).collect();
        cfg.faults = Some(FaultPlan::new().epoch(
            SimTime::from_mins(5),
            SimTime::from_mins(10),
            FaultKind::HostCrash {
                hosts: crashed.clone(),
            },
        ));
        let (report, world) = run_experiment(underlay(120, 10), cfg, 33);
        // Static churn: every crashed host restarts when the epoch ends.
        for h in crashed {
            assert!(
                world.overlay.is_online(h),
                "host {h:?} should be back after the crash window"
            );
        }
        // 120 initial joins + 30 restarts.
        assert!(report.joins >= 150, "joins {}", report.joins);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use uap_net::{FaultKind, FaultPlan};
        let mut cfg = quick_cfg(NeighborSelection::Random);
        cfg.duration = SimTime::from_mins(20);
        cfg.faults = Some(
            FaultPlan::new()
                .epoch(
                    SimTime::from_mins(5),
                    SimTime::from_mins(12),
                    FaultKind::RandomLinkDown { p: 0.5, salt: 7 },
                )
                .epoch(
                    SimTime::from_mins(6),
                    SimTime::from_mins(10),
                    FaultKind::HostCrash {
                        hosts: (0..20u32).map(HostId).collect(),
                    },
                ),
        );
        let (a, wa) = run_experiment(underlay(100, 8), cfg.clone(), 21);
        let (b, wb) = run_experiment(underlay(100, 8), cfg, 21);
        assert_eq!(a.total_msgs(), b.total_msgs());
        assert_eq!(a.queries_issued, b.queries_issued);
        assert_eq!(a.downloads, b.downloads);
        assert_eq!(wa.query_log(), wb.query_log());
        assert_eq!(wa.download_log(), wb.download_log());
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = quick_cfg(NeighborSelection::OracleBiased { list_size: 100 });
        let (a, _) = run_experiment(underlay(100, 8), cfg.clone(), 21);
        let (b, _) = run_experiment(underlay(100, 8), cfg, 21);
        assert_eq!(a.total_msgs(), b.total_msgs());
        assert_eq!(a.queries_issued, b.queries_issued);
        assert_eq!(a.downloads_intra_as, b.downloads_intra_as);
        assert_eq!(a.edges, b.edges);
    }
}
