//! Gnutella 0.4 wire format.
//!
//! The simulator accounts messages analytically, but a credible substrate
//! must also speak the actual protocol: a 23-byte descriptor header
//! (16-byte GUID, descriptor type, TTL, hops, little-endian payload
//! length) followed by the typed payload. This module encodes and decodes
//! the four descriptors the paper's Table 1 counts — `Ping`, `Pong`,
//! `Query`, `QueryHit` — byte-compatible with the Gnutella 0.4
//! specification (modulo the QueryHit result set, which we carry in the
//! spec's record layout with a single result per message).
//!
//! The wire sizes used by the analytic accounting
//! ([`crate::config::wire`]) are checked against these encoders in the
//! tests, so the two layers cannot drift apart.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The 16-byte descriptor GUID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Guid(pub [u8; 16]);

impl Guid {
    /// Builds a GUID from a 64-bit id (simulation ids are u64s; the high
    /// bytes carry a fixed tag so encoded GUIDs are recognizably ours).
    pub fn from_u64(v: u64) -> Guid {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&v.to_le_bytes());
        b[8..12].copy_from_slice(b"uap!");
        Guid(b)
    }
}

/// Descriptor type codes from the 0.4 specification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum DescriptorType {
    /// 0x00.
    Ping = 0x00,
    /// 0x01.
    Pong = 0x01,
    /// 0x80.
    Query = 0x80,
    /// 0x81.
    QueryHit = 0x81,
}

impl DescriptorType {
    fn from_byte(b: u8) -> Option<DescriptorType> {
        match b {
            0x00 => Some(DescriptorType::Ping),
            0x01 => Some(DescriptorType::Pong),
            0x80 => Some(DescriptorType::Query),
            0x81 => Some(DescriptorType::QueryHit),
            _ => None,
        }
    }
}

/// A decoded descriptor.
#[derive(Clone, PartialEq, Debug)]
pub struct Descriptor {
    /// Message GUID (flood duplicate suppression keys on this).
    pub guid: Guid,
    /// Remaining time-to-live.
    pub ttl: u8,
    /// Hops travelled so far.
    pub hops: u8,
    /// The payload.
    pub payload: Payload,
}

/// Typed payloads of the four descriptors.
#[derive(Clone, PartialEq, Debug)]
pub enum Payload {
    /// Ping: empty payload.
    Ping,
    /// Pong: port, IPv4, shared file count and kilobytes.
    Pong {
        /// Listening port.
        port: u16,
        /// IPv4 address (big-endian display order).
        ip: u32,
        /// Number of shared files.
        files: u32,
        /// Shared kilobytes.
        kilobytes: u32,
    },
    /// Query: minimum speed + search criteria string.
    Query {
        /// Minimum speed in kB/s the responder must offer.
        min_speed: u16,
        /// Search string (NUL-terminated on the wire).
        search: String,
    },
    /// QueryHit: one result record plus the responder's address/servent id.
    QueryHit {
        /// Responder port.
        port: u16,
        /// Responder IPv4.
        ip: u32,
        /// Responder speed in kB/s.
        speed: u32,
        /// File index of the result.
        file_index: u32,
        /// File size in bytes.
        file_size: u32,
        /// File name (double-NUL-terminated on the wire).
        file_name: String,
        /// Responder's 16-byte servent identifier.
        servent_id: Guid,
    },
}

impl Payload {
    fn descriptor_type(&self) -> DescriptorType {
        match self {
            Payload::Ping => DescriptorType::Ping,
            Payload::Pong { .. } => DescriptorType::Pong,
            Payload::Query { .. } => DescriptorType::Query,
            Payload::QueryHit { .. } => DescriptorType::QueryHit,
        }
    }
}

/// Errors from [`decode`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Fewer than 23 bytes available.
    Truncated,
    /// Unknown descriptor type byte.
    UnknownType(u8),
    /// Payload length field disagrees with available bytes.
    BadLength,
    /// Payload contents malformed (e.g. unterminated string).
    Malformed,
}

/// Size of the fixed descriptor header.
pub const HEADER_LEN: usize = 23;

/// Encodes a descriptor to bytes.
pub fn encode(d: &Descriptor) -> Bytes {
    let mut payload = BytesMut::new();
    match &d.payload {
        Payload::Ping => {}
        Payload::Pong {
            port,
            ip,
            files,
            kilobytes,
        } => {
            payload.put_u16_le(*port);
            payload.put_u32(*ip);
            payload.put_u32_le(*files);
            payload.put_u32_le(*kilobytes);
        }
        Payload::Query { min_speed, search } => {
            debug_assert!(
                !search.as_bytes().contains(&0),
                "NUL in search string would truncate on decode"
            );
            payload.put_u16_le(*min_speed);
            payload.put_slice(search.as_bytes());
            payload.put_u8(0);
        }
        Payload::QueryHit {
            port,
            ip,
            speed,
            file_index,
            file_size,
            file_name,
            servent_id,
        } => {
            debug_assert!(
                !file_name.as_bytes().contains(&0),
                "NUL in file name would truncate on decode"
            );
            payload.put_u8(1); // number of hits
            payload.put_u16_le(*port);
            payload.put_u32(*ip);
            payload.put_u32_le(*speed);
            payload.put_u32_le(*file_index);
            payload.put_u32_le(*file_size);
            payload.put_slice(file_name.as_bytes());
            payload.put_u8(0);
            payload.put_u8(0);
            payload.put_slice(&servent_id.0);
        }
    }
    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(&d.guid.0);
    out.put_u8(d.payload.descriptor_type() as u8);
    out.put_u8(d.ttl);
    out.put_u8(d.hops);
    out.put_u32_le(payload.len() as u32);
    out.put_slice(&payload);
    out.freeze()
}

/// Decodes one descriptor from the front of `buf`.
pub fn decode(buf: &mut Bytes) -> Result<Descriptor, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let mut guid = [0u8; 16];
    buf.copy_to_slice(&mut guid);
    let tbyte = buf.get_u8();
    let ttl = buf.get_u8();
    let hops = buf.get_u8();
    let len = buf.get_u32_le() as usize;
    let dtype = DescriptorType::from_byte(tbyte).ok_or(WireError::UnknownType(tbyte))?;
    if buf.len() < len {
        return Err(WireError::BadLength);
    }
    let mut p = buf.split_to(len);
    let payload = match dtype {
        DescriptorType::Ping => {
            if !p.is_empty() {
                return Err(WireError::Malformed);
            }
            Payload::Ping
        }
        DescriptorType::Pong => {
            if p.len() != 14 {
                return Err(WireError::Malformed);
            }
            Payload::Pong {
                port: p.get_u16_le(),
                ip: p.get_u32(),
                files: p.get_u32_le(),
                kilobytes: p.get_u32_le(),
            }
        }
        DescriptorType::Query => {
            if p.len() < 3 {
                return Err(WireError::Malformed);
            }
            let min_speed = p.get_u16_le();
            let bytes: Vec<u8> = p.to_vec();
            let nul = bytes
                .iter()
                .position(|&b| b == 0)
                .ok_or(WireError::Malformed)?;
            let search =
                String::from_utf8(bytes[..nul].to_vec()).map_err(|_| WireError::Malformed)?;
            Payload::Query { min_speed, search }
        }
        DescriptorType::QueryHit => {
            if p.len() < 1 + 2 + 4 + 4 + 4 + 4 + 2 + 16 {
                return Err(WireError::Malformed);
            }
            let n_hits = p.get_u8();
            if n_hits != 1 {
                return Err(WireError::Malformed);
            }
            let port = p.get_u16_le();
            let ip = p.get_u32();
            let speed = p.get_u32_le();
            let file_index = p.get_u32_le();
            let file_size = p.get_u32_le();
            let rest: Vec<u8> = p.to_vec();
            if rest.len() < 2 + 16 {
                return Err(WireError::Malformed);
            }
            let name_end = rest
                .windows(2)
                .position(|w| w == [0, 0])
                .ok_or(WireError::Malformed)?;
            let file_name =
                String::from_utf8(rest[..name_end].to_vec()).map_err(|_| WireError::Malformed)?;
            let sid_start = name_end + 2;
            if rest.len() != sid_start + 16 {
                return Err(WireError::Malformed);
            }
            let mut sid = [0u8; 16];
            sid.copy_from_slice(&rest[sid_start..]);
            Payload::QueryHit {
                port,
                ip,
                speed,
                file_index,
                file_size,
                file_name,
                servent_id: Guid(sid),
            }
        }
    };
    Ok(Descriptor {
        guid: Guid(guid),
        ttl,
        hops,
        payload,
    })
}

/// The encoded size of a descriptor without building the buffer — used to
/// keep the analytic accounting and the codec in lock-step.
pub fn encoded_len(payload: &Payload) -> usize {
    HEADER_LEN
        + match payload {
            Payload::Ping => 0,
            Payload::Pong { .. } => 14,
            Payload::Query { search, .. } => 2 + search.len() + 1,
            Payload::QueryHit { file_name, .. } => 1 + 2 + 4 + 4 + 4 + 4 + file_name.len() + 2 + 16,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::wire;

    fn roundtrip(payload: Payload) -> Descriptor {
        let d = Descriptor {
            guid: Guid::from_u64(0xDEAD_BEEF),
            ttl: 5,
            hops: 2,
            payload,
        };
        let enc = encode(&d);
        assert_eq!(enc.len(), encoded_len(&d.payload));
        let mut buf = enc.clone();
        let back = decode(&mut buf).expect("decode");
        assert!(buf.is_empty(), "trailing bytes");
        assert_eq!(back, d);
        back
    }

    #[test]
    fn ping_roundtrip_and_size() {
        let d = roundtrip(Payload::Ping);
        assert_eq!(encoded_len(&d.payload) as u64, wire::PING);
    }

    #[test]
    fn pong_roundtrip_and_size() {
        let d = roundtrip(Payload::Pong {
            port: 6346,
            ip: 0x0A01_0005,
            files: 20,
            kilobytes: 81_920,
        });
        assert_eq!(encoded_len(&d.payload) as u64, wire::PONG);
    }

    #[test]
    fn query_roundtrip_and_size_matches_accounting() {
        // The analytic QUERY size assumes a 17-byte search string.
        let d = roundtrip(Payload::Query {
            min_speed: 64,
            search: "file-000000000123".into(),
        });
        assert_eq!(encoded_len(&d.payload) as u64, wire::QUERY);
    }

    #[test]
    fn queryhit_roundtrip_and_size_matches_accounting() {
        // The analytic QUERY_HIT size assumes a 23-byte file name.
        let d = roundtrip(Payload::QueryHit {
            port: 6346,
            ip: 0x0A02_0001,
            speed: 640,
            file_index: 7,
            file_size: 4 << 20,
            file_name: "shared-file-000000123.m".into(),
            servent_id: Guid::from_u64(99),
        });
        assert_eq!(encoded_len(&d.payload) as u64, wire::QUERY_HIT);
    }

    #[test]
    fn truncated_header_rejected() {
        let mut b = Bytes::from_static(&[0u8; 10]);
        assert_eq!(decode(&mut b), Err(WireError::Truncated));
    }

    #[test]
    fn unknown_type_rejected() {
        let d = Descriptor {
            guid: Guid::from_u64(1),
            ttl: 1,
            hops: 0,
            payload: Payload::Ping,
        };
        let mut raw = encode(&d).to_vec();
        raw[16] = 0x42; // corrupt the type byte
        let mut b = Bytes::from(raw);
        assert_eq!(decode(&mut b), Err(WireError::UnknownType(0x42)));
    }

    #[test]
    fn bad_length_rejected() {
        let d = Descriptor {
            guid: Guid::from_u64(1),
            ttl: 1,
            hops: 0,
            payload: Payload::Pong {
                port: 1,
                ip: 2,
                files: 3,
                kilobytes: 4,
            },
        };
        let enc = encode(&d);
        // Drop the last payload byte: length field now overruns.
        let mut b = enc.slice(..enc.len() - 1);
        assert_eq!(decode(&mut b), Err(WireError::BadLength));
    }

    #[test]
    fn unterminated_query_rejected() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[7u8; 16]); // guid
        raw.push(0x80); // query
        raw.push(3);
        raw.push(0);
        raw.extend_from_slice(&4u32.to_le_bytes());
        raw.extend_from_slice(&[0x10, 0x00, b'a', b'b']); // no NUL
        let mut b = Bytes::from(raw);
        assert_eq!(decode(&mut b), Err(WireError::Malformed));
    }

    #[test]
    fn stream_of_descriptors_decodes_in_order() {
        let a = Descriptor {
            guid: Guid::from_u64(1),
            ttl: 7,
            hops: 0,
            payload: Payload::Ping,
        };
        let b = Descriptor {
            guid: Guid::from_u64(2),
            ttl: 6,
            hops: 1,
            payload: Payload::Query {
                min_speed: 0,
                search: "x".into(),
            },
        };
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode(&a));
        stream.extend_from_slice(&encode(&b));
        let mut buf = stream.freeze();
        assert_eq!(decode(&mut buf).unwrap(), a);
        assert_eq!(decode(&mut buf).unwrap(), b);
        assert!(buf.is_empty());
    }

    #[test]
    fn guid_embeds_id() {
        let g = Guid::from_u64(0x1122_3344);
        assert_eq!(&g.0[8..12], b"uap!");
        assert_ne!(Guid::from_u64(1), Guid::from_u64(2));
    }
}
