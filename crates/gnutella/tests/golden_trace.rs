//! Golden-trace determinism: two same-seed Gnutella runs must serialize
//! byte-identical JSONL trace files. This is a much finer check than
//! comparing end-of-run reports — any divergence in event order, field
//! order, or float formatting shows up as a byte difference, and
//! `xtask trace diff` can then localize the first diverging event.

use uap_gnutella::config::GnutellaConfig;
use uap_gnutella::selection::NeighborSelection;
use uap_gnutella::sim::run_experiment_with;
use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

fn underlay(n_hosts: usize, seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let g = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        g,
        &PopulationSpec::leaf(n_hosts),
        UnderlayConfig::default(),
        &mut rng,
    )
}

/// Runs a same-configuration experiment, returning the serialized trace,
/// the rendered run report, and the underlay route-cache counters.
fn run_once(seed: u64) -> (Vec<u8>, String, (u64, u64)) {
    let cfg = GnutellaConfig {
        selection: NeighborSelection::Random,
        duration: SimTime::from_mins(5),
        ..Default::default()
    };
    let mut tracer = Tracer::buffered(TraceLevel::Debug);
    let (report, world) = run_experiment_with(underlay(80, 3), cfg, seed, &mut tracer);
    let mut out = Vec::new();
    tracer.write_jsonl(&mut out).expect("in-memory write");
    (
        out,
        format!("{report:?}"),
        world.underlay.route_cache_stats(),
    )
}

fn trace_bytes(seed: u64) -> Vec<u8> {
    run_once(seed).0
}

#[test]
fn same_seed_runs_produce_byte_identical_trace_files() {
    let a = trace_bytes(42);
    let b = trace_bytes(42);
    assert!(!a.is_empty(), "a debug-level run must emit trace events");
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

#[test]
fn different_seeds_diverge() {
    assert_ne!(trace_bytes(42), trace_bytes(43));
}

#[test]
fn same_seed_runs_produce_identical_reports_and_cache_counters() {
    let (_, report_a, cache_a) = run_once(42);
    let (_, report_b, cache_b) = run_once(42);
    assert_eq!(
        report_a, report_b,
        "same-seed run reports must be identical"
    );
    assert_eq!(
        cache_a, cache_b,
        "route-cache hit/miss counters must be deterministic"
    );
    let (hits, _misses) = cache_a;
    assert!(hits > 0, "a 5-minute run must exercise the route cache");
}

#[test]
fn trace_lines_parse_and_cover_expected_components() {
    let bytes = trace_bytes(42);
    let text = String::from_utf8(bytes).expect("utf-8 trace");
    let mut components = std::collections::BTreeSet::new();
    for line in text.lines() {
        let ev = uap_sim::trace::parse_jsonl_line(line).expect("every line parses");
        components.insert(ev.component);
    }
    assert!(
        components.contains("gnutella"),
        "components: {components:?}"
    );
    assert!(components.contains("net"), "components: {components:?}");
}
