//! Property-based tests for flood mechanics and content locality.

use proptest::prelude::*;
use uap_gnutella::content::ContentModel;
use uap_gnutella::overlay::{Overlay, Role};
use uap_net::{AsId, HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use uap_sim::SimRng;

fn underlay(n: usize, seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let g = TopologySpec::new(TopologyKind::Mesh {
        n: 6,
        extra_edge_prob: 0.4,
    })
    .build(&mut rng);
    let cfg = UnderlayConfig {
        routing: uap_net::RoutingMode::ShortestPath,
        ..Default::default()
    };
    Underlay::build(g, &PopulationSpec::uniform(n), cfg, &mut rng)
}

/// Builds a random overlay over `n` nodes with some leaves.
fn random_overlay(
    u: &Underlay,
    n: u32,
    edges: usize,
    leaf_every: u32,
    rng: &mut SimRng,
) -> Overlay {
    let mut o = Overlay::new(n as usize);
    for i in 0..n {
        o.set_online(HostId(i), true);
        if leaf_every > 0 && i % leaf_every == 1 {
            o.set_role(HostId(i), Role::Leaf);
        }
    }
    let mut guard = 0;
    while o.edge_count() < edges && guard < edges * 20 {
        guard += 1;
        let a = HostId(rng.below(n as u64) as u32);
        let b = HostId(rng.below(n as u64) as u32);
        if a != b {
            o.add_edge(u, a, b);
        }
    }
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Flood invariants for any overlay: hop bounds, distinct reached
    /// nodes, message count at least reached count, and latency monotone
    /// in BFS order within each branch.
    #[test]
    fn flood_invariants(seed in any::<u64>(), n in 4u32..60, ttl in 1u32..6) {
        let u = underlay(n as usize, seed);
        let mut rng = SimRng::new(seed ^ 1);
        let mut o = random_overlay(&u, n, (n as usize * 3) / 2, 4, &mut rng);
        let origin = HostId(rng.below(n as u64) as u32);
        let r = o.flood(origin, ttl);
        let mut seen = std::collections::HashSet::new();
        for x in &r.reached {
            prop_assert!(x.hops >= 1 && x.hops <= ttl, "hops {} out of (0,{ttl}]", x.hops);
            prop_assert!(x.host != origin);
            prop_assert!(seen.insert(x.host), "duplicate reach");
        }
        prop_assert!(r.messages >= r.reached.len() as u64);
        // Leaves never appear as forwarders: any node at hops == h > 1 must
        // have an ultrapeer neighbor at hops == h - 1.
        for x in &r.reached {
            if x.hops > 1 {
                let has_up_parent = r
                    .reached
                    .iter()
                    .any(|p| {
                        p.hops == x.hops - 1
                            && o.role(p.host) == Role::Ultrapeer
                            && o.has_edge(p.host, x.host)
                    })
                    || (x.hops == 1);
                prop_assert!(has_up_parent, "{:?} reached without ultrapeer parent", x.host);
            }
        }
    }

    /// TTL monotonicity: a larger TTL never reaches fewer nodes.
    #[test]
    fn flood_monotone_in_ttl(seed in any::<u64>(), n in 4u32..50) {
        let u = underlay(n as usize, seed);
        let mut rng = SimRng::new(seed ^ 2);
        let mut o = random_overlay(&u, n, n as usize * 2, 0, &mut rng);
        let origin = HostId(0);
        let mut prev = 0usize;
        for ttl in 1..6 {
            let got = o.flood(origin, ttl).reached.len();
            prop_assert!(got >= prev, "ttl {ttl}: {got} < {prev}");
            prev = got;
        }
    }

    /// Content model: interests always land in the catalogue, and full
    /// locality keeps them in the AS slice.
    #[test]
    fn content_interest_in_range(n_files in 10usize..2_000, n_ases in 1usize..30, seed in any::<u64>()) {
        prop_assume!(n_files >= n_ases);
        let m = ContentModel::new(n_files, n_ases, 0.9, 1.0);
        let mut rng = SimRng::new(seed);
        for a in 0..n_ases {
            let f = m.sample_interest(AsId(a as u16), &mut rng);
            prop_assert!((f.0 as usize) < n_files);
        }
    }

    /// Edges are symmetric and removal restores degree bookkeeping.
    #[test]
    fn overlay_edge_bookkeeping(seed in any::<u64>(), n in 2u32..40) {
        let u = underlay(n as usize, seed);
        let mut rng = SimRng::new(seed ^ 3);
        let mut o = Overlay::new(n as usize);
        for i in 0..n {
            o.set_online(HostId(i), true);
        }
        let mut inserted = Vec::new();
        for _ in 0..(n * 2) {
            let a = HostId(rng.below(n as u64) as u32);
            let b = HostId(rng.below(n as u64) as u32);
            if a != b && !o.has_edge(a, b) {
                o.add_edge(&u, a, b);
                inserted.push((a, b));
            }
        }
        prop_assert_eq!(o.edge_count(), inserted.len());
        let degree_sum: usize = (0..n).map(|i| o.degree(HostId(i))).sum();
        prop_assert_eq!(degree_sum, 2 * inserted.len());
        for &(a, b) in &inserted {
            prop_assert!(o.has_edge(b, a));
            o.remove_edge(a, b);
        }
        prop_assert_eq!(o.edge_count(), 0);
    }
}

mod wire_props {
    use proptest::prelude::*;
    use uap_gnutella::wire::{decode, encode, encoded_len, Descriptor, Guid, Payload};

    fn arb_payload() -> impl Strategy<Value = Payload> {
        prop_oneof![
            Just(Payload::Ping),
            (any::<u16>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
                |(port, ip, files, kilobytes)| Payload::Pong {
                    port,
                    ip,
                    files,
                    kilobytes
                }
            ),
            (any::<u16>(), "[a-zA-Z0-9 _.-]{0,40}")
                .prop_map(|(min_speed, search)| { Payload::Query { min_speed, search } }),
            (
                any::<u16>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                "[a-zA-Z0-9 _.-]{1,40}",
                any::<u64>()
            )
                .prop_map(
                    |(port, ip, speed, file_index, file_size, file_name, sid)| {
                        Payload::QueryHit {
                            port,
                            ip,
                            speed,
                            file_index,
                            file_size,
                            file_name,
                            servent_id: Guid::from_u64(sid),
                        }
                    }
                ),
        ]
    }

    proptest! {
        /// Any descriptor survives an encode/decode round trip, and the
        /// size predictor agrees with the encoder.
        #[test]
        fn wire_roundtrip(guid in any::<u64>(), ttl in 0u8..16, hops in 0u8..16, payload in arb_payload()) {
            let d = Descriptor {
                guid: Guid::from_u64(guid),
                ttl,
                hops,
                payload,
            };
            let enc = encode(&d);
            prop_assert_eq!(enc.len(), encoded_len(&d.payload));
            let mut buf = enc;
            let back = decode(&mut buf).unwrap();
            prop_assert!(buf.is_empty());
            prop_assert_eq!(back, d);
        }

        /// Decoding never panics on arbitrary bytes — it returns an error.
        #[test]
        fn decode_is_total(raw in prop::collection::vec(any::<u8>(), 0..200)) {
            let mut buf = bytes::Bytes::from(raw);
            let _ = decode(&mut buf); // must not panic
        }
    }
}
