//! CDN-provided locality information (§3.1), after Ono \[5\].
//!
//! "The actual CDN servers which are used for a certain time frame are
//! those which have the least load and shortest paths to the requesting
//! peer. This fact is exploited to infer locality information."
//!
//! [`SimulatedCdn`] places replica servers in selected ASes and redirects
//! each request to a replica with probability decreasing in AS-hop
//! distance, perturbed by load noise. [`OnoEstimator`] has each peer build
//! a *ratio map* (empirical redirection distribution) and scores pairwise
//! proximity as one minus the cosine similarity of the maps — peers that
//! the CDN sends to the same replicas are close, without the peers ever
//! measuring each other.

use crate::provider::ProximityEstimator;
use std::collections::BTreeMap;
use uap_net::{AsId, HostId, Underlay};
use uap_sim::SimRng;

/// A simulated content distribution network.
pub struct SimulatedCdn {
    /// ASes hosting a replica server.
    pub replica_ases: Vec<AsId>,
    /// Redirection steepness: weight ∝ (1 + as_hops)^(−gamma).
    pub gamma: f64,
    /// Relative load-noise amplitude on replica weights per request.
    pub load_noise: f64,
    redirections_served: u64,
}

impl SimulatedCdn {
    /// Deploys replicas in `k` ASes spread deterministically over the
    /// topology (every `n/k`-th AS), the way a CDN covers regions.
    pub fn deploy(underlay: &Underlay, k: usize) -> SimulatedCdn {
        let n = underlay.n_ases();
        let k = k.clamp(1, n);
        let replica_ases = (0..k).map(|i| AsId((i * n / k) as u16)).collect();
        SimulatedCdn {
            replica_ases,
            gamma: 2.0,
            load_noise: 0.3,
            redirections_served: 0,
        }
    }

    /// Serves one request from `h`: returns the replica index the CDN
    /// redirects to.
    pub fn redirect(&mut self, underlay: &Underlay, h: HostId, rng: &mut SimRng) -> usize {
        self.redirections_served += 1;
        let my_as = underlay.hosts.as_of(h);
        let weights: Vec<f64> = self
            .replica_ases
            .iter()
            .map(|&r| {
                let hops = underlay.routing.as_hops(my_as, r).unwrap_or(u32::MAX / 2) as f64;
                let proximity_w = (1.0 + hops).powf(-self.gamma);
                let noise = 1.0 + rng.f64_range(-self.load_noise, self.load_noise);
                proximity_w * noise.max(0.01)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Total redirections served.
    pub fn redirections_served(&self) -> u64 {
        self.redirections_served
    }
}

/// One peer's empirical redirection distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct RatioMap {
    /// Fraction of requests sent to each replica (sums to 1).
    pub ratios: Vec<f64>,
}

impl RatioMap {
    /// Cosine similarity with another map, in `[0, 1]`.
    pub fn cosine(&self, other: &RatioMap) -> f64 {
        let dot: f64 = self
            .ratios
            .iter()
            .zip(&other.ratios)
            .map(|(a, b)| a * b)
            .sum();
        let na: f64 = self.ratios.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = other.ratios.iter().map(|b| b * b).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }
}

/// The Ono-style proximity estimator: compares peers' CDN ratio maps.
pub struct OnoEstimator<'a> {
    underlay: &'a Underlay,
    cdn: SimulatedCdn,
    /// Requests each peer samples to build its ratio map.
    pub samples_per_peer: usize,
    maps: BTreeMap<HostId, RatioMap>,
    messages: u64,
}

impl<'a> OnoEstimator<'a> {
    /// Creates the estimator over a deployed CDN.
    pub fn new(underlay: &'a Underlay, cdn: SimulatedCdn, samples_per_peer: usize) -> Self {
        OnoEstimator {
            underlay,
            cdn,
            samples_per_peer,
            maps: BTreeMap::new(),
            messages: 0,
        }
    }

    /// The ratio map of `h`, sampling it on first use. Sampling costs one
    /// message per CDN request (the DNS lookup Ono piggybacks on).
    pub fn ratio_map(&mut self, h: HostId, rng: &mut SimRng) -> RatioMap {
        if let Some(m) = self.maps.get(&h) {
            return m.clone();
        }
        let mut counts = vec![0usize; self.cdn.replica_ases.len()];
        for _ in 0..self.samples_per_peer {
            let r = self.cdn.redirect(self.underlay, h, rng);
            counts[r] += 1;
            self.messages += 1;
        }
        let total = self.samples_per_peer.max(1) as f64;
        let map = RatioMap {
            ratios: counts.iter().map(|&c| c as f64 / total).collect(),
        };
        self.maps.insert(h, map.clone());
        map
    }
}

impl ProximityEstimator for OnoEstimator<'_> {
    fn proximity(&mut self, a: HostId, b: HostId, rng: &mut SimRng) -> f64 {
        let ma = self.ratio_map(a, rng);
        let mb = self.ratio_map(b, rng);
        // Exchanging ratio maps costs one message pair.
        self.messages += 2;
        1.0 - ma.cosine(&mb)
    }

    fn overhead_messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "cdn-ono"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(11);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 3,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.2,
            tier3_peering_prob: 0.2,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(200),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn redirections_favor_close_replicas() {
        let u = underlay();
        let mut cdn = SimulatedCdn::deploy(&u, 4);
        let mut rng = SimRng::new(12);
        let h = HostId(0);
        let my_as = u.hosts.as_of(h);
        let mut counts = vec![0usize; cdn.replica_ases.len()];
        for _ in 0..2_000 {
            counts[cdn.redirect(&u, h, &mut rng)] += 1;
        }
        // The replica with the fewest AS hops should get the most requests.
        let hops: Vec<u32> = cdn
            .replica_ases
            .iter()
            .map(|&r| u.routing.as_hops(my_as, r).unwrap())
            .collect();
        let closest = (0..hops.len()).min_by_key(|&i| hops[i]).unwrap();
        let busiest = (0..counts.len()).max_by_key(|&i| counts[i]).unwrap();
        assert_eq!(hops[closest], hops[busiest], "{hops:?} {counts:?}");
        assert_eq!(cdn.redirections_served(), 2_000);
    }

    #[test]
    fn cosine_properties() {
        let a = RatioMap {
            ratios: vec![0.5, 0.5, 0.0],
        };
        let b = RatioMap {
            ratios: vec![0.0, 0.0, 1.0],
        };
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&b), b.cosine(&a));
        let zero = RatioMap {
            ratios: vec![0.0, 0.0, 0.0],
        };
        assert_eq!(a.cosine(&zero), 0.0);
    }

    #[test]
    fn same_as_peers_look_similar() {
        let u = underlay();
        let cdn = SimulatedCdn::deploy(&u, 4);
        let mut ono = OnoEstimator::new(&u, cdn, 100);
        let mut rng = SimRng::new(13);
        // Find two same-AS peers and one far peer.
        let a = HostId(0);
        let my_as = u.hosts.as_of(a);
        let same = u
            .hosts
            .in_as(my_as)
            .iter()
            .copied()
            .find(|&h| h != a)
            .expect("need same-AS peer");
        let far = u
            .hosts
            .ids()
            .find(|&h| {
                u.routing
                    .as_hops(my_as, u.hosts.as_of(h))
                    .map(|d| d >= 3)
                    .unwrap_or(false)
            })
            .expect("need far peer");
        let p_same = ono.proximity(a, same, &mut rng);
        let p_far = ono.proximity(a, far, &mut rng);
        assert!(
            p_same < p_far,
            "same-AS dissimilarity {p_same} not < far {p_far}"
        );
        assert!(ono.overhead_messages() > 0);
    }

    #[test]
    fn ratio_maps_are_cached() {
        let u = underlay();
        let cdn = SimulatedCdn::deploy(&u, 3);
        let mut ono = OnoEstimator::new(&u, cdn, 50);
        let mut rng = SimRng::new(14);
        let m1 = ono.ratio_map(HostId(1), &mut rng);
        let msgs = ono.overhead_messages();
        let m2 = ono.ratio_map(HostId(1), &mut rng);
        assert_eq!(m1, m2);
        assert_eq!(ono.overhead_messages(), msgs);
    }

    #[test]
    fn deploy_clamps_replica_count() {
        let u = underlay();
        let cdn = SimulatedCdn::deploy(&u, 10_000);
        assert_eq!(cdn.replica_ases.len(), u.n_ases());
        let cdn1 = SimulatedCdn::deploy(&u, 0);
        assert_eq!(cdn1.replica_ases.len(), 1);
    }
}
