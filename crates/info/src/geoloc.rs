//! Geolocation services (§3.3).
//!
//! Three sources, with very different accuracy, exactly as the paper
//! classifies them:
//!
//! * **GPS** — "inferring the geolocation from a satellite positioning
//!   system": the host's true position, with metre-scale noise;
//! * **IP-to-location mapping** — "less accurate and thus gives only a
//!   rough geographical area in which a peer is (most probably) located":
//!   we return a uniformly random point inside the ISP's service disc;
//! * **ISP-provided** — "each ISP knows the addresses and exact locations
//!   of all of its customers": exact, but the lookups are counted
//!   separately since they require ISP cooperation (a §6 challenge).

use crate::provider::GeoLocator;
use uap_net::{GeoPoint, HostId, Underlay};
use uap_sim::SimRng;

/// Which geolocation technique a [`GeoService`] models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeoSource {
    /// Satellite positioning at the host (GPS/Galileo/GLONASS).
    Gps,
    /// Commercial/free IP-to-location database.
    IpMapping,
    /// The ISP's customer records.
    IspProvided,
}

/// A geolocation provider over the simulated underlay.
pub struct GeoService<'a> {
    underlay: &'a Underlay,
    source: GeoSource,
    /// GPS standard error in kilometres (defaults to 10 m).
    pub gps_sigma_km: f64,
    queries: u64,
}

impl<'a> GeoService<'a> {
    /// Creates a service backed by the given source.
    pub fn new(underlay: &'a Underlay, source: GeoSource) -> Self {
        GeoService {
            underlay,
            source,
            gps_sigma_km: 0.01,
            queries: 0,
        }
    }

    /// The source this service models.
    pub fn source(&self) -> GeoSource {
        self.source
    }

    /// Worst-case error radius (km) a consumer should plan for.
    pub fn expected_error_km(&self) -> f64 {
        match self.source {
            GeoSource::Gps => self.gps_sigma_km * 3.0,
            GeoSource::IspProvided => 0.0,
            GeoSource::IpMapping => {
                // Bounded by the largest service radius in the topology.
                self.underlay
                    .graph
                    .nodes
                    .iter()
                    .map(|n| n.service_radius_km * 2.0)
                    .fold(0.0, f64::max)
            }
        }
    }
}

impl GeoLocator for GeoService<'_> {
    fn locate(&mut self, h: HostId, rng: &mut SimRng) -> GeoPoint {
        self.queries += 1;
        let host = self.underlay.host(h);
        match self.source {
            GeoSource::IspProvided => host.geo,
            GeoSource::Gps => GeoPoint::new(
                host.geo.x_km + rng.normal(0.0, self.gps_sigma_km),
                host.geo.y_km + rng.normal(0.0, self.gps_sigma_km),
            ),
            GeoSource::IpMapping => {
                // Only the AS is known: report a random point in its
                // service area.
                let node = &self.underlay.graph.nodes[host.asn.idx()];
                let theta = rng.f64_range(0.0, std::f64::consts::TAU);
                let r = node.service_radius_km * rng.f64().sqrt();
                GeoPoint::new(
                    node.geo_center.x_km + r * theta.cos(),
                    node.geo_center.y_km + r * theta.sin(),
                )
            }
        }
    }

    fn queries(&self) -> u64 {
        self.queries
    }

    fn name(&self) -> &'static str {
        match self.source {
            GeoSource::Gps => "gps",
            GeoSource::IpMapping => "ip2location",
            GeoSource::IspProvided => "isp-provided",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(31);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.0,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(100),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn isp_provided_is_exact() {
        let u = underlay();
        let mut svc = GeoService::new(&u, GeoSource::IspProvided);
        let mut rng = SimRng::new(32);
        for h in u.hosts.ids().take(20) {
            assert_eq!(svc.locate(h, &mut rng), u.host(h).geo);
        }
        assert_eq!(svc.queries(), 20);
        assert_eq!(svc.expected_error_km(), 0.0);
    }

    #[test]
    fn gps_is_metre_accurate() {
        let u = underlay();
        let mut svc = GeoService::new(&u, GeoSource::Gps);
        let mut rng = SimRng::new(33);
        for h in u.hosts.ids().take(50) {
            let p = svc.locate(h, &mut rng);
            let err = p.distance_km(&u.host(h).geo);
            assert!(err < 0.1, "gps error {err} km");
        }
    }

    #[test]
    fn ip_mapping_stays_in_service_area_but_is_rough() {
        let u = underlay();
        let mut svc = GeoService::new(&u, GeoSource::IpMapping);
        let mut rng = SimRng::new(34);
        let mut total_err = 0.0;
        for h in u.hosts.ids() {
            let p = svc.locate(h, &mut rng);
            let node = &u.graph.nodes[u.host(h).asn.idx()];
            assert!(p.distance_km(&node.geo_center) <= node.service_radius_km + 1e-9);
            total_err += p.distance_km(&u.host(h).geo);
        }
        let mean_err = total_err / u.n_hosts() as f64;
        // Rough: tens of km, far beyond GPS error.
        assert!(
            mean_err > 1.0,
            "mean error {mean_err} km suspiciously small"
        );
        assert!(mean_err <= svc.expected_error_km());
    }

    #[test]
    fn names_distinguish_sources() {
        let u = underlay();
        assert_eq!(GeoService::new(&u, GeoSource::Gps).name(), "gps");
        assert_eq!(
            GeoService::new(&u, GeoSource::IpMapping).name(),
            "ip2location"
        );
        assert_eq!(
            GeoService::new(&u, GeoSource::IspProvided).name(),
            "isp-provided"
        );
    }
}
