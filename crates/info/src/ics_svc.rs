//! Beacon-based coordinate service (§3.2, Figure 4), after Lim et al. \[20\].
//!
//! Wires the [`uap_coords::IcsSystem`] to a simulated underlay:
//!
//! * beacon hosts are chosen spread across ASes (one per AS, round-robin);
//! * beacons measure their full RTT matrix (step S1);
//! * the administrative node builds the transformation matrix (S2–S5);
//! * every host embeds itself with one RTT probe per beacon (H1–H3).
//!
//! Message accounting: `m·(m−1)` probes for the beacon matrix plus `2·m`
//! messages per embedded host — compare with `n²` for explicit all-pairs
//! measurement.

use crate::provider::ProximityEstimator;
use uap_coords::{EmbeddingQuality, IcsSystem, Matrix};
use uap_net::{HostId, Underlay};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// The deployed coordinate system with every host embedded.
pub struct IcsService {
    system: IcsSystem,
    beacons: Vec<HostId>,
    coords: Vec<Vec<f64>>,
    messages: u64,
}

impl IcsService {
    /// Picks `n_beacons` hosts spread over the ASes, deterministically:
    /// round-robin over ASes in id order, first host of each.
    pub fn pick_beacons(underlay: &Underlay, n_beacons: usize) -> Vec<HostId> {
        let mut beacons = Vec::new();
        let mut offset = 0usize;
        while beacons.len() < n_beacons {
            let mut progressed = false;
            for a in 0..underlay.n_ases() {
                let hosts = underlay.hosts.in_as(uap_net::AsId(a as u16));
                if let Some(&h) = hosts.get(offset) {
                    beacons.push(h);
                    progressed = true;
                    if beacons.len() == n_beacons {
                        break;
                    }
                }
            }
            if !progressed {
                break; // fewer hosts than requested beacons
            }
            offset += 1;
        }
        beacons
    }

    /// Builds the system: measures the beacon matrix, constructs the
    /// transform with `dims` dimensions, and embeds every host.
    pub fn build(
        underlay: &Underlay,
        n_beacons: usize,
        dims: usize,
        rng: &mut SimRng,
    ) -> IcsService {
        let beacons = Self::pick_beacons(underlay, n_beacons);
        let m = beacons.len();
        assert!(m >= 2, "need at least two beacons");
        let mut messages = 0u64;
        // S1: beacons measure RTTs to each other (in milliseconds — the
        // embedding space's natural unit).
        let mut d = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                let rtt = underlay
                    .measured_rtt_us(beacons[i], beacons[j], rng)
                    .expect("beacons mutually reachable") as f64 // lint:allow(expect)
                    / 1_000.0;
                d[(i, j)] = rtt;
                messages += 1;
            }
        }
        // Symmetrize: measurement jitter can differ per direction.
        for i in 0..m {
            for j in (i + 1)..m {
                let avg = (d[(i, j)] + d[(j, i)]) / 2.0;
                d[(i, j)] = avg;
                d[(j, i)] = avg;
            }
        }
        let system = IcsSystem::build(&d, dims.min(m));
        // H2/H3: every host measures to all beacons and embeds.
        let coords: Vec<Vec<f64>> = underlay
            .hosts
            .ids()
            .map(|h| {
                let dists: Vec<f64> = beacons
                    .iter()
                    .map(|&b| {
                        if b == h {
                            return 0.0;
                        }
                        messages += 2;
                        underlay.measured_rtt_us(h, b, rng).unwrap_or(u64::MAX / 2) as f64 / 1_000.0
                    })
                    .collect();
                system.host_coord(&dists)
            })
            .collect();
        IcsService {
            system,
            beacons,
            coords,
            messages,
        }
    }

    /// Like [`IcsService::build`], but emits one `info`/`ics.build` trace
    /// event (Debug level) summarizing the collection cost: beacon count,
    /// embedding dimensions, and total probe messages spent.
    pub fn build_traced(
        underlay: &Underlay,
        n_beacons: usize,
        dims: usize,
        rng: &mut SimRng,
        now: SimTime,
        tracer: &mut Tracer,
    ) -> IcsService {
        let svc = Self::build(underlay, n_beacons, dims, rng);
        tracer.emit(now, "info", TraceLevel::Debug, "ics.build", |f| {
            f.u64("beacons", svc.beacons.len() as u64)
                .u64("dims", dims as u64)
                .u64("messages", svc.messages);
        });
        svc
    }

    /// The beacon hosts.
    pub fn beacons(&self) -> &[HostId] {
        &self.beacons
    }

    /// The underlying coordinate system.
    pub fn system(&self) -> &IcsSystem {
        &self.system
    }

    /// A host's embedded coordinate.
    pub fn coord(&self, h: HostId) -> &[f64] {
        &self.coords[h.idx()]
    }

    /// Predicted RTT between two hosts in microseconds.
    pub fn predict_us(&self, a: HostId, b: HostId) -> f64 {
        self.system
            .predict(&self.coords[a.idx()], &self.coords[b.idx()])
            * 1_000.0
    }

    /// Evaluates prediction accuracy on `n_pairs` random pairs.
    pub fn quality(
        &self,
        underlay: &Underlay,
        n_pairs: usize,
        rng: &mut SimRng,
    ) -> EmbeddingQuality {
        let n = self.coords.len();
        let pairs: Vec<(f64, f64)> = (0..n_pairs)
            .filter_map(|_| {
                let a = HostId(rng.index(n) as u32);
                let b = HostId(rng.index(n) as u32);
                if a == b {
                    return None;
                }
                let actual = underlay.rtt_us(a, b)? as f64;
                Some((self.predict_us(a, b), actual))
            })
            .collect();
        EmbeddingQuality::evaluate(&pairs)
    }
}

impl ProximityEstimator for IcsService {
    fn proximity(&mut self, a: HostId, b: HostId, _rng: &mut SimRng) -> f64 {
        self.predict_us(a, b)
    }

    fn overhead_messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "ics-landmark"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(61);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(60),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn beacons_spread_over_ases() {
        let u = underlay();
        let beacons = IcsService::pick_beacons(&u, 6);
        assert_eq!(beacons.len(), 6);
        let ases: std::collections::HashSet<_> =
            beacons.iter().map(|&b| u.hosts.as_of(b)).collect();
        assert!(ases.len() >= 4, "beacons clumped: {ases:?}");
    }

    #[test]
    fn beacon_request_caps_at_population() {
        let u = underlay();
        let beacons = IcsService::pick_beacons(&u, 10_000);
        assert_eq!(beacons.len(), u.n_hosts());
    }

    #[test]
    fn predictions_correlate_with_truth() {
        let u = underlay();
        let mut rng = SimRng::new(62);
        let svc = IcsService::build(&u, 8, 4, &mut rng);
        let q = svc.quality(&u, 400, &mut rng);
        assert!(q.n > 300);
        assert!(
            q.median_rel_err < 0.5,
            "median rel err {}",
            q.median_rel_err
        );
    }

    #[test]
    fn overhead_is_linear_not_quadratic_in_hosts() {
        let u = underlay();
        let mut rng = SimRng::new(63);
        let m = 6u64;
        let svc = IcsService::build(&u, m as usize, 3, &mut rng);
        let n = u.n_hosts() as u64;
        // m(m-1) beacon probes + ≤ 2m per host.
        let expected_max = m * (m - 1) + n * 2 * m;
        assert!(svc.overhead_messages() <= expected_max);
        assert!(svc.overhead_messages() as f64 > (n as f64) * 2.0 * (m as f64 - 1.0));
        // Far below the n(n-1) cost of explicit all-pairs measurement.
        assert!(svc.overhead_messages() < n * (n - 1));
    }

    #[test]
    fn beacon_self_distance_is_zero() {
        let u = underlay();
        let mut rng = SimRng::new(64);
        let svc = IcsService::build(&u, 5, 3, &mut rng);
        let b0 = svc.beacons()[0];
        // A beacon's own embedding should sit near its beacon coordinate.
        let own = svc.coord(b0);
        let bc = svc.system().beacon_coord(0);
        let d = uap_coords::matrix::l2(own, bc);
        // Not exact (jitterless here, but the embedding is lossy):
        // must still be far smaller than typical inter-beacon distances.
        let spread =
            uap_coords::matrix::l2(svc.system().beacon_coord(0), svc.system().beacon_coord(1));
        assert!(d < spread, "self-embedding {d} vs spread {spread}");
    }
}
