//! IP-to-ISP mapping service (§3.1).
//!
//! "The ISP of a certain peer can be discovered simply by using its IP.
//! Since every ISP has a set of well-known IP addresses, mapping every peer
//! to an ISP is straightforward." The commercial services the paper cites
//! (\[13\]\[14\]\[15\]) are databases keyed by prefix; ours is built from the
//! synthetic prefixes the host population allocates, with a configurable
//! accuracy to model stale or mis-registered entries.

use crate::provider::IspLocator;
use std::collections::BTreeMap;
use uap_net::{AsId, HostId, Underlay};
use uap_sim::SimRng;

/// A prefix-keyed ISP lookup database.
pub struct Ip2IspService {
    /// /16 prefix (upper 16 bits of the IPv4 address) → AS.
    prefix_table: BTreeMap<u16, AsId>,
    /// Host IP cache so lookups don't need the underlay.
    host_ips: Vec<u32>,
    /// Probability a lookup returns the correct AS; misses return a
    /// deterministic wrong neighbor entry.
    accuracy: f64,
    n_ases: u16,
    queries: u64,
    rng: SimRng,
}

impl Ip2IspService {
    /// Builds the database from an underlay's allocated prefixes. `accuracy`
    /// of 1.0 models an authoritative registry; lower values model the
    /// "less accurate" public mapping databases.
    pub fn build(underlay: &Underlay, accuracy: f64, rng: SimRng) -> Ip2IspService {
        let mut prefix_table = BTreeMap::new();
        let mut host_ips = vec![0u32; underlay.n_hosts()];
        for h in underlay.hosts.ids() {
            let host = underlay.host(h);
            prefix_table.insert((host.ip >> 16) as u16, host.asn);
            host_ips[h.idx()] = host.ip;
        }
        Ip2IspService {
            prefix_table,
            host_ips,
            accuracy: accuracy.clamp(0.0, 1.0),
            n_ases: underlay.n_ases() as u16,
            queries: 0,
            rng,
        }
    }

    /// Looks up an arbitrary IP address.
    pub fn lookup_ip(&mut self, ip: u32) -> Option<AsId> {
        self.queries += 1;
        let truth = self.prefix_table.get(&((ip >> 16) as u16)).copied()?;
        if self.accuracy >= 1.0 || self.rng.chance(self.accuracy) {
            Some(truth)
        } else {
            // A stale database points at some other AS.
            Some(AsId(
                (truth.0 + 1 + self.rng.below(self.n_ases.max(2) as u64 - 1) as u16) % self.n_ases,
            ))
        }
    }
}

impl IspLocator for Ip2IspService {
    fn isp_of(&mut self, h: HostId) -> AsId {
        let ip = self.host_ips[h.idx()];
        self.lookup_ip(ip).expect("host prefixes are registered") // lint:allow(expect)
    }

    fn queries(&self) -> u64 {
        self.queries
    }

    fn name(&self) -> &'static str {
        "ip2isp-mapping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(1);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.0,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(100),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn perfect_accuracy_returns_truth() {
        let u = underlay();
        let mut svc = Ip2IspService::build(&u, 1.0, SimRng::new(2));
        for h in u.hosts.ids() {
            assert_eq!(svc.isp_of(h), u.hosts.as_of(h));
        }
        assert_eq!(svc.queries(), 100);
    }

    #[test]
    fn degraded_accuracy_misclassifies_sometimes() {
        let u = underlay();
        let mut svc = Ip2IspService::build(&u, 0.7, SimRng::new(3));
        let wrong = u
            .hosts
            .ids()
            .filter(|&h| svc.isp_of(h) != u.hosts.as_of(h))
            .count();
        // ~30 of 100 expected; generous bounds.
        assert!((10..=50).contains(&wrong), "wrong = {wrong}");
        // Misses still return a valid AS id.
        let mut svc0 = Ip2IspService::build(&u, 0.0, SimRng::new(4));
        for h in u.hosts.ids() {
            assert!(svc0.isp_of(h).idx() < u.n_ases());
            assert_ne!(svc0.isp_of(h), u.hosts.as_of(h));
        }
    }

    #[test]
    fn unknown_prefix_is_none() {
        let u = underlay();
        let mut svc = Ip2IspService::build(&u, 1.0, SimRng::new(5));
        assert_eq!(svc.lookup_ip(0xC0A8_0001), None); // 192.168.0.1
    }
}
