//! # uap-info — collection of underlay information
//!
//! Implements the paper's Figure 3 taxonomy, one module per leaf:
//!
//! | Underlay information | Technique | Module |
//! |---|---|---|
//! | ISP-location | IP-to-ISP mapping services | [`ip2isp`] |
//! | ISP-location | ISP component in network (oracle) | [`oracle`] |
//! | ISP-location | ISP component in network (P4P iTracker) | [`p4p`] |
//! | ISP-location | CDN-provided information (Ono) | [`cdn`] |
//! | Latency | Explicit measurements (ping) | [`ping`] |
//! | Latency | Prediction: Vivaldi | [`vivaldi_svc`] |
//! | Latency | Prediction: landmark/ICS | [`ics_svc`] |
//! | Geolocation | GPS | [`geoloc`] |
//! | Geolocation | IP-to-location mapping | [`geoloc`] |
//! | Geolocation | ISP-provided | [`geoloc`] |
//! | Peer resources | Information management overlay | [`skyeye`] |
//!
//! Every collector counts the messages it costs — the §5.4 open issue
//! ("a general study about the introduced overhead due to underlay
//! awareness") is experiment E12, and it needs honest accounting.
//!
//! The [`provider`] module defines the trait vocabulary the usage layer
//! (`uap-core`) consumes, decoupling *how* information is collected from
//! *how* the overlay uses it — the "general architecture for underlay
//! awareness" the paper calls for in its conclusions.

#![forbid(unsafe_code)]

pub mod cdn;
pub mod geoloc;
pub mod ics_svc;
pub mod ip2isp;
pub mod oracle;
pub mod p4p;
pub mod ping;
pub mod provider;
pub mod skyeye;
pub mod vivaldi_svc;

pub use cdn::{OnoEstimator, SimulatedCdn};
pub use geoloc::{GeoService, GeoSource};
pub use ics_svc::IcsService;
pub use ip2isp::Ip2IspService;
pub use oracle::Oracle;
pub use p4p::{P4pEstimator, P4pService, PdistanceWeights};
pub use ping::ExplicitPinger;
pub use provider::{GeoLocator, IspLocator, ProximityEstimator, ResourceDirectory};
pub use skyeye::{ResourceReport, SkyEyeTree};
pub use vivaldi_svc::VivaldiService;
