//! The ISP oracle (§3.1, "ISP component in network"; §4).
//!
//! After Aggarwal, Feldmann and Scheideler \[1\]: "The oracle is queried for
//! locality information about the peers. Mainly, it just considers
//! ISP-location-based ordering of peers to avoid inter-AS traffic. […]
//! When it gets a list of IP addresses from a node, it ranks the list
//! according to AS hops distance. Hence, the Gnutella node joins another
//! node within its AS if such a node is present in its Hostcache, else it
//! joins a node from the nearest AS."
//!
//! The oracle lives at the ISP, so it ranks with *ground-truth* routing
//! tables — that is the whole point of the technique.

use uap_net::{HostId, Underlay};
use uap_sim::{SimTime, TraceLevel, Tracer};

/// The ISP-side ranking component.
pub struct Oracle {
    queries: u64,
    ranked_entries: u64,
    /// Maximum candidate-list length the oracle accepts per query; the
    /// reprinted study evaluates "list size 100" and "list size 1000".
    pub max_list: usize,
    /// Reusable scoring scratch so per-query ranking allocates nothing.
    scored: Vec<(u32, usize, HostId)>,
}

impl Oracle {
    /// Creates an oracle accepting candidate lists up to `max_list` long.
    pub fn new(max_list: usize) -> Oracle {
        Oracle {
            queries: 0,
            ranked_entries: 0,
            max_list,
            scored: Vec::new(),
        }
    }

    /// Ranks `candidates` for `querier` by AS-hop distance (same AS first),
    /// truncating the input to `max_list` entries first — exactly the
    /// oracle call of \[1\]. Unreachable candidates sort last. Ties keep the
    /// caller's order (the oracle is not a load balancer).
    pub fn rank(
        &mut self,
        underlay: &Underlay,
        querier: HostId,
        candidates: &[HostId],
    ) -> Vec<HostId> {
        let mut out = candidates.to_vec();
        self.rank_in_place(underlay, querier, &mut out);
        out
    }

    /// Like [`Oracle::rank`], but reorders (and truncates) `list` in
    /// place — the per-join selection path hands the oracle its reused
    /// candidate buffer instead of allocating a response.
    pub fn rank_in_place(&mut self, underlay: &Underlay, querier: HostId, list: &mut Vec<HostId>) {
        self.queries += 1;
        let take = list.len().min(self.max_list);
        self.ranked_entries += take as u64;
        list.truncate(take);
        let scored = &mut self.scored;
        scored.clear();
        scored.extend(list.iter().enumerate().map(|(pos, &c)| {
            let hops = underlay.as_hops(querier, c).unwrap_or(u32::MAX);
            (hops, pos, c)
        }));
        scored.sort_by_key(|&(hops, pos, _)| (hops, pos));
        list.clear();
        list.extend(scored.iter().map(|&(_, _, c)| c));
    }

    /// Like [`Oracle::rank`], but emits one `info`/`oracle.rank` trace
    /// event (Debug level) recording the querier, list length and the
    /// AS-hop distance of the winning candidate — the per-call collection
    /// cost E15 accounts.
    pub fn rank_traced(
        &mut self,
        underlay: &Underlay,
        querier: HostId,
        candidates: &[HostId],
        now: SimTime,
        tracer: &mut Tracer,
    ) -> Vec<HostId> {
        let ranked = self.rank(underlay, querier, candidates);
        if tracer.is_enabled("info", TraceLevel::Debug) {
            let best_hops = ranked
                .first()
                .and_then(|&b| underlay.as_hops(querier, b))
                .unwrap_or(u32::MAX);
            tracer.emit(now, "info", TraceLevel::Debug, "oracle.rank", |f| {
                f.u64("querier", querier.0 as u64)
                    .u64("list", candidates.len().min(self.max_list) as u64)
                    .u64("best_as_hops", best_hops as u64);
            });
        }
        ranked
    }

    /// The single best candidate, if any. Equivalent to the head of
    /// [`Oracle::rank`] (same counters, same tie-break) without building
    /// the ranked list — the query hot path only wants the winner.
    pub fn best(
        &mut self,
        underlay: &Underlay,
        querier: HostId,
        candidates: &[HostId],
    ) -> Option<HostId> {
        self.queries += 1;
        let take = candidates.len().min(self.max_list);
        self.ranked_entries += take as u64;
        candidates[..take]
            .iter()
            .enumerate()
            .map(|(pos, &c)| (underlay.as_hops(querier, c).unwrap_or(u32::MAX), pos, c))
            .min_by_key(|&(hops, pos, _)| (hops, pos))
            .map(|(_, _, c)| c)
    }

    /// Number of oracle queries served.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Total candidate entries ranked (the oracle's workload measure).
    pub fn ranked_entries(&self) -> u64 {
        self.ranked_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
    use uap_sim::SimRng;

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(7);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(300),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn same_as_candidates_rank_first() {
        let u = underlay();
        let querier = HostId(0);
        let my_as = u.hosts.as_of(querier);
        // Build a candidate list containing at least one same-AS host.
        let same: Vec<HostId> = u
            .hosts
            .in_as(my_as)
            .iter()
            .copied()
            .filter(|&h| h != querier)
            .take(2)
            .collect();
        assert!(!same.is_empty(), "fixture needs a same-AS peer");
        let mut candidates: Vec<HostId> = u
            .hosts
            .ids()
            .filter(|&h| u.hosts.as_of(h) != my_as)
            .take(20)
            .collect();
        candidates.extend(&same);
        let mut oracle = Oracle::new(1000);
        let ranked = oracle.rank(&u, querier, &candidates);
        assert_eq!(ranked.len(), candidates.len());
        for (i, &h) in ranked.iter().take(same.len()).enumerate() {
            assert!(
                u.same_as(querier, h),
                "rank {i} is {h} from {}",
                u.hosts.as_of(h)
            );
        }
    }

    #[test]
    fn ranking_is_monotone_in_as_hops() {
        let u = underlay();
        let querier = HostId(5);
        let candidates: Vec<HostId> = u.hosts.ids().filter(|&h| h != querier).collect();
        let mut oracle = Oracle::new(usize::MAX);
        let ranked = oracle.rank(&u, querier, &candidates);
        let hops: Vec<u32> = ranked
            .iter()
            .map(|&h| u.as_hops(querier, h).unwrap_or(u32::MAX))
            .collect();
        for w in hops.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn list_size_cap_applies() {
        let u = underlay();
        let candidates: Vec<HostId> = u.hosts.ids().take(250).collect();
        let mut oracle = Oracle::new(100);
        let ranked = oracle.rank(&u, HostId(299), &candidates);
        assert_eq!(ranked.len(), 100);
        assert_eq!(oracle.ranked_entries(), 100);
        assert_eq!(oracle.queries(), 1);
    }

    #[test]
    fn ties_preserve_caller_order() {
        let u = underlay();
        let querier = HostId(0);
        let my_as = u.hosts.as_of(querier);
        let same: Vec<HostId> = u
            .hosts
            .in_as(my_as)
            .iter()
            .copied()
            .filter(|&h| h != querier)
            .collect();
        if same.len() >= 2 {
            let mut oracle = Oracle::new(1000);
            let ranked = oracle.rank(&u, querier, &same);
            assert_eq!(ranked, same);
        }
    }

    #[test]
    fn best_returns_first() {
        let u = underlay();
        let mut oracle = Oracle::new(1000);
        let candidates: Vec<HostId> = u.hosts.ids().take(10).collect();
        let best = oracle.best(&u, HostId(50), &candidates).unwrap();
        let ranked = oracle.rank(&u, HostId(50), &candidates);
        assert_eq!(best, ranked[0]);
        assert!(oracle.best(&u, HostId(50), &[]).is_none());
    }
}
