//! P4P — "explicit communications for cooperative control between P2P and
//! network providers" (Xie et al. \[29\]), the second "ISP component in
//! network" of Figure 3.
//!
//! Where the oracle ranks each candidate list on demand, P4P's *iTracker*
//! publishes a static map of **p-distances** between network partitions
//! (here: ASes). Applications fetch the map for their own partition once,
//! cache it, and optimize locally — far fewer provider queries, coarser
//! information, and a staleness exposure the §6 mobility challenge
//! quantifies.
//!
//! The p-distance encodes the provider's *costs*, not latency: an
//! intra-AS hop is free, a settlement-free peering link cheap, a billed
//! transit link expensive.

use crate::provider::ProximityEstimator;
use std::collections::BTreeMap;
use uap_net::{AsId, HostId, LinkKind, Underlay};
use uap_sim::SimRng;

/// Link weights used to derive p-distances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdistanceWeights {
    /// Cost of crossing one peering link.
    pub peering: f64,
    /// Cost of crossing one transit link (billed — keep it high).
    pub transit: f64,
}

impl Default for PdistanceWeights {
    fn default() -> Self {
        PdistanceWeights {
            peering: 1.0,
            transit: 4.0,
        }
    }
}

/// The provider-side service: a full p-distance matrix plus per-client
/// map distribution with caching.
pub struct P4pService {
    pdistance: Vec<Vec<f64>>,
    n_ases: usize,
    map_fetches: u64,
    cached_maps: BTreeMap<AsId, Vec<f64>>,
}

impl P4pService {
    /// Builds the matrix by weighted shortest path over the AS graph.
    pub fn build(underlay: &Underlay, weights: PdistanceWeights) -> P4pService {
        let g = &underlay.graph;
        let n = g.len();
        let mut pdistance = vec![vec![f64::INFINITY; n]; n];
        // Dijkstra from every source over the provider's cost weights
        // (plain weighted paths — the provider prices links, policy
        // routing is an overlay concern).
        for src in 0..n {
            let dist = &mut pdistance[src];
            dist[src] = 0.0;
            let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u16)>> =
                std::collections::BinaryHeap::new();
            // Fixed-point costs (micro-units) keep the heap ordered without
            // float comparators.
            let to_fp = |c: f64| (c * 1e6) as u64;
            heap.push(std::cmp::Reverse((0, src as u16)));
            while let Some(std::cmp::Reverse((d, x))) = heap.pop() {
                let xd = to_fp(dist[x as usize]);
                if d > xd {
                    continue;
                }
                for &li in g.incident(AsId(x)) {
                    let link = &g.links[li as usize];
                    let y = link.other(AsId(x)).expect("incident").idx(); // lint:allow(expect)
                    let w = match link.kind {
                        LinkKind::Peering => weights.peering,
                        LinkKind::Transit => weights.transit,
                    };
                    let nd = dist[x as usize] + w;
                    if nd < dist[y] {
                        dist[y] = nd;
                        heap.push(std::cmp::Reverse((to_fp(nd), y as u16)));
                    }
                }
            }
        }
        P4pService {
            pdistance,
            n_ases: n,
            map_fetches: 0,
            cached_maps: BTreeMap::new(),
        }
    }

    /// Number of ASes (partitions).
    pub fn n_ases(&self) -> usize {
        self.n_ases
    }

    /// Provider-side ground truth (for validation/tests).
    pub fn pdistance(&self, a: AsId, b: AsId) -> f64 {
        self.pdistance[a.idx()][b.idx()]
    }

    /// The application-side map fetch: the p-distance row for the caller's
    /// partition. First fetch per partition costs one provider round trip;
    /// later calls are served from the application's cache.
    pub fn fetch_map(&mut self, my_as: AsId) -> &[f64] {
        if !self.cached_maps.contains_key(&my_as) {
            self.map_fetches += 1;
            self.cached_maps
                .insert(my_as, self.pdistance[my_as.idx()].clone());
        }
        &self.cached_maps[&my_as]
    }

    /// Provider round trips performed so far.
    pub fn map_fetches(&self) -> u64 {
        self.map_fetches
    }
}

/// Application-side estimator: proximity of two hosts is the p-distance
/// between their partitions (using the *cached* map of the first host's
/// partition).
pub struct P4pEstimator<'a> {
    underlay: &'a Underlay,
    service: P4pService,
}

impl<'a> P4pEstimator<'a> {
    /// Wraps a built service.
    pub fn new(underlay: &'a Underlay, service: P4pService) -> Self {
        P4pEstimator { underlay, service }
    }

    /// Mutable access to the underlying service (map-fetch accounting).
    pub fn service(&self) -> &P4pService {
        &self.service
    }
}

impl ProximityEstimator for P4pEstimator<'_> {
    fn proximity(&mut self, a: HostId, b: HostId, _rng: &mut SimRng) -> f64 {
        let a_as = self.underlay.hosts.as_of(a);
        let b_as = self.underlay.hosts.as_of(b);
        let map = self.service.fetch_map(a_as);
        map[b_as.idx()]
    }

    fn overhead_messages(&self) -> u64 {
        // One request + one map reply per distinct partition.
        2 * self.service.map_fetches()
    }

    fn name(&self) -> &'static str {
        "p4p-itracker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(121);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(150),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn pdistance_metric_properties() {
        let u = underlay();
        let svc = P4pService::build(&u, PdistanceWeights::default());
        let n = svc.n_ases();
        for a in 0..n {
            assert_eq!(svc.pdistance(AsId(a as u16), AsId(a as u16)), 0.0);
            for b in 0..n {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                assert!(svc.pdistance(a, b).is_finite(), "unreachable {a}->{b}");
                assert_eq!(svc.pdistance(a, b), svc.pdistance(b, a));
            }
        }
    }

    #[test]
    fn peering_paths_are_cheaper_than_transit_paths() {
        let u = underlay();
        let svc = P4pService::build(&u, PdistanceWeights::default());
        // Direct peering neighbors must be cheaper than anything that needs
        // a transit link.
        let g = &u.graph;
        for l in &g.links {
            if l.kind == LinkKind::Peering {
                assert!(svc.pdistance(l.a, l.b) <= 1.0);
            }
        }
        for l in &g.links {
            if l.kind == LinkKind::Transit {
                // A transit crossing costs at least... unless a cheaper
                // peering detour exists, which is the whole point.
                assert!(svc.pdistance(l.a, l.b) <= 4.0);
            }
        }
    }

    #[test]
    fn map_fetches_are_cached_per_partition() {
        let u = underlay();
        let svc = P4pService::build(&u, PdistanceWeights::default());
        let mut est = P4pEstimator::new(&u, svc);
        let mut rng = SimRng::new(122);
        let a = HostId(0);
        for b in 1..50u32 {
            est.proximity(a, HostId(b), &mut rng);
        }
        // All queries from one host → one partition map → 2 messages.
        assert_eq!(est.overhead_messages(), 2);
        // A querier in another AS fetches its own map.
        let other = u
            .hosts
            .ids()
            .find(|&h| !u.same_as(h, a))
            .expect("another AS");
        est.proximity(other, a, &mut rng);
        assert_eq!(est.overhead_messages(), 4);
    }

    #[test]
    fn p4p_ranking_prefers_cheap_partitions() {
        let u = underlay();
        let svc = P4pService::build(&u, PdistanceWeights::default());
        let mut est = P4pEstimator::new(&u, svc);
        let mut rng = SimRng::new(123);
        let from = HostId(0);
        let candidates: Vec<HostId> = u.hosts.ids().filter(|&h| h != from).collect();
        let ranked = est.rank(from, &candidates, &mut rng);
        // Same-AS candidates (p-distance 0) must come first.
        let same = candidates.iter().filter(|&&c| u.same_as(from, c)).count();
        for &top in ranked.iter().take(same) {
            assert!(u.same_as(from, top));
        }
        // And ranking is monotone in p-distance.
        let my_as = u.hosts.as_of(from);
        let svc2 = P4pService::build(&u, PdistanceWeights::default());
        let d = |h: HostId| svc2.pdistance(my_as, u.hosts.as_of(h));
        for w in ranked.windows(2) {
            assert!(d(w[0]) <= d(w[1]) + 1e-12);
        }
    }
}
