//! Explicit latency measurement (§3.2).
//!
//! "Latency can be measured explicitly using a simple ping or traceroute
//! technique. This, however, incurs the network with much overhead." —
//! [`ExplicitPinger`] is that technique, with the overhead made visible:
//! every probe costs two messages (echo + reply), and an optional cache
//! models the sparing use the paper recommends.

use crate::provider::ProximityEstimator;
use std::collections::BTreeMap;
use uap_net::{HostId, Underlay};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Direct RTT measurement against the underlay's ground truth (plus the
/// underlay's configured jitter).
pub struct ExplicitPinger<'a> {
    underlay: &'a Underlay,
    /// When true, each ordered pair is only measured once and then served
    /// from cache.
    pub cache_enabled: bool,
    cache: BTreeMap<(HostId, HostId), f64>,
    messages: u64,
    probes: u64,
}

impl<'a> ExplicitPinger<'a> {
    /// Creates a pinger; `cache_enabled` controls memoization.
    pub fn new(underlay: &'a Underlay, cache_enabled: bool) -> Self {
        ExplicitPinger {
            underlay,
            cache_enabled,
            cache: BTreeMap::new(),
            messages: 0,
            probes: 0,
        }
    }

    /// Measures the RTT between `a` and `b` in microseconds.
    pub fn rtt_us(&mut self, a: HostId, b: HostId, rng: &mut SimRng) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        if self.cache_enabled {
            if let Some(&v) = self.cache.get(&key) {
                return v;
            }
        }
        self.probes += 1;
        self.messages += 2; // echo request + reply
        let rtt = self
            .underlay
            .measured_rtt_us(a, b, rng)
            .unwrap_or(u64::MAX / 2) as f64;
        if self.cache_enabled {
            self.cache.insert(key, rtt);
        }
        rtt
    }

    /// Like [`ExplicitPinger::rtt_us`], but emits an `info`/`ping.probe`
    /// trace event (Debug level) for every probe actually sent — cache
    /// hits cost nothing and trace nothing, mirroring the message counter.
    pub fn rtt_us_traced(
        &mut self,
        a: HostId,
        b: HostId,
        rng: &mut SimRng,
        now: SimTime,
        tracer: &mut Tracer,
    ) -> f64 {
        let before = self.probes;
        let rtt = self.rtt_us(a, b, rng);
        if self.probes > before {
            tracer.emit(now, "info", TraceLevel::Debug, "ping.probe", |f| {
                f.u64("a", a.0 as u64)
                    .u64("b", b.0 as u64)
                    .f64("rtt_us", rtt);
            });
        }
        rtt
    }

    /// Number of actual probes sent (cache hits excluded).
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

impl ProximityEstimator for ExplicitPinger<'_> {
    fn proximity(&mut self, a: HostId, b: HostId, rng: &mut SimRng) -> f64 {
        self.rtt_us(a, b, rng)
    }

    fn overhead_messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "explicit-ping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay(jitter: f64) -> Underlay {
        let mut rng = SimRng::new(21);
        let g = TopologySpec::new(TopologyKind::Mesh {
            n: 10,
            extra_edge_prob: 0.3,
        })
        .build(&mut rng);
        let cfg = UnderlayConfig {
            routing: uap_net::RoutingMode::ShortestPath,
            jitter,
            ..Default::default()
        };
        Underlay::build(g, &PopulationSpec::uniform(60), cfg, &mut rng)
    }

    #[test]
    fn measures_ground_truth_when_noiseless() {
        let u = underlay(0.0);
        let mut p = ExplicitPinger::new(&u, false);
        let mut rng = SimRng::new(22);
        let (a, b) = (HostId(0), HostId(30));
        assert_eq!(p.rtt_us(a, b, &mut rng), u.rtt_us(a, b).unwrap() as f64);
    }

    #[test]
    fn overhead_counts_two_messages_per_probe() {
        let u = underlay(0.0);
        let mut p = ExplicitPinger::new(&u, false);
        let mut rng = SimRng::new(23);
        for i in 1..=10 {
            p.rtt_us(HostId(0), HostId(i), &mut rng);
        }
        assert_eq!(p.probes(), 10);
        assert_eq!(p.overhead_messages(), 20);
    }

    #[test]
    fn cache_avoids_repeat_probes() {
        let u = underlay(0.2);
        let mut p = ExplicitPinger::new(&u, true);
        let mut rng = SimRng::new(24);
        let v1 = p.rtt_us(HostId(1), HostId(2), &mut rng);
        let v2 = p.rtt_us(HostId(2), HostId(1), &mut rng); // reversed pair
        assert_eq!(v1, v2);
        assert_eq!(p.probes(), 1);
        assert_eq!(p.overhead_messages(), 2);
    }

    #[test]
    fn ranking_prefers_closer_hosts() {
        let u = underlay(0.0);
        let mut p = ExplicitPinger::new(&u, false);
        let mut rng = SimRng::new(25);
        let from = HostId(0);
        let candidates: Vec<HostId> = (1..20).map(HostId).collect();
        let ranked = p.rank(from, &candidates, &mut rng);
        let rtts: Vec<u64> = ranked.iter().map(|&h| u.rtt_us(from, h).unwrap()).collect();
        for w in rtts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
