//! Provider traits — the vocabulary between collection and usage.
//!
//! The paper's closing open issue is "the development of a general
//! architecture for underlay awareness in which different underlay
//! information can be collected and used". These traits are that
//! architecture's collection-side interface: an overlay strategy asks for
//! ISP location, pairwise proximity, geolocation or resource rankings
//! without knowing which technique answers.

use uap_net::{AsId, GeoPoint, HostId};
use uap_sim::SimRng;

/// Answers "which ISP does this peer connect through?" (§3.1).
pub trait IspLocator {
    /// The AS of `h` as this service believes it (may be wrong for noisy
    /// mapping databases).
    fn isp_of(&mut self, h: HostId) -> AsId;
    /// Number of lookups served so far.
    fn queries(&self) -> u64;
    /// Human-readable technique name.
    fn name(&self) -> &'static str;
}

/// Estimates pairwise proximity; **lower is closer** (§3.2).
///
/// Units are technique-specific (microseconds for latency estimators,
/// dissimilarity for CDN ratio maps); only the *ordering* is contractual,
/// which is all neighbor selection needs.
pub trait ProximityEstimator {
    /// Proximity estimate between two hosts.
    fn proximity(&mut self, a: HostId, b: HostId, rng: &mut SimRng) -> f64;
    /// Total protocol messages this estimator has cost so far.
    fn overhead_messages(&self) -> u64;
    /// Human-readable technique name.
    fn name(&self) -> &'static str;

    /// Ranks `candidates` by increasing estimated proximity to `from`.
    fn rank(&mut self, from: HostId, candidates: &[HostId], rng: &mut SimRng) -> Vec<HostId> {
        let mut scored: Vec<(f64, HostId)> = candidates
            .iter()
            .map(|&c| (self.proximity(from, c, rng), c))
            .collect();
        scored.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        scored.into_iter().map(|(_, c)| c).collect()
    }
}

/// Answers "where is this peer?" (§3.3).
pub trait GeoLocator {
    /// Estimated position of `h`.
    fn locate(&mut self, h: HostId, rng: &mut SimRng) -> GeoPoint;
    /// Number of lookups served so far.
    fn queries(&self) -> u64;
    /// Human-readable technique name.
    fn name(&self) -> &'static str;
}

/// Answers "which peers have the most resources?" (§3.4).
pub trait ResourceDirectory {
    /// The `k` highest-capacity online peers known to the directory.
    fn top_k(&self, k: usize) -> Vec<HostId>;
    /// Capacity estimate for one peer, if known.
    fn capacity_of(&self, h: HostId) -> Option<f64>;
    /// Total maintenance messages spent so far.
    fn overhead_messages(&self) -> u64;
    /// Human-readable technique name.
    fn name(&self) -> &'static str;
}
