//! The information management overlay for peer resources (§3.4), after
//! SkyEye.KOM \[11\].
//!
//! "The most interesting solution for collecting peer resources is based on
//! an information management overlay. This overlay is used to generate
//! statistics on the P2P system, which enables resource-based peer search."
//!
//! [`SkyEyeTree`] arranges the member peers in a b-ary aggregation tree.
//! Each round, every node reports its [`ResourceReport`] to its parent;
//! inner nodes merge their children's **top-k** lists with their own and
//! forward the truncated result. The root ends up with the global top-k —
//! the "oracle view on structured P2P systems" of the SkyEye paper — at a
//! cost of one message per non-root member per round.

use crate::provider::ResourceDirectory;
use std::collections::BTreeMap;
use uap_net::{HostId, Underlay};

/// One peer's self-reported resources.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceReport {
    /// Reporting peer.
    pub host: HostId,
    /// Scalar capacity (see `Host::capacity_score`).
    pub capacity: f64,
    /// Upstream bandwidth in kbit/s.
    pub up_kbps: u32,
    /// Shared storage in GB.
    pub storage_gb: f64,
    /// Long-run online fraction.
    pub online_fraction: f64,
}

/// Aggregate statistics the root can answer from.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SystemStats {
    /// Number of online members aggregated.
    pub members: usize,
    /// Mean capacity.
    pub mean_capacity: f64,
    /// Total shared storage.
    pub total_storage_gb: f64,
}

/// The b-ary aggregation tree.
pub struct SkyEyeTree {
    branching: usize,
    k_cap: usize,
    members: Vec<HostId>,
    reports: BTreeMap<HostId, ResourceReport>,
    root_top: Vec<ResourceReport>,
    stats: SystemStats,
    messages: u64,
    rounds: u64,
}

impl SkyEyeTree {
    /// Builds the tree over `members` with the given branching factor,
    /// keeping `k_cap` entries per aggregated list. Reports are seeded from
    /// the underlay's host records (peers self-report honestly here;
    /// incentive questions are out of scope, as in the paper).
    pub fn build(
        underlay: &Underlay,
        members: Vec<HostId>,
        branching: usize,
        k_cap: usize,
    ) -> SkyEyeTree {
        assert!(branching >= 2, "branching factor must be at least 2");
        assert!(k_cap >= 1);
        let reports = members
            .iter()
            .map(|&h| {
                let host = underlay.host(h);
                (
                    h,
                    ResourceReport {
                        host: h,
                        capacity: host.capacity_score(),
                        up_kbps: host.up_kbps,
                        storage_gb: host.storage_gb,
                        online_fraction: host.online_fraction,
                    },
                )
            })
            .collect();
        SkyEyeTree {
            branching,
            k_cap,
            members,
            reports,
            root_top: Vec::new(),
            stats: SystemStats::default(),
            messages: 0,
            rounds: 0,
        }
    }

    /// Members currently in the tree.
    pub fn members(&self) -> &[HostId] {
        &self.members
    }

    /// Removes a departed peer (takes effect at the next aggregation
    /// round, as in the real protocol).
    pub fn remove_member(&mut self, h: HostId) {
        self.members.retain(|&m| m != h);
        self.reports.remove(&h);
    }

    /// Adds a joining peer.
    pub fn add_member(&mut self, underlay: &Underlay, h: HostId) {
        if self.reports.contains_key(&h) {
            return;
        }
        let host = underlay.host(h);
        self.reports.insert(
            h,
            ResourceReport {
                host: h,
                capacity: host.capacity_score(),
                up_kbps: host.up_kbps,
                storage_gb: host.storage_gb,
                online_fraction: host.online_fraction,
            },
        );
        self.members.push(h);
    }

    /// Runs one aggregation round: every non-root member sends one report
    /// message up the tree; inner nodes merge-and-truncate. Updates the
    /// root's top-k and system statistics.
    pub fn run_round(&mut self) {
        self.rounds += 1;
        if self.members.is_empty() {
            self.root_top.clear();
            self.stats = SystemStats::default();
            return;
        }
        self.messages += (self.members.len() - 1) as u64;
        let (top, count, cap_sum, storage_sum) = self.aggregate(0);
        self.root_top = top;
        self.stats = SystemStats {
            members: count,
            mean_capacity: if count > 0 {
                cap_sum / count as f64
            } else {
                0.0
            },
            total_storage_gb: storage_sum,
        };
    }

    /// Recursive bottom-up aggregation over the implicit b-ary tree laid
    /// out on the member array (children of slot `i` are `i*b + 1 ..=
    /// i*b + b`). Returns `(top list, member count, capacity sum, storage
    /// sum)` of the subtree.
    fn aggregate(&self, idx: usize) -> (Vec<ResourceReport>, usize, f64, f64) {
        let me = self.reports[&self.members[idx]];
        let mut top = vec![me];
        let mut count = 1usize;
        let mut cap = me.capacity;
        let mut storage = me.storage_gb;
        for c in 1..=self.branching {
            let child = idx * self.branching + c;
            if child >= self.members.len() {
                break;
            }
            let (ct, cc, ccap, cst) = self.aggregate(child);
            top.extend(ct);
            count += cc;
            cap += ccap;
            storage += cst;
        }
        top.sort_by(|a, b| b.capacity.total_cmp(&a.capacity).then(a.host.cmp(&b.host)));
        top.truncate(self.k_cap);
        (top, count, cap, storage)
    }

    /// Aggregation rounds performed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Root-level system statistics from the last round.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }
}

impl ResourceDirectory for SkyEyeTree {
    fn top_k(&self, k: usize) -> Vec<HostId> {
        self.root_top.iter().take(k).map(|r| r.host).collect()
    }

    fn capacity_of(&self, h: HostId) -> Option<f64> {
        self.reports.get(&h).map(|r| r.capacity)
    }

    fn overhead_messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "skyeye-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
    use uap_sim::SimRng;

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(41);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.0,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(64),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn root_finds_true_top_k() {
        let u = underlay();
        let members: Vec<HostId> = u.hosts.ids().collect();
        let mut tree = SkyEyeTree::build(&u, members.clone(), 4, 8);
        tree.run_round();
        let got = tree.top_k(8);
        // Ground truth.
        let mut truth: Vec<HostId> = members;
        truth.sort_by(|&a, &b| {
            u.host(b)
                .capacity_score()
                .partial_cmp(&u.host(a).capacity_score())
                .unwrap()
                .then(a.cmp(&b))
        });
        assert_eq!(got, truth[..8].to_vec());
    }

    #[test]
    fn message_cost_is_members_minus_one_per_round() {
        let u = underlay();
        let members: Vec<HostId> = u.hosts.ids().collect();
        let mut tree = SkyEyeTree::build(&u, members, 4, 4);
        tree.run_round();
        assert_eq!(tree.overhead_messages(), 63);
        tree.run_round();
        assert_eq!(tree.overhead_messages(), 126);
        assert_eq!(tree.rounds(), 2);
    }

    #[test]
    fn stats_cover_all_members() {
        let u = underlay();
        let members: Vec<HostId> = u.hosts.ids().collect();
        let mut tree = SkyEyeTree::build(&u, members, 3, 4);
        tree.run_round();
        assert_eq!(tree.stats().members, 64);
        assert!(tree.stats().mean_capacity > 0.0);
        assert!(tree.stats().total_storage_gb > 0.0);
    }

    #[test]
    fn churn_membership_updates() {
        let u = underlay();
        let members: Vec<HostId> = u.hosts.ids().take(10).collect();
        let mut tree = SkyEyeTree::build(&u, members, 2, 10);
        tree.run_round();
        let before = tree.top_k(10);
        assert_eq!(before.len(), 10);
        let leaver = before[0];
        tree.remove_member(leaver);
        tree.run_round();
        let after = tree.top_k(10);
        assert_eq!(after.len(), 9);
        assert!(!after.contains(&leaver));
        tree.add_member(&u, leaver);
        tree.run_round();
        assert!(tree.top_k(10).contains(&leaver));
        // Double-add is idempotent.
        tree.add_member(&u, leaver);
        assert_eq!(tree.members().len(), 10);
    }

    #[test]
    fn capacity_lookup() {
        let u = underlay();
        let members: Vec<HostId> = u.hosts.ids().take(5).collect();
        let tree = SkyEyeTree::build(&u, members, 2, 5);
        assert_eq!(
            tree.capacity_of(HostId(0)),
            Some(u.host(HostId(0)).capacity_score())
        );
        assert_eq!(tree.capacity_of(HostId(63)), None);
    }

    #[test]
    fn empty_tree_is_harmless() {
        let u = underlay();
        let mut tree = SkyEyeTree::build(&u, vec![], 2, 5);
        tree.run_round();
        assert!(tree.top_k(3).is_empty());
        assert_eq!(tree.overhead_messages(), 0);
        assert_eq!(tree.stats().members, 0);
    }

    #[test]
    fn truncation_limits_lists_not_stats() {
        let u = underlay();
        let members: Vec<HostId> = u.hosts.ids().collect();
        let mut tree = SkyEyeTree::build(&u, members, 2, 2);
        tree.run_round();
        // top_k beyond k_cap returns at most k_cap entries…
        assert_eq!(tree.top_k(10).len(), 2);
        // …but counts still cover everyone.
        assert_eq!(tree.stats().members, 64);
    }
}
