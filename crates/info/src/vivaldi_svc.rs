//! Population-wide Vivaldi service (§3.2, prediction methods).
//!
//! Maintains one [`VivaldiNode`] per host and drives updates from periodic
//! gossip rounds against the underlay's measured RTTs. Implements
//! [`ProximityEstimator`] so the usage layer can swap it in wherever a
//! pinger would go — at a fraction of the measurement overhead, which is
//! the paper's argument for prediction methods.

use crate::provider::ProximityEstimator;
use uap_coords::{EmbeddingQuality, VivaldiConfig, VivaldiNode};
use uap_net::{HostId, Underlay};
use uap_sim::SimRng;

/// Vivaldi coordinates for every host in an underlay.
pub struct VivaldiService {
    nodes: Vec<VivaldiNode>,
    messages: u64,
    rounds: u64,
}

impl VivaldiService {
    /// Creates fresh coordinates for `n_hosts` hosts.
    pub fn new(n_hosts: usize, cfg: VivaldiConfig) -> VivaldiService {
        VivaldiService {
            nodes: (0..n_hosts).map(|_| VivaldiNode::new(cfg)).collect(),
            messages: 0,
            rounds: 0,
        }
    }

    /// One gossip round: every host samples `samples_per_node` random peers
    /// (2 messages each: probe + reply carrying the remote coordinate).
    pub fn run_round(&mut self, underlay: &Underlay, samples_per_node: usize, rng: &mut SimRng) {
        self.rounds += 1;
        let n = self.nodes.len();
        if n < 2 {
            return;
        }
        for i in 0..n {
            for _ in 0..samples_per_node {
                let j = rng.index(n);
                if i == j {
                    continue;
                }
                let rtt_us = match underlay.measured_rtt_us(HostId(i as u32), HostId(j as u32), rng)
                {
                    Some(r) => r,
                    None => continue,
                };
                self.messages += 2;
                let remote = self.nodes[j].clone();
                self.nodes[i].update(&remote, rtt_us as f64 / 1_000.0, rng);
            }
        }
    }

    /// Runs `rounds` gossip rounds.
    pub fn converge(
        &mut self,
        underlay: &Underlay,
        rounds: usize,
        samples_per_node: usize,
        rng: &mut SimRng,
    ) {
        for _ in 0..rounds {
            self.run_round(underlay, samples_per_node, rng);
        }
    }

    /// Predicted RTT between two hosts in microseconds.
    pub fn predict_us(&self, a: HostId, b: HostId) -> f64 {
        self.nodes[a.idx()].predict_ms(&self.nodes[b.idx()]) * 1_000.0
    }

    /// The coordinate of one host.
    pub fn node(&self, h: HostId) -> &VivaldiNode {
        &self.nodes[h.idx()]
    }

    /// Gossip rounds performed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Evaluates prediction accuracy on `n_pairs` random host pairs.
    pub fn quality(
        &self,
        underlay: &Underlay,
        n_pairs: usize,
        rng: &mut SimRng,
    ) -> EmbeddingQuality {
        let n = self.nodes.len();
        let pairs: Vec<(f64, f64)> = (0..n_pairs)
            .filter_map(|_| {
                let a = HostId(rng.index(n) as u32);
                let b = HostId(rng.index(n) as u32);
                if a == b {
                    return None;
                }
                let actual = underlay.rtt_us(a, b)? as f64;
                Some((self.predict_us(a, b), actual))
            })
            .collect();
        EmbeddingQuality::evaluate(&pairs)
    }
}

impl ProximityEstimator for VivaldiService {
    fn proximity(&mut self, a: HostId, b: HostId, _rng: &mut SimRng) -> f64 {
        // Prediction is free: the coordinates are already maintained.
        self.predict_us(a, b)
    }

    fn overhead_messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "vivaldi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};

    fn underlay() -> Underlay {
        let mut rng = SimRng::new(51);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(80),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn convergence_improves_quality() {
        let u = underlay();
        let mut svc = VivaldiService::new(u.n_hosts(), VivaldiConfig::default());
        let mut rng = SimRng::new(52);
        let before = svc.quality(&u, 300, &mut rng);
        svc.converge(&u, 40, 4, &mut rng);
        let after = svc.quality(&u, 300, &mut rng);
        assert!(
            after.median_rel_err < before.median_rel_err,
            "median {} -> {}",
            before.median_rel_err,
            after.median_rel_err
        );
        assert!(
            after.median_rel_err < 0.5,
            "median {}",
            after.median_rel_err
        );
    }

    #[test]
    fn overhead_scales_with_rounds_and_samples() {
        let u = underlay();
        let mut svc = VivaldiService::new(u.n_hosts(), VivaldiConfig::default());
        let mut rng = SimRng::new(53);
        svc.run_round(&u, 2, &mut rng);
        let one = svc.overhead_messages();
        // <= 2 msgs * 2 samples * 80 hosts (self-draws skipped).
        assert!(one <= 320 && one > 200, "overhead {one}");
        svc.run_round(&u, 2, &mut rng);
        assert!(svc.overhead_messages() > one);
        assert_eq!(svc.rounds(), 2);
    }

    #[test]
    fn ranking_correlates_with_underlay_rtt() {
        let u = underlay();
        let mut svc = VivaldiService::new(u.n_hosts(), VivaldiConfig::default());
        let mut rng = SimRng::new(54);
        svc.converge(&u, 50, 4, &mut rng);
        let from = HostId(0);
        let candidates: Vec<HostId> = (1..40).map(HostId).collect();
        let ranked = svc.rank(from, &candidates, &mut rng);
        // The mean true RTT of the top 5 must beat the bottom 5.
        let rtt = |h: HostId| u.rtt_us(from, h).unwrap() as f64;
        let top: f64 = ranked[..5].iter().map(|&h| rtt(h)).sum::<f64>() / 5.0;
        let bottom: f64 = ranked[ranked.len() - 5..]
            .iter()
            .map(|&h| rtt(h))
            .sum::<f64>()
            / 5.0;
        assert!(top < bottom, "top {top} not < bottom {bottom}");
    }

    #[test]
    fn tiny_population_is_safe() {
        let u = underlay();
        let mut svc = VivaldiService::new(1, VivaldiConfig::default());
        let mut rng = SimRng::new(55);
        svc.run_round(&u, 3, &mut rng);
        assert_eq!(svc.overhead_messages(), 0);
    }
}
