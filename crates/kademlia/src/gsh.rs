//! Geographically Scoped Hashing — the latency-aware structured overlay
//! of §4, after Leopard (Yu, Lee, Zhang \[33\]).
//!
//! "Both content identifiers and latency information are processed
//! together using a special hashing function called Geographically Scoped
//! Hashing to produce the final peer and content identifiers."
//!
//! The scheme: the top `z` bits of every 160-bit identifier are a
//! **zone prefix** derived from position (here: a Z-order/Morton
//! interleaving of the planar coordinates, so nearby peers share long
//! prefixes), and the remaining bits are the usual hash. Peers take their
//! zone from their own location; content published *for a region* takes
//! that region's zone. Because Kademlia's XOR metric resolves the highest
//! differing bit first, routes for region-scoped keys converge inside the
//! region, and the replica set lands on regional nodes — lookups for
//! locally-consumed content never leave the neighbourhood.

use crate::id::Key;
use crate::network::{DhtConfig, DhtNetwork, LookupOutcome};
use uap_net::{GeoPoint, HostId, Underlay};
use uap_sim::SimRng;

/// Number of zone-prefix bits (a 2^(z/2) × 2^(z/2) grid).
pub const ZONE_BITS: usize = 8;

/// Computes the `ZONE_BITS`-bit Z-order zone of a position within the
/// world box `[0, world_km)²`.
pub fn zone_of(pos: &GeoPoint, world_km: f64) -> u8 {
    let half = ZONE_BITS / 2;
    let cells = 1u32 << half;
    let clamp = |v: f64| (v.max(0.0) / world_km * cells as f64) as u32;
    let cx = clamp(pos.x_km).min(cells - 1);
    let cy = clamp(pos.y_km).min(cells - 1);
    // Interleave the bits of (cx, cy), x first: nearby cells share
    // prefixes at every scale.
    let mut zone = 0u8;
    for bit in (0..half).rev() {
        zone = (zone << 1) | (((cx >> bit) & 1) as u8);
        zone = (zone << 1) | (((cy >> bit) & 1) as u8);
    }
    zone
}

/// Replaces the top `ZONE_BITS` of a key with a zone prefix.
pub fn scope_key(zone: u8, inner: &Key) -> Key {
    let mut b = inner.0;
    b[0] = zone;
    Key(b)
}

/// A geographically scoped DHT: a standard [`DhtNetwork`] whose node
/// identifiers carry zone prefixes.
pub struct ScopedDht {
    /// The underlying DHT.
    pub dht: DhtNetwork,
    world_km: f64,
}

impl ScopedDht {
    /// Builds the scoped DHT: node keys get their owner's zone prefix
    /// before the network is joined.
    pub fn build(underlay: Underlay, cfg: DhtConfig, world_km: f64, rng: &mut SimRng) -> ScopedDht {
        let zones: Vec<u8> = underlay
            .hosts
            .ids()
            .map(|h| zone_of(&underlay.host(h).geo, world_km))
            .collect();
        let dht =
            DhtNetwork::build_with_keys(underlay, cfg, rng, |i, key| scope_key(zones[i], &key));
        ScopedDht { dht, world_km }
    }

    /// The zone a host lives in.
    pub fn zone_of_host(&self, h: HostId) -> u8 {
        zone_of(&self.dht.underlay.host(h).geo, self.world_km)
    }

    /// The scoped key under which `name` is stored for `zone`.
    pub fn regional_key(&self, zone: u8, name: &[u8]) -> Key {
        scope_key(zone, &Key::hash_of(name))
    }

    /// Publishes regional content: stored under the publisher's own zone.
    pub fn publish_regional(
        &mut self,
        publisher: HostId,
        name: &[u8],
        value: u64,
        rng: &mut SimRng,
    ) -> (LookupOutcome, usize) {
        let key = self.regional_key(self.zone_of_host(publisher), name);
        self.dht.store(publisher, &key, value, rng)
    }

    /// Retrieves content scoped to the *requester's* zone (the
    /// locally-popular-content pattern Leopard optimizes).
    pub fn retrieve_regional(
        &mut self,
        requester: HostId,
        name: &[u8],
        rng: &mut SimRng,
    ) -> (LookupOutcome, Option<u64>) {
        let key = self.regional_key(self.zone_of_host(requester), name);
        self.dht.retrieve(requester, &key, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ProximityMode;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};

    fn underlay(n: usize, seed: u64) -> Underlay {
        let mut rng = SimRng::new(seed);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn zorder_zones_respect_locality() {
        let world = 5_000.0;
        let a = zone_of(&GeoPoint::new(100.0, 100.0), world);
        let b = zone_of(&GeoPoint::new(150.0, 120.0), world);
        let far = zone_of(&GeoPoint::new(4_800.0, 4_900.0), world);
        assert_eq!(a, b, "nearby points share the zone");
        assert_ne!(a, far);
        // Out-of-range points clamp instead of wrapping.
        let clamped = zone_of(&GeoPoint::new(-10.0, 9_999.0), world);
        let corner = zone_of(&GeoPoint::new(0.0, 4_999.0), world);
        assert_eq!(clamped, corner);
    }

    #[test]
    fn scope_key_sets_exactly_the_prefix() {
        let inner = Key::hash_of(b"content");
        let scoped = scope_key(0xAB, &inner);
        assert_eq!(scoped.0[0], 0xAB);
        assert_eq!(&scoped.0[1..], &inner.0[1..]);
    }

    #[test]
    fn regional_content_round_trips() {
        let mut rng = SimRng::new(3);
        let mut dht = ScopedDht::build(underlay(128, 3), DhtConfig::default(), 5_000.0, &mut rng);
        // A publisher stores regional content; a same-zone requester finds
        // it under the same key.
        let publisher = HostId(0);
        let zone = dht.zone_of_host(publisher);
        let neighbor = dht
            .dht
            .underlay
            .hosts
            .ids()
            .find(|&h| h != publisher && dht.zone_of_host(h) == zone)
            .expect("fixture needs a zone mate");
        dht.publish_regional(publisher, b"local-news", 55, &mut rng);
        let (_, got) = dht.retrieve_regional(neighbor, b"local-news", &mut rng);
        assert_eq!(got, Some(55));
        // A far-zone requester asks under its own zone: misses.
        let far = dht
            .dht
            .underlay
            .hosts
            .ids()
            .find(|&h| dht.zone_of_host(h) != zone)
            .expect("fixture needs a far host");
        let (_, miss) = dht.retrieve_regional(far, b"local-news", &mut rng);
        assert_eq!(miss, None);
    }

    #[test]
    fn scoped_lookups_stay_more_local_than_plain() {
        // Regional lookups in the scoped DHT cross fewer AS hops per RPC
        // than the same workload on a plain DHT.
        let run = |scoped: bool| {
            let mut rng = SimRng::new(7);
            let cfg = DhtConfig {
                proximity: ProximityMode::None,
                ..Default::default()
            };
            let mut hops = 0u64;
            let mut rpcs = 0u64;
            if scoped {
                let mut dht = ScopedDht::build(underlay(192, 7), cfg, 5_000.0, &mut rng);
                for i in 0..60u32 {
                    let h = HostId(i % 192);
                    let key =
                        dht.regional_key(dht.zone_of_host(h), format!("c{}", i % 10).as_bytes());
                    let out = dht.dht.lookup(h, &key, &mut rng);
                    hops += out.as_hops_sum;
                    rpcs += out.rpcs;
                }
            } else {
                let mut dht = DhtNetwork::build(underlay(192, 7), cfg, &mut rng);
                for i in 0..60u32 {
                    let h = HostId(i % 192);
                    let key = Key::hash_of(format!("c{}", i % 10).as_bytes());
                    let out = dht.lookup(h, &key, &mut rng);
                    hops += out.as_hops_sum;
                    rpcs += out.rpcs;
                }
            }
            hops as f64 / rpcs.max(1) as f64
        };
        let plain = run(false);
        let scoped = run(true);
        assert!(
            scoped < plain,
            "scoped {scoped} AS-hops/RPC not below plain {plain}"
        );
    }
}
