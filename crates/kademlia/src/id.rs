//! 160-bit keys and the XOR metric.

use std::cmp::Ordering;
use std::fmt;
use uap_sim::SimRng;

/// A 160-bit Kademlia identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub [u8; 20]);

impl Key {
    /// The all-zero key.
    pub const ZERO: Key = Key([0; 20]);

    /// Draws a uniformly random key.
    pub fn random(rng: &mut SimRng) -> Key {
        let mut b = [0u8; 20];
        for chunk in b.chunks_mut(8) {
            let v = rng.u64().to_be_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Key(b)
    }

    /// Deterministic key from a name (FNV-1a stretched over 20 bytes) —
    /// stands in for SHA-1 content hashing without a crypto dependency.
    pub fn hash_of(data: &[u8]) -> Key {
        let mut out = [0u8; 20];
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, slot) in out.iter_mut().enumerate() {
            for &byte in data {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= i as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            *slot = (h >> 24) as u8;
        }
        Key(out)
    }

    /// XOR distance to another key.
    #[allow(clippy::needless_range_loop)]
    pub fn distance(&self, other: &Key) -> Key {
        let mut d = [0u8; 20];
        for i in 0..20 {
            d[i] = self.0[i] ^ other.0[i];
        }
        Key(d)
    }

    /// Index of the k-bucket `other` falls into relative to `self`:
    /// `159 − leading_zero_bits(distance)`; `None` for identical keys.
    pub fn bucket_index(&self, other: &Key) -> Option<usize> {
        let d = self.distance(other);
        let mut zeros = 0usize;
        for byte in d.0 {
            if byte == 0 {
                zeros += 8;
            } else {
                zeros += byte.leading_zeros() as usize;
                break;
            }
        }
        if zeros >= 160 {
            None
        } else {
            Some(159 - zeros)
        }
    }

    /// Compares two keys by distance to `self` (closer first).
    pub fn cmp_distance(&self, a: &Key, b: &Key) -> Ordering {
        self.distance(a).0.cmp(&self.distance(b).0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let mut rng = SimRng::new(1);
        let a = Key::random(&mut rng);
        let b = Key::random(&mut rng);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), Key::ZERO);
    }

    #[test]
    fn bucket_index_extremes() {
        let zero = Key::ZERO;
        let mut one = [0u8; 20];
        one[19] = 1;
        assert_eq!(zero.bucket_index(&Key(one)), Some(0));
        let mut top = [0u8; 20];
        top[0] = 0x80;
        assert_eq!(zero.bucket_index(&Key(top)), Some(159));
        assert_eq!(zero.bucket_index(&zero), None);
    }

    #[test]
    fn cmp_distance_orders_by_xor() {
        let zero = Key::ZERO;
        let mut near = [0u8; 20];
        near[19] = 2;
        let mut far = [0u8; 20];
        far[0] = 1;
        assert_eq!(zero.cmp_distance(&Key(near), &Key(far)), Ordering::Less);
        assert_eq!(zero.cmp_distance(&Key(far), &Key(near)), Ordering::Greater);
        assert_eq!(zero.cmp_distance(&Key(near), &Key(near)), Ordering::Equal);
    }

    #[test]
    fn random_keys_are_distinct() {
        let mut rng = SimRng::new(2);
        let keys: Vec<Key> = (0..100).map(|_| Key::random(&mut rng)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = Key::hash_of(b"file-1");
        let b = Key::hash_of(b"file-1");
        let c = Key::hash_of(b"file-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Bytes should not be all identical.
        assert!(a.0.iter().any(|&x| x != a.0[0]));
    }

    #[test]
    fn xor_triangle_equality_holds() {
        // XOR metric: d(a,c) = d(a,b) XOR d(b,c).
        let mut rng = SimRng::new(3);
        for _ in 0..50 {
            let a = Key::random(&mut rng);
            let b = Key::random(&mut rng);
            let c = Key::random(&mut rng);
            let ab = a.distance(&b);
            let bc = b.distance(&c);
            let ac = a.distance(&c);
            let mut x = [0u8; 20];
            for (i, slot) in x.iter_mut().enumerate() {
                *slot = ab.0[i] ^ bc.0[i];
            }
            assert_eq!(Key(x), ac);
        }
    }
}
