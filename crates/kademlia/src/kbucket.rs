//! k-buckets and the routing table.
//!
//! Each node keeps 160 buckets; bucket `i` holds up to `k` contacts whose
//! XOR distance has its highest set bit at position `i`. The underlay-aware
//! twist (Kaune et al. \[17\]) is in the **overflow policy**: vanilla
//! Kademlia keeps the longest-lived contact (LRU), the proximity variant
//! keeps the contact with the smaller AS-hop distance. Both fill the same
//! buckets, so lookup convergence is identical — only *which* of the
//! equally-correct contacts survives changes.

use crate::id::Key;
use uap_net::HostId;

/// A routing-table entry: the overlay key and its underlay attachment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contact {
    /// DHT key.
    pub key: Key,
    /// The host behind it.
    pub host: HostId,
    /// AS-hop distance from the table owner (cached at insert time).
    pub as_hops: u32,
}

/// Bucket overflow policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OverflowPolicy {
    /// Drop the newcomer (classic Kademlia behaviour when the oldest
    /// contact is still alive).
    KeepOld,
    /// Keep the underlay-closest: evict the current farthest entry if the
    /// newcomer is closer (proximity neighbor selection).
    PreferNear,
}

/// One node's routing table.
pub struct RoutingTable {
    /// The owner's key.
    pub own: Key,
    k: usize,
    policy: OverflowPolicy,
    buckets: Vec<Vec<Contact>>,
}

impl RoutingTable {
    /// Creates a table for `own` with bucket capacity `k`.
    pub fn new(own: Key, k: usize, policy: OverflowPolicy) -> RoutingTable {
        assert!(k >= 1);
        RoutingTable {
            own,
            k,
            policy,
            buckets: vec![Vec::new(); 160],
        }
    }

    /// Number of contacts across all buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Observes a contact (on any received message). Returns true if the
    /// contact ended up in the table.
    pub fn observe(&mut self, c: Contact) -> bool {
        let inserted = self.observe_inner(c);
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_invariants() {
            // lint:allow(panic) — debug-only invariant guard
            panic!("routing table corrupted after observe: {e}");
        }
        inserted
    }

    fn observe_inner(&mut self, c: Contact) -> bool {
        let idx = match self.own.bucket_index(&c.key) {
            Some(i) => i,
            None => return false, // self
        };
        let bucket = &mut self.buckets[idx];
        if let Some(pos) = bucket.iter().position(|e| e.key == c.key) {
            // Move to tail (most recently seen).
            let e = bucket.remove(pos);
            bucket.push(e);
            return true;
        }
        if bucket.len() < self.k {
            bucket.push(c);
            return true;
        }
        match self.policy {
            OverflowPolicy::KeepOld => false,
            OverflowPolicy::PreferNear => {
                // Evict the underlay-farthest entry if the newcomer beats it.
                let (far_pos, far) = bucket
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, e)| (e.as_hops, *i))
                    .expect("bucket non-empty"); // lint:allow(expect)
                if c.as_hops < far.as_hops {
                    bucket[far_pos] = c;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes a contact (e.g. after a timeout).
    pub fn remove(&mut self, key: &Key) {
        if let Some(idx) = self.own.bucket_index(key) {
            self.buckets[idx].retain(|e| e.key != *key);
        }
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_invariants() {
            // lint:allow(panic) — debug-only invariant guard
            panic!("routing table corrupted after remove: {e}");
        }
    }

    /// Validates the table's structural invariants: every bucket holds at
    /// most `k` contacts, every contact sits in the bucket its XOR distance
    /// dictates, no key appears twice anywhere, and the owner's own key is
    /// never stored. Called under `debug_assertions` from [`Self::observe`]
    /// and [`Self::remove`]; also usable directly from tests.
    // lint:allow(alloc) — diagnostic checker; allocates only error messages
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, bucket) in self.buckets.iter().enumerate() {
            if bucket.len() > self.k {
                return Err(format!(
                    "bucket {i} holds {} contacts, capacity k = {}",
                    bucket.len(),
                    self.k
                ));
            }
            for c in bucket {
                match self.own.bucket_index(&c.key) {
                    None => {
                        return Err(format!("own key {:?} stored in bucket {i}", c.key));
                    }
                    Some(want) if want != i => {
                        return Err(format!(
                            "contact {:?} in bucket {i}, belongs in bucket {want}",
                            c.key
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        let mut seen: std::collections::BTreeSet<Key> = std::collections::BTreeSet::new();
        for c in self.buckets.iter().flatten() {
            if !seen.insert(c.key) {
                return Err(format!("key {:?} appears twice in the table", c.key));
            }
        }
        Ok(())
    }

    /// The `count` contacts closest to `target` in XOR distance,
    /// closest-first.
    pub fn closest(&self, target: &Key, count: usize) -> Vec<Contact> {
        let mut all = Vec::new();
        self.closest_into(target, count, &mut all);
        all
    }

    /// Like [`RoutingTable::closest`], but clears and fills `out` — the
    /// lookup loop reuses one response buffer across every RPC it makes.
    pub fn closest_into(&self, target: &Key, count: usize, out: &mut Vec<Contact>) {
        out.clear();
        out.extend(self.buckets.iter().flatten().copied());
        out.sort_by(|a, b| target.cmp_distance(&a.key, &b.key));
        out.truncate(count);
    }

    /// Bucket fill counts (for diagnostics/tests).
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(Vec::len).collect()
    }

    /// Mean AS-hop distance over all contacts (the quantity PNS drives
    /// down).
    pub fn mean_contact_as_hops(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        self.buckets
            .iter()
            .flatten()
            .map(|c| c.as_hops as f64)
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_sim::SimRng;

    fn contact(key: Key, hops: u32) -> Contact {
        Contact {
            key,
            host: HostId(0),
            as_hops: hops,
        }
    }

    #[test]
    fn self_is_never_inserted() {
        let own = Key::ZERO;
        let mut t = RoutingTable::new(own, 4, OverflowPolicy::KeepOld);
        assert!(!t.observe(contact(own, 0)));
        assert!(t.is_empty());
    }

    #[test]
    fn buckets_respect_capacity() {
        let mut rng = SimRng::new(1);
        let own = Key::random(&mut rng);
        let mut t = RoutingTable::new(own, 3, OverflowPolicy::KeepOld);
        for _ in 0..500 {
            t.observe(contact(Key::random(&mut rng), 2));
        }
        for (i, &s) in t.bucket_sizes().iter().enumerate() {
            assert!(s <= 3, "bucket {i} overfull: {s}");
        }
        assert!(t.len() > 10);
    }

    #[test]
    fn reobserving_moves_to_tail_not_duplicates() {
        let mut rng = SimRng::new(2);
        let own = Key::random(&mut rng);
        let mut t = RoutingTable::new(own, 4, OverflowPolicy::KeepOld);
        let c = contact(Key::random(&mut rng), 1);
        assert!(t.observe(c));
        assert!(t.observe(c));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn keep_old_rejects_overflow() {
        // Fill bucket 159 (keys with top bit differing from own=0).
        let own = Key::ZERO;
        let mut t = RoutingTable::new(own, 2, OverflowPolicy::KeepOld);
        let mk = |tail: u8| {
            let mut b = [0u8; 20];
            b[0] = 0x80;
            b[19] = tail;
            Key(b)
        };
        assert!(t.observe(contact(mk(1), 5)));
        assert!(t.observe(contact(mk(2), 5)));
        assert!(!t.observe(contact(mk(3), 0)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn prefer_near_evicts_farthest() {
        let own = Key::ZERO;
        let mut t = RoutingTable::new(own, 2, OverflowPolicy::PreferNear);
        let mk = |tail: u8| {
            let mut b = [0u8; 20];
            b[0] = 0x80;
            b[19] = tail;
            Key(b)
        };
        t.observe(contact(mk(1), 5));
        t.observe(contact(mk(2), 1));
        // Newcomer with 0 hops replaces the 5-hop entry.
        assert!(t.observe(contact(mk(3), 0)));
        let c = t.closest(&own, 10);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|e| e.as_hops <= 1));
        // A far newcomer is rejected.
        assert!(!t.observe(contact(mk(4), 9)));
        assert!((t.mean_contact_as_hops() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn closest_orders_by_xor() {
        let mut rng = SimRng::new(3);
        let own = Key::random(&mut rng);
        let mut t = RoutingTable::new(own, 8, OverflowPolicy::KeepOld);
        for _ in 0..200 {
            t.observe(contact(Key::random(&mut rng), 2));
        }
        let target = Key::random(&mut rng);
        let c = t.closest(&target, 20);
        assert_eq!(c.len(), 20);
        for w in c.windows(2) {
            assert_ne!(
                target.cmp_distance(&w[0].key, &w[1].key),
                std::cmp::Ordering::Greater
            );
        }
    }

    #[test]
    fn invariants_hold_under_churn() {
        let mut rng = SimRng::new(5);
        let own = Key::random(&mut rng);
        let mut t = RoutingTable::new(own, 3, OverflowPolicy::PreferNear);
        let mut keys = Vec::new();
        for i in 0..400 {
            let k = Key::random(&mut rng);
            t.observe(contact(k, (i % 7) as u32));
            keys.push(k);
            if i % 3 == 0 {
                t.remove(&keys[(i * 31) % keys.len()]);
            }
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_corruption() {
        let own = Key::ZERO;
        let mut t = RoutingTable::new(own, 2, OverflowPolicy::KeepOld);
        let mk = |tail: u8| {
            let mut b = [0u8; 20];
            b[0] = 0x80;
            b[19] = tail;
            Key(b)
        };
        t.observe(contact(mk(1), 1));
        t.observe(contact(mk(2), 1));
        // Over-capacity bucket.
        t.buckets[159].push(contact(mk(3), 1));
        assert!(t.check_invariants().unwrap_err().contains("capacity"));
        t.buckets[159].pop();
        // Misplaced contact: a top-bit key stuffed into bucket 0.
        t.buckets[0].push(contact(mk(4), 1));
        assert!(t.check_invariants().unwrap_err().contains("belongs in"));
        t.buckets[0].pop();
        // Duplicate key smuggled into another slot of the same bucket.
        t.buckets[159][1] = contact(mk(1), 9);
        assert!(t.check_invariants().unwrap_err().contains("twice"));
        t.buckets[159][1] = contact(mk(2), 1);
        // Own key stored.
        t.buckets[0].push(contact(own, 0));
        assert!(t.check_invariants().unwrap_err().contains("own key"));
        t.buckets[0].pop();
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_deletes() {
        let mut rng = SimRng::new(4);
        let own = Key::random(&mut rng);
        let mut t = RoutingTable::new(own, 4, OverflowPolicy::KeepOld);
        let c = contact(Key::random(&mut rng), 1);
        t.observe(c);
        assert_eq!(t.len(), 1);
        t.remove(&c.key);
        assert!(t.is_empty());
    }
}
