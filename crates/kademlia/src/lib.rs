//! # uap-kademlia — a Kademlia DHT with proximity neighbor selection
//!
//! The structured-overlay substrate for the paper's §4 usage example
//! "Kaune et al. extend the routing algorithm of Kademlia to reduce
//! inter-AS traffic due to the distributed hash table-lookup algorithm"
//! (\[17\], *Embracing the Peer Next Door: Proximity in Kademlia*).
//!
//! Standard Kademlia: 160-bit keys, XOR metric, k-buckets, iterative
//! `FIND_NODE` lookups with α-way parallelism, `STORE`/`FIND_VALUE`.
//!
//! Underlay awareness adds two orthogonal switches ([`ProximityMode`]):
//!
//! * **PNS (proximity neighbor selection)** — when a k-bucket overflows,
//!   keep the underlay-closer contact instead of applying pure LRU. XOR
//!   correctness is untouched (any contact in the right bucket works), but
//!   routing tables fill with nearby peers.
//! * **PR (proximity routing)** — among the equally-useful next-hop
//!   candidates of a lookup round, query the underlay-closest first.
//!
//! Experiment E9 measures the resulting drop in inter-AS hops per lookup
//! at unchanged success rates and hop counts.

#![forbid(unsafe_code)]

pub mod gsh;
pub mod id;
pub mod kbucket;
pub mod network;

pub use gsh::ScopedDht;
pub use id::Key;
pub use kbucket::{Contact, RoutingTable};
pub use network::{DhtConfig, DhtNetwork, LookupOutcome, ProximityMode};
