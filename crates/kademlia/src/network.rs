//! The DHT network: joins, iterative lookups, store/retrieve, and the
//! per-lookup underlay accounting experiment E9 consumes.
//!
//! Lookups are executed synchronously (each RPC's latency and AS path are
//! taken from the underlay and accumulated) — the protocol is interactive
//! request/response, so a synchronous driver measures exactly what an
//! event-per-message driver would, at a fraction of the cost.

use crate::id::Key;
use crate::kbucket::{Contact, OverflowPolicy, RoutingTable};
use std::collections::{BTreeMap, BTreeSet};
use uap_net::{HostId, TrafficCategory, Underlay};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Underlay-awareness switches (Kaune et al. \[17\]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProximityMode {
    /// Vanilla Kademlia: LRU buckets, XOR-ordered querying.
    None,
    /// Proximity neighbor selection only (bucket overflow prefers near).
    Pns,
    /// PNS plus proximity routing (query near candidates first).
    PnsPr,
}

/// DHT parameters.
#[derive(Clone, Copy, Debug)]
pub struct DhtConfig {
    /// Bucket capacity (classic k = 20; smaller for small sims).
    pub k: usize,
    /// Lookup parallelism α.
    pub alpha: usize,
    /// Underlay-awareness mode.
    pub proximity: ProximityMode,
    /// Average bytes of one RPC message (request or response).
    pub rpc_bytes: u64,
    /// Retransmit attempts after an RPC timeout before the contact is
    /// declared dead (0 = classic immediate prune, the pre-recovery
    /// behavior and the default).
    pub rpc_retries: u32,
    /// Base RPC timeout in microseconds; retransmit attempt `i` waits
    /// `rpc_timeout_us << i` (deterministic exponential backoff).
    pub rpc_timeout_us: u64,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            k: 8,
            alpha: 3,
            proximity: ProximityMode::None,
            rpc_bytes: 100,
            rpc_retries: 0,
            rpc_timeout_us: 500_000,
        }
    }
}

/// What one lookup cost and returned.
#[derive(Clone, Debug, Default)]
pub struct LookupOutcome {
    /// Closest contacts found (k of them), closest first.
    pub closest: Vec<Contact>,
    /// RPC round trips issued.
    pub rpcs: u64,
    /// RPCs whose underlay path crossed AS boundaries.
    pub inter_as_rpcs: u64,
    /// Sum of AS-hop distances over all RPCs (mean = `as_hops_sum / rpcs`).
    pub as_hops_sum: u64,
    /// Iterative rounds until convergence.
    pub rounds: u32,
    /// Total time: the per-round maximum RTT, summed.
    pub latency_us: u64,
    /// Retransmit attempts issued after timeouts (0 unless
    /// `rpc_retries > 0` and some contact failed to answer).
    pub retransmits: u64,
    /// Total backoff time spent waiting on timed-out RPCs, in µs.
    pub timeout_wait_us: u64,
}

struct NodeState {
    key: Key,
    table: RoutingTable,
    storage: BTreeMap<Key, u64>,
    online: bool,
}

/// A whole DHT over an underlay.
pub struct DhtNetwork {
    /// The underlay (owned; transfers are charged to its ledger).
    pub underlay: Underlay,
    /// Structured trace collector (disabled by default; swap one in with
    /// [`std::mem::take`]-style replacement to record `kademlia` lookup
    /// hop traces, timestamped with the ledger clock).
    pub tracer: Tracer,
    cfg: DhtConfig,
    nodes: Vec<NodeState>,
    by_key: BTreeMap<Key, HostId>,
    clock: SimTime,
    /// Lookup scratch (taken with `std::mem::take` for the duration of a
    /// lookup) so the iterative FIND_NODE loop allocates nothing per
    /// round — the alloc pass in `xtask analyze` ratchets this.
    lk_candidates: Vec<Contact>,
    lk_learned: Vec<Contact>,
    lk_resp: Vec<Contact>,
    lk_queried: BTreeSet<Key>,
    lk_dead: BTreeSet<Key>,
}

impl DhtNetwork {
    /// Creates the network: one DHT node per underlay host (random keys),
    /// then joins them all in host order (each bootstraps off host 0 and
    /// performs a self-lookup, the standard join).
    pub fn build(underlay: Underlay, cfg: DhtConfig, rng: &mut SimRng) -> DhtNetwork {
        Self::build_with_keys(underlay, cfg, rng, |_, k| k)
    }

    /// Like [`DhtNetwork::build`], but every node's random key is passed
    /// through `key_map(host_index, key)` first — the hook geographically
    /// scoped hashing uses to stamp zone prefixes onto node identifiers.
    pub fn build_with_keys<F>(
        underlay: Underlay,
        cfg: DhtConfig,
        rng: &mut SimRng,
        key_map: F,
    ) -> DhtNetwork
    where
        F: Fn(usize, Key) -> Key,
    {
        let n = underlay.n_hosts();
        assert!(n >= 2, "a DHT needs at least two nodes");
        let policy = match cfg.proximity {
            ProximityMode::None => OverflowPolicy::KeepOld,
            ProximityMode::Pns | ProximityMode::PnsPr => OverflowPolicy::PreferNear,
        };
        let mut nodes = Vec::with_capacity(n);
        let mut by_key = BTreeMap::new();
        for i in 0..n {
            let key = key_map(i, Key::random(rng));
            by_key.insert(key, HostId(i as u32));
            nodes.push(NodeState {
                key,
                table: RoutingTable::new(key, cfg.k, policy),
                storage: BTreeMap::new(),
                online: true,
            });
        }
        let mut net = DhtNetwork {
            underlay,
            tracer: Tracer::disabled(),
            cfg,
            nodes,
            by_key,
            clock: SimTime::ZERO,
            lk_candidates: Vec::new(),
            lk_learned: Vec::new(),
            lk_resp: Vec::new(),
            lk_queried: BTreeSet::new(),
            lk_dead: BTreeSet::new(),
        };
        // Joins: node i learns node 0 (or a random earlier node) and
        // self-looks-up to populate its table; earlier nodes learn the
        // newcomer from the RPCs they answer.
        for i in 1..n {
            let bootstrap = HostId(rng.index(i) as u32);
            let me = HostId(i as u32);
            let c = net.contact_of(bootstrap, me);
            net.nodes[i].table.observe(c);
            let own = net.nodes[i].key;
            net.lookup(me, &own, rng);
        }
        net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DHT is empty (never true after build).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's DHT key.
    pub fn key_of(&self, h: HostId) -> Key {
        self.node(h).key
    }

    /// Whether a node is online.
    pub fn is_online(&self, h: HostId) -> bool {
        self.node(h).online
    }

    /// Takes a node offline (churn).
    pub fn set_online(&mut self, h: HostId, online: bool) {
        self.node_mut(h).online = online;
    }

    fn node(&self, h: HostId) -> &NodeState {
        self.nodes
            .get(h.idx())
            .expect("DHT has one node per underlay host") // lint:allow(expect)
    }

    fn node_mut(&mut self, h: HostId) -> &mut NodeState {
        self.nodes
            .get_mut(h.idx())
            .expect("DHT has one node per underlay host") // lint:allow(expect)
    }

    /// Mean AS-hop distance of all routing-table contacts — the table-
    /// composition effect of PNS.
    pub fn mean_table_as_hops(&self) -> f64 {
        let sum: f64 = self
            .nodes
            .iter()
            .map(|n| n.table.mean_contact_as_hops())
            .sum();
        sum / self.nodes.len() as f64
    }

    fn contact_of(&self, h: HostId, relative_to: HostId) -> Contact {
        Contact {
            key: self.node(h).key,
            host: h,
            as_hops: self.underlay.as_hops(relative_to, h).unwrap_or(u32::MAX),
        }
    }

    /// One RPC round trip from `from` to `to`; returns the RTT and charges
    /// the ledger. `None` means timeout: the target is offline, or the
    /// underlay has no route between the pair (a fault-epoch partition).
    /// With `rpc_retries > 0`, a timeout first runs a deterministic
    /// exponential-backoff retransmit loop — each attempt re-sends the
    /// request (charged to the ledger) and doubles the wait — before the
    /// caller's prune path sees the `None`.
    fn rpc(&mut self, from: HostId, to: HostId, out: &mut LookupOutcome) -> Option<u64> {
        out.rpcs += 1;
        let cat = self
            .underlay
            .account_transfer(self.clock, from, to, self.cfg.rpc_bytes);
        if cat != TrafficCategory::IntraAs {
            out.inter_as_rpcs += 1;
        }
        out.as_hops_sum += self.underlay.as_hops(from, to).unwrap_or(0) as u64;
        let rtt = if self.node(to).online {
            self.underlay
                .account_transfer(self.clock, to, from, self.cfg.rpc_bytes);
            // The responder learns the caller (standard Kademlia liveness).
            let caller = self.contact_of(from, to);
            self.node_mut(to).table.observe(caller);
            self.underlay.rtt_us(from, to)
        } else {
            None // request lost; timeout
        };
        if rtt.is_none() && self.cfg.rpc_retries > 0 {
            let mut wait = self.cfg.rpc_timeout_us;
            for attempt in 1..=self.cfg.rpc_retries {
                out.retransmits += 1;
                out.timeout_wait_us = out.timeout_wait_us.saturating_add(wait);
                self.tracer
                    .emit(self.clock, "kademlia", TraceLevel::Debug, "rpc.retry", {
                        move |f| {
                            f.u64("from", from.0 as u64)
                                .u64("to", to.0 as u64)
                                .u64("attempt", attempt as u64)
                                .u64("wait_us", wait);
                        }
                    });
                // Retransmitting costs another request on the wire (the
                // target never answers, so no response bytes).
                self.underlay
                    .account_transfer(self.clock, from, to, self.cfg.rpc_bytes);
                wait = wait.saturating_mul(2);
            }
            // The last retransmit's own timeout elapses before giving up.
            out.timeout_wait_us = out.timeout_wait_us.saturating_add(wait);
        }
        rtt
    }

    /// First 8 bytes of a key as an integer — a stable, compact label for
    /// trace events (full 160-bit keys would bloat every line).
    fn key_prefix(k: &Key) -> u64 {
        u64::from_be_bytes([
            k.0[0], k.0[1], k.0[2], k.0[3], k.0[4], k.0[5], k.0[6], k.0[7],
        ])
    }

    /// Iterative FIND_NODE lookup from `from` towards `target`.
    pub fn lookup(&mut self, from: HostId, target: &Key, _rng: &mut SimRng) -> LookupOutcome {
        let mut out = LookupOutcome::default();
        // Every event the lookup emits — start, hops, retransmits, done —
        // carries this span id; the driver's ambient provenance is restored
        // when the lookup returns.
        let span = self.tracer.alloc_span();
        let prev_prov = self.tracer.provenance();
        self.tracer.set_span(Some(span));
        self.tracer
            .emit(self.clock, "kademlia", TraceLevel::Debug, "span.open", {
                let target_pfx = Self::key_prefix(target);
                move |f| {
                    f.str("span_kind", "lookup")
                        .u64("from", from.0 as u64)
                        .u64("target", target_pfx);
                }
            });
        self.tracer
            .emit(self.clock, "kademlia", TraceLevel::Debug, "lookup.start", {
                let target_pfx = Self::key_prefix(target);
                move |f| {
                    f.u64("from", from.0 as u64).u64("target", target_pfx);
                }
            });
        let me = self.nodes[from.idx()].key;
        let mut shortlist: Vec<Contact> = self.nodes[from.idx()].table.closest(target, self.cfg.k);
        // Per-lookup scratch, reused across lookups (taken so the RPC loop
        // below can still borrow `self` mutably).
        let mut queried = std::mem::take(&mut self.lk_queried);
        let mut dead = std::mem::take(&mut self.lk_dead);
        let mut candidates = std::mem::take(&mut self.lk_candidates);
        let mut learned = std::mem::take(&mut self.lk_learned);
        let mut resp = std::mem::take(&mut self.lk_resp);
        queried.clear();
        dead.clear();
        queried.insert(me);
        loop {
            out.rounds += 1;
            // Candidates this round: unqueried entries of the shortlist.
            candidates.clear();
            candidates.extend(
                shortlist
                    .iter()
                    .filter(|c| !queried.contains(&c.key))
                    .copied(),
            );
            if candidates.is_empty() {
                break;
            }
            if self.cfg.proximity == ProximityMode::PnsPr {
                // Proximity routing: among the top 2α XOR-candidates, call
                // the underlay-closest first. The pool stays XOR-bounded so
                // convergence is unaffected.
                let pool = candidates.len().min(2 * self.cfg.alpha);
                candidates[..pool].sort_by_key(|c| (c.as_hops, c.key.0));
            }
            candidates.truncate(self.cfg.alpha);
            let asked = candidates.len();
            let mut round_rtt = 0u64;
            learned.clear();
            for &c in &candidates {
                queried.insert(c.key);
                let wait_before = out.timeout_wait_us;
                match self.rpc(from, c.host, &mut out) {
                    Some(rtt) => {
                        round_rtt = round_rtt.max(rtt);
                        // The responder returns its k closest to target.
                        self.nodes[c.host.idx()]
                            .table
                            .closest_into(target, self.cfg.k, &mut resp);
                        for &(mut r) in &resp {
                            if r.key == me {
                                continue;
                            }
                            // Re-base the cached AS distance on the caller.
                            r.as_hops = self.underlay.as_hops(from, r.host).unwrap_or(u32::MAX);
                            learned.push(r);
                        }
                    }
                    None => {
                        // Timeout: drop the dead contact and remember it so
                        // other nodes' stale tables can't re-suggest it. Any
                        // backoff the retransmit loop spent waiting bounds
                        // this round's duration like a slow RTT would.
                        round_rtt = round_rtt.max(out.timeout_wait_us - wait_before);
                        dead.insert(c.key);
                        self.nodes[from.idx()].table.remove(&c.key);
                        shortlist.retain(|e| e.key != c.key);
                    }
                }
            }
            out.latency_us += round_rtt;
            self.tracer
                .emit(self.clock, "kademlia", TraceLevel::Debug, "lookup.hop", {
                    let round = out.rounds;
                    let rpcs = out.rpcs;
                    move |f| {
                        f.u64("from", from.0 as u64)
                            .u64("round", round as u64)
                            .u64("asked", asked as u64)
                            .u64("rpcs", rpcs)
                            .u64("round_rtt_us", round_rtt);
                    }
                });
            let before_best = shortlist.first().map(|c| c.key);
            for &l in &learned {
                if dead.contains(&l.key) {
                    continue;
                }
                if self.nodes[l.host.idx()].online {
                    self.nodes[from.idx()].table.observe(l);
                }
                if !shortlist.iter().any(|e| e.key == l.key) {
                    shortlist.push(l);
                }
            }
            shortlist.sort_by(|a, b| target.cmp_distance(&a.key, &b.key));
            shortlist.truncate(self.cfg.k);
            let after_best = shortlist.first().map(|c| c.key);
            // Terminate when the k-closest set is fully queried or the best
            // stopped improving and everything in range was asked.
            let all_queried = shortlist.iter().all(|c| queried.contains(&c.key));
            if all_queried || (before_best == after_best && out.rounds > 20) {
                break;
            }
        }
        self.lk_queried = queried;
        self.lk_dead = dead;
        self.lk_candidates = candidates;
        self.lk_learned = learned;
        self.lk_resp = resp;
        self.tracer
            .emit(self.clock, "kademlia", TraceLevel::Debug, "lookup.done", {
                let best = shortlist
                    .first()
                    .map(|c| Self::key_prefix(&c.key))
                    .unwrap_or(0);
                let (rounds, rpcs, inter, lat) =
                    (out.rounds, out.rpcs, out.inter_as_rpcs, out.latency_us);
                move |f| {
                    f.u64("from", from.0 as u64)
                        .u64("rounds", rounds as u64)
                        .u64("rpcs", rpcs)
                        .u64("inter_as_rpcs", inter)
                        .u64("latency_us", lat)
                        .u64("best", best);
                }
            });
        // The lookup is synchronous (the ledger clock does not advance), so
        // the close carries the modeled latency explicitly.
        self.tracer
            .emit(self.clock, "kademlia", TraceLevel::Debug, "span.close", {
                let (found, dur) = (!shortlist.is_empty(), out.latency_us);
                move |f| {
                    f.str("span_kind", "lookup")
                        .bool("found", found)
                        .u64("dur_us", dur);
                }
            });
        self.tracer.set_provenance(prev_prov);
        out.closest = shortlist;
        out
    }

    /// Stores `value` under `key` on the k closest nodes. Returns the
    /// lookup outcome plus the number of replicas written.
    pub fn store(
        &mut self,
        from: HostId,
        key: &Key,
        value: u64,
        rng: &mut SimRng,
    ) -> (LookupOutcome, usize) {
        let mut out = self.lookup(from, key, rng);
        let targets: Vec<HostId> = out.closest.iter().map(|c| c.host).collect();
        let mut written = 0;
        for t in targets {
            if self.rpc(from, t, &mut out).is_some() {
                self.nodes[t.idx()].storage.insert(*key, value);
                written += 1;
            }
        }
        (out, written)
    }

    /// Retrieves a value: lookup, then ask the closest nodes. Returns the
    /// value if any replica answered.
    pub fn retrieve(
        &mut self,
        from: HostId,
        key: &Key,
        rng: &mut SimRng,
    ) -> (LookupOutcome, Option<u64>) {
        let mut out = self.lookup(from, key, rng);
        let targets: Vec<HostId> = out.closest.iter().map(|c| c.host).collect();
        for t in targets {
            if self.rpc(from, t, &mut out).is_some() {
                if let Some(&v) = self.nodes[t.idx()].storage.get(key) {
                    return (out, Some(v));
                }
            }
        }
        (out, None)
    }

    /// Ground truth: the `count` online node keys closest to `target`.
    pub fn true_closest(&self, target: &Key, count: usize) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .nodes
            .iter()
            .filter(|n| n.online)
            .map(|n| n.key)
            .collect();
        keys.sort_by(|a, b| target.cmp_distance(a, b));
        keys.truncate(count);
        keys
    }

    /// The host owning a key (for tests).
    pub fn host_of_key(&self, key: &Key) -> Option<HostId> {
        self.by_key.get(key).copied()
    }

    /// Advances the ledger clock (lookups are timestamped with it).
    pub fn advance_clock(&mut self, dt: SimTime) {
        self.clock += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_net::{PopulationSpec, TopologyKind, TopologySpec, UnderlayConfig};

    fn underlay(n: usize, seed: u64) -> Underlay {
        let mut rng = SimRng::new(seed);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    fn network(n: usize, mode: ProximityMode, seed: u64) -> (DhtNetwork, SimRng) {
        let mut rng = SimRng::new(seed);
        let cfg = DhtConfig {
            proximity: mode,
            ..Default::default()
        };
        let net = DhtNetwork::build(underlay(n, seed), cfg, &mut rng);
        (net, rng)
    }

    #[test]
    fn lookups_find_the_true_closest_node() {
        let (mut net, mut rng) = network(128, ProximityMode::None, 1);
        let mut exact = 0;
        for i in 0..40 {
            let target = Key::random(&mut rng);
            let from = HostId((i * 3) % 128);
            let out = net.lookup(from, &target, &mut rng);
            assert!(!out.closest.is_empty());
            let truth = net.true_closest(&target, 1)[0];
            if out.closest[0].key == truth {
                exact += 1;
            }
        }
        assert!(
            exact >= 36,
            "only {exact}/40 lookups found the closest node"
        );
    }

    #[test]
    fn store_and_retrieve_round_trip() {
        let (mut net, mut rng) = network(64, ProximityMode::None, 2);
        let key = Key::hash_of(b"the-file");
        let (_, written) = net.store(HostId(5), &key, 777, &mut rng);
        assert!(written >= net_cfg_k_min(&net), "only {written} replicas");
        let (_, got) = net.retrieve(HostId(40), &key, &mut rng);
        assert_eq!(got, Some(777));
    }

    fn net_cfg_k_min(_net: &DhtNetwork) -> usize {
        4 // at least half the default k of 8
    }

    #[test]
    fn retrieve_missing_key_is_none() {
        let (mut net, mut rng) = network(32, ProximityMode::None, 3);
        let (_, got) = net.retrieve(HostId(1), &Key::hash_of(b"never-stored"), &mut rng);
        assert_eq!(got, None);
    }

    #[test]
    fn pns_reduces_table_as_distance() {
        let (vanilla, _) = network(128, ProximityMode::None, 4);
        let (pns, _) = network(128, ProximityMode::Pns, 4);
        assert!(
            pns.mean_table_as_hops() < vanilla.mean_table_as_hops(),
            "pns {} !< vanilla {}",
            pns.mean_table_as_hops(),
            vanilla.mean_table_as_hops()
        );
    }

    #[test]
    fn pns_reduces_inter_as_lookup_traffic_without_hurting_success() {
        let run = |mode| {
            let (mut net, mut rng) = network(128, mode, 5);
            net.underlay.reset_traffic();
            let mut inter = 0u64;
            let mut total = 0u64;
            let mut exact = 0;
            for i in 0..60u32 {
                let target = Key::random(&mut rng);
                let from = HostId((i * 2) % 128);
                let out = net.lookup(from, &target, &mut rng);
                inter += out.inter_as_rpcs;
                total += out.rpcs;
                if out.closest.first().map(|c| c.key)
                    == net.true_closest(&target, 1).first().copied()
                {
                    exact += 1;
                }
            }
            (inter as f64 / total as f64, exact)
        };
        let (frac_vanilla, succ_vanilla) = run(ProximityMode::None);
        let (frac_pnspr, succ_pnspr) = run(ProximityMode::PnsPr);
        assert!(
            frac_pnspr < frac_vanilla,
            "inter-AS fraction {frac_pnspr} !< {frac_vanilla}"
        );
        assert!(succ_pnspr as f64 >= 0.9 * succ_vanilla as f64);
    }

    #[test]
    fn lookups_survive_churn() {
        let (mut net, mut rng) = network(96, ProximityMode::None, 6);
        // Kill 25% of nodes.
        for i in 0..24u32 {
            net.set_online(HostId(i * 4 + 1), false);
        }
        let key = Key::hash_of(b"stored-before-churn");
        // Store after churn so replicas land on online nodes.
        let (_, written) = net.store(HostId(0), &key, 42, &mut rng);
        assert!(written > 0);
        let (out, got) = net.retrieve(HostId(50), &key, &mut rng);
        assert_eq!(got, Some(42));
        assert!(out.rpcs > 0);
    }

    #[test]
    fn offline_target_counts_as_timeout_and_is_pruned() {
        let (mut net, mut rng) = network(32, ProximityMode::None, 7);
        net.set_online(HostId(3), false);
        // Lookups that would touch node 3 should still converge.
        for _ in 0..10 {
            let t = Key::random(&mut rng);
            let out = net.lookup(HostId(0), &t, &mut rng);
            assert!(!out.closest.iter().any(|c| c.host == HostId(3)));
        }
    }

    #[test]
    fn default_config_never_retransmits() {
        let (mut net, mut rng) = network(32, ProximityMode::None, 7);
        net.set_online(HostId(3), false);
        for _ in 0..10 {
            let t = Key::random(&mut rng);
            let out = net.lookup(HostId(0), &t, &mut rng);
            assert_eq!(out.retransmits, 0);
            assert_eq!(out.timeout_wait_us, 0);
        }
    }

    #[test]
    fn retransmits_back_off_then_prune_the_dead_contact() {
        let build = || {
            let mut rng = SimRng::new(7);
            let cfg = DhtConfig {
                rpc_retries: 2,
                rpc_timeout_us: 250_000,
                ..Default::default()
            };
            let net = DhtNetwork::build(underlay(32, 7), cfg, &mut rng);
            (net, rng)
        };
        let run = |(mut net, mut rng): (DhtNetwork, SimRng)| {
            net.tracer = Tracer::buffered(TraceLevel::Debug);
            net.set_online(HostId(3), false);
            let mut total_retransmits = 0u64;
            let mut total_wait = 0u64;
            let mut outs = Vec::new();
            for _ in 0..10 {
                let t = Key::random(&mut rng);
                let out = net.lookup(HostId(0), &t, &mut rng);
                // Retransmits never resurrect a dead contact — the prune
                // path still runs after the backoff loop gives up.
                assert!(!out.closest.iter().any(|c| c.host == HostId(3)));
                total_retransmits += out.retransmits;
                total_wait += out.timeout_wait_us;
                outs.push((
                    out.rpcs,
                    out.retransmits,
                    out.timeout_wait_us,
                    out.latency_us,
                ));
            }
            (total_retransmits, total_wait, outs, net.tracer.to_jsonl())
        };
        let (retransmits, wait, outs, trace) = run(build());
        assert!(
            retransmits > 0,
            "lookups near an offline node must retransmit before pruning"
        );
        // Each timed-out RPC waits 250ms + 500ms (two retransmits) plus the
        // final 1s timeout = 1.75s of backoff per dead contact hit.
        assert_eq!(wait, (retransmits / 2) * 1_750_000);
        assert!(trace.contains("\"k\":\"rpc.retry\""));
        assert!(trace.contains("\"wait_us\":250000"));
        assert!(trace.contains("\"wait_us\":500000"));
        // Backoff waits bound the round like a slow RTT: every lookup that
        // retransmitted must report at least the full backoff as latency.
        for (_, r, w, lat) in &outs {
            if *r > 0 {
                assert!(lat >= w, "latency {lat} must cover backoff wait {w}");
            }
        }
        let (retransmits2, wait2, outs2, trace2) = run(build());
        assert_eq!((retransmits, wait, outs), (retransmits2, wait2, outs2));
        assert_eq!(trace, trace2, "retransmit runs must be byte-identical");
    }

    #[test]
    fn lookup_hops_are_traced_deterministically() {
        let trace = || {
            let (mut net, mut rng) = network(64, ProximityMode::PnsPr, 11);
            net.tracer = Tracer::buffered(TraceLevel::Debug);
            for i in 0..5u32 {
                let t = Key::random(&mut rng);
                net.lookup(HostId(i), &t, &mut rng);
            }
            net.tracer.to_jsonl()
        };
        let a = trace();
        assert!(a.contains("\"k\":\"lookup.start\""));
        assert!(a.contains("\"k\":\"lookup.hop\""));
        assert!(a.contains("\"k\":\"lookup.done\""));
        assert_eq!(a, trace(), "same-seed lookup traces must be byte-identical");
    }

    #[test]
    fn build_is_deterministic() {
        let (a, _) = network(64, ProximityMode::Pns, 8);
        let (b, _) = network(64, ProximityMode::Pns, 8);
        for i in 0..64 {
            assert_eq!(a.key_of(HostId(i)), b.key_of(HostId(i)));
        }
        assert_eq!(a.mean_table_as_hops(), b.mean_table_as_hops());
    }

    #[test]
    fn lookup_latency_and_rounds_reported() {
        let (mut net, mut rng) = network(64, ProximityMode::None, 9);
        let out = net.lookup(HostId(0), &Key::random(&mut rng), &mut rng);
        assert!(out.rounds >= 1);
        assert!(out.rpcs >= 1);
        assert!(out.latency_us > 0);
    }

    #[test]
    fn lookups_hit_route_cache_and_export_metrics() {
        let (mut net, mut rng) = network(64, ProximityMode::None, 10);
        for i in 0..5u32 {
            let t = Key::random(&mut rng);
            net.lookup(HostId(i), &t, &mut rng);
        }
        // Every inter-AS RPC answers its RTT from the precomputed AS-pair
        // cache, so a handful of lookups must register hits.
        let (hits, misses) = net.underlay.route_cache_stats();
        assert!(hits > 0, "inter-AS RPCs should hit the route cache");
        let mut m = uap_sim::Metrics::new();
        net.underlay.export_route_cache_metrics(&mut m);
        assert_eq!(m.counter("net.route_cache.hit"), hits);
        assert_eq!(m.counter("net.route_cache.miss"), misses);
    }
}
