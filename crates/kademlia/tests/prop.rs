//! Property-based tests for the XOR metric and k-bucket invariants.

use proptest::prelude::*;
use uap_kademlia::kbucket::{Contact, OverflowPolicy};
use uap_kademlia::{Key, RoutingTable};
use uap_net::HostId;
use uap_sim::SimRng;

fn key_from(bytes: [u8; 20]) -> Key {
    Key(bytes)
}

proptest! {
    /// XOR metric axioms: identity, symmetry, and the XOR "triangle
    /// equality" d(a,c) = d(a,b) ^ d(b,c).
    #[test]
    fn xor_metric_axioms(a in any::<[u8; 20]>(), b in any::<[u8; 20]>(), c in any::<[u8; 20]>()) {
        let (a, b, c) = (key_from(a), key_from(b), key_from(c));
        prop_assert_eq!(a.distance(&a), Key::ZERO);
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        let ab = a.distance(&b);
        let bc = b.distance(&c);
        let mut x = [0u8; 20];
        for (i, slot) in x.iter_mut().enumerate() {
            *slot = ab.0[i] ^ bc.0[i];
        }
        prop_assert_eq!(Key(x), a.distance(&c));
    }

    /// bucket_index is consistent with the metric: all keys in bucket i
    /// are closer than any key in bucket j > i by at least a factor
    /// structure (their distances have the high bit at position i / j).
    #[test]
    fn bucket_index_matches_high_bit(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
        let (a, b) = (key_from(a), key_from(b));
        if let Some(i) = a.bucket_index(&b) {
            let d = a.distance(&b);
            // The highest set bit of d must be at position i (counting
            // from the least significant bit 0 to 159).
            let byte = d.0[19 - i / 8];
            prop_assert!(byte >> (i % 8) & 1 == 1);
            // No higher bit set.
            let mut higher_clear = true;
            for bit in (i + 1)..160 {
                let byte = d.0[19 - bit / 8];
                if byte >> (bit % 8) & 1 == 1 {
                    higher_clear = false;
                }
            }
            prop_assert!(higher_clear);
        } else {
            prop_assert_eq!(a, b);
        }
    }

    /// Routing-table invariants under arbitrary observation sequences:
    /// no bucket exceeds k, no duplicates, self never stored, closest()
    /// is sorted.
    #[test]
    fn routing_table_invariants(seed in any::<u64>(), k in 1usize..8, n_ops in 1usize..300) {
        let mut rng = SimRng::new(seed);
        let own = Key::random(&mut rng);
        for policy in [OverflowPolicy::KeepOld, OverflowPolicy::PreferNear] {
            let mut t = RoutingTable::new(own, k, policy);
            let mut keys = vec![own];
            for i in 0..n_ops {
                // Mix of new keys and re-observations.
                let key = if i % 4 == 0 && keys.len() > 1 {
                    keys[rng.index(keys.len())]
                } else {
                    let fresh = Key::random(&mut rng);
                    keys.push(fresh);
                    fresh
                };
                t.observe(Contact {
                    key,
                    host: HostId(i as u32),
                    as_hops: rng.below(6) as u32,
                });
            }
            for (i, s) in t.bucket_sizes().iter().enumerate() {
                prop_assert!(*s <= k, "bucket {i} holds {s} > k={k}");
            }
            let all = t.closest(&own, usize::MAX);
            let mut seen = std::collections::HashSet::new();
            for c in &all {
                prop_assert!(c.key != own, "self stored");
                prop_assert!(seen.insert(c.key), "duplicate contact");
            }
            // closest() ordering.
            let target = Key::random(&mut rng);
            let sorted = t.closest(&target, 16);
            for w in sorted.windows(2) {
                prop_assert_ne!(
                    target.cmp_distance(&w[0].key, &w[1].key),
                    std::cmp::Ordering::Greater
                );
            }
        }
    }
}
