//! The AS-level ISP graph.
//!
//! The paper (§2.1) describes the Internet as "built on two types of ISPs:
//! Local ISPs that provide connectivity services in limited geographical
//! areas, and Transit ISPs that act on a global plane", ordered in a
//! hierarchy (Figure 1) where solid lines are **peering** connections and
//! dashed ones are **transit** connections with monetary flow from customer
//! to provider. [`AsGraph`] captures exactly that structure.

use crate::geo::GeoPoint;
use crate::ids::AsId;

/// Position of an ISP in the Internet hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// Global transit ISP (top of Figure 1).
    Tier1,
    /// Regional ISP.
    Tier2,
    /// Local/stub ISP — where end users attach.
    Tier3,
}

/// Kind of inter-AS link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkKind {
    /// Customer–provider (transit) link. By convention the link's `a`
    /// endpoint is the **provider** and `b` the **customer**; traffic on it
    /// is billed to the customer.
    Transit,
    /// Settlement-free peering between (usually same-tier) ISPs.
    Peering,
}

/// The relationship of AS `x` towards AS `y` on a direct link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relationship {
    /// `x` sells transit to `y`.
    ProviderOf,
    /// `x` buys transit from `y`.
    CustomerOf,
    /// `x` peers with `y`.
    PeerWith,
}

/// One Autonomous System.
#[derive(Clone, Debug)]
pub struct AsNode {
    /// Identifier (also the index into [`AsGraph::nodes`]).
    pub id: AsId,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Geographic centre of the ISP's service area.
    pub geo_center: GeoPoint,
    /// Radius of the service area in kilometres (hosts scatter within it).
    pub service_radius_km: f64,
}

/// One inter-AS link.
#[derive(Clone, Debug)]
pub struct AsLink {
    /// First endpoint; for [`LinkKind::Transit`] links, the **provider**.
    pub a: AsId,
    /// Second endpoint; for [`LinkKind::Transit`] links, the **customer**.
    pub b: AsId,
    /// Link kind (transit or peering).
    pub kind: LinkKind,
    /// One-way propagation latency in microseconds.
    pub latency_us: u64,
    /// Capacity in Mbit/s (used by the cost model and congestion metrics).
    pub capacity_mbps: f64,
}

impl AsLink {
    /// The endpoint opposite `x`, or `None` if `x` is not an endpoint.
    pub fn other(&self, x: AsId) -> Option<AsId> {
        if self.a == x {
            Some(self.b)
        } else if self.b == x {
            Some(self.a)
        } else {
            None
        }
    }
}

/// The AS-level graph.
#[derive(Clone, Debug, Default)]
pub struct AsGraph {
    /// All ASes, indexed by [`AsId`].
    pub nodes: Vec<AsNode>,
    /// All inter-AS links.
    pub links: Vec<AsLink>,
    adj: Vec<Vec<u32>>,
}

impl AsGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no ASes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an AS and returns its id.
    pub fn add_as(&mut self, tier: Tier, geo_center: GeoPoint, service_radius_km: f64) -> AsId {
        let id = AsId(u16::try_from(self.nodes.len()).expect("too many ASes")); // lint:allow(expect)
        self.nodes.push(AsNode {
            id,
            tier,
            geo_center,
            service_radius_km,
        });
        self.adj.push(Vec::new());
        id
    }

    fn add_link(&mut self, link: AsLink) -> u32 {
        assert!(link.a != link.b, "self-link on {}", link.a);
        assert!(
            link.a.idx() < self.nodes.len() && link.b.idx() < self.nodes.len(),
            "link endpoint out of range"
        );
        debug_assert!(
            self.link_between(link.a, link.b).is_none(),
            "duplicate link {} - {}",
            link.a,
            link.b
        );
        let idx = u32::try_from(self.links.len()).expect("too many links"); // lint:allow(expect)
        self.adj[link.a.idx()].push(idx);
        self.adj[link.b.idx()].push(idx);
        self.links.push(link);
        idx
    }

    /// Adds a transit link: `customer` buys connectivity from `provider`.
    /// Returns the link index.
    pub fn add_transit(
        &mut self,
        provider: AsId,
        customer: AsId,
        latency_us: u64,
        capacity_mbps: f64,
    ) -> u32 {
        self.add_link(AsLink {
            a: provider,
            b: customer,
            kind: LinkKind::Transit,
            latency_us,
            capacity_mbps,
        })
    }

    /// Adds a settlement-free peering link. Returns the link index.
    pub fn add_peering(&mut self, x: AsId, y: AsId, latency_us: u64, capacity_mbps: f64) -> u32 {
        self.add_link(AsLink {
            a: x,
            b: y,
            kind: LinkKind::Peering,
            latency_us,
            capacity_mbps,
        })
    }

    /// Link indices incident to `x`.
    pub fn incident(&self, x: AsId) -> &[u32] {
        &self.adj[x.idx()]
    }

    /// Neighbors of `x` with the connecting link index.
    pub fn neighbors(&self, x: AsId) -> impl Iterator<Item = (AsId, u32)> + '_ {
        self.adj[x.idx()].iter().map(move |&li| {
            let other = self.links[li as usize]
                .other(x)
                .expect("adjacency invariant"); // lint:allow(expect)
            (other, li)
        })
    }

    /// The link between `x` and `y`, if directly connected.
    pub fn link_between(&self, x: AsId, y: AsId) -> Option<u32> {
        self.adj[x.idx()]
            .iter()
            .copied()
            .find(|&li| self.links[li as usize].other(x) == Some(y))
    }

    /// The relationship of `x` towards `y` on their direct link, if any.
    pub fn relationship(&self, x: AsId, y: AsId) -> Option<Relationship> {
        let li = self.link_between(x, y)?;
        let link = &self.links[li as usize];
        Some(match link.kind {
            LinkKind::Peering => Relationship::PeerWith,
            LinkKind::Transit => {
                if link.a == x {
                    Relationship::ProviderOf
                } else {
                    Relationship::CustomerOf
                }
            }
        })
    }

    /// Providers of `x` (ASes `x` buys transit from).
    pub fn providers(&self, x: AsId) -> Vec<AsId> {
        self.neighbors(x)
            .filter(|&(y, _)| self.relationship(x, y) == Some(Relationship::CustomerOf))
            .map(|(y, _)| y)
            .collect()
    }

    /// Customers of `x`.
    pub fn customers(&self, x: AsId) -> Vec<AsId> {
        self.neighbors(x)
            .filter(|&(y, _)| self.relationship(x, y) == Some(Relationship::ProviderOf))
            .map(|(y, _)| y)
            .collect()
    }

    /// Peers of `x`.
    pub fn peers(&self, x: AsId) -> Vec<AsId> {
        self.neighbors(x)
            .filter(|&(y, _)| self.relationship(x, y) == Some(Relationship::PeerWith))
            .map(|(y, _)| y)
            .collect()
    }

    /// Number of links of each kind: `(transit, peering)`.
    pub fn link_counts(&self) -> (usize, usize) {
        let transit = self
            .links
            .iter()
            .filter(|l| l.kind == LinkKind::Transit)
            .count();
        (transit, self.links.len() - transit)
    }

    /// Whether the graph is connected, ignoring link direction semantics.
    /// An optional `dead_links` mask (by link index) excludes failed links.
    pub fn is_connected(&self, dead_links: Option<&[bool]>) -> bool {
        self.component_count(dead_links) <= 1
    }

    /// Number of connected components (0 for an empty graph), optionally
    /// excluding failed links.
    pub fn component_count(&self, dead_links: Option<&[bool]>) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(x) = stack.pop() {
                for &li in &self.adj[x] {
                    if let Some(mask) = dead_links {
                        if mask[li as usize] {
                            continue;
                        }
                    }
                    let y = self.links[li as usize]
                        .other(AsId::from_index(x))
                        .expect("adjacency invariant") // lint:allow(expect)
                        .idx();
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        components
    }

    /// Validates structural invariants; returns a description of the first
    /// violation found. Used by generators' tests.
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            if l.a == l.b {
                return Err(format!("link {i} is a self-loop on {}", l.a));
            }
            if l.latency_us == 0 {
                return Err(format!("link {i} has zero latency"));
            }
            if l.capacity_mbps <= 0.0 {
                return Err(format!("link {i} has non-positive capacity"));
            }
        }
        for x in 0..self.nodes.len() {
            for &li in &self.adj[x] {
                if self.links[li as usize].other(AsId::from_index(x)).is_none() {
                    return Err(format!("adjacency of AS{x} references foreign link {li}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AsGraph {
        let mut g = AsGraph::new();
        let t1 = g.add_as(Tier::Tier1, GeoPoint::new(0.0, 0.0), 500.0);
        let a = g.add_as(Tier::Tier3, GeoPoint::new(100.0, 0.0), 50.0);
        let b = g.add_as(Tier::Tier3, GeoPoint::new(0.0, 100.0), 50.0);
        g.add_transit(t1, a, 5_000, 10_000.0);
        g.add_transit(t1, b, 5_000, 10_000.0);
        g.add_peering(a, b, 2_000, 1_000.0);
        g
    }

    #[test]
    fn relationships() {
        let g = triangle();
        assert_eq!(
            g.relationship(AsId(0), AsId(1)),
            Some(Relationship::ProviderOf)
        );
        assert_eq!(
            g.relationship(AsId(1), AsId(0)),
            Some(Relationship::CustomerOf)
        );
        assert_eq!(
            g.relationship(AsId(1), AsId(2)),
            Some(Relationship::PeerWith)
        );
        assert_eq!(
            g.relationship(AsId(2), AsId(1)),
            Some(Relationship::PeerWith)
        );
    }

    #[test]
    fn provider_customer_peer_lists() {
        let g = triangle();
        assert_eq!(g.providers(AsId(1)), vec![AsId(0)]);
        assert_eq!(g.customers(AsId(0)), vec![AsId(1), AsId(2)]);
        assert_eq!(g.peers(AsId(1)), vec![AsId(2)]);
        assert!(g.providers(AsId(0)).is_empty());
    }

    #[test]
    fn link_counts_and_lookup() {
        let g = triangle();
        assert_eq!(g.link_counts(), (2, 1));
        assert!(g.link_between(AsId(1), AsId(2)).is_some());
        assert!(g.link_between(AsId(0), AsId(0)).is_none());
        let li = g.link_between(AsId(0), AsId(1)).unwrap();
        assert_eq!(g.links[li as usize].other(AsId(0)), Some(AsId(1)));
        assert_eq!(g.links[li as usize].other(AsId(5)), None);
    }

    #[test]
    fn connectivity() {
        let mut g = triangle();
        assert!(g.is_connected(None));
        assert_eq!(g.component_count(None), 1);
        let lonely = g.add_as(Tier::Tier3, GeoPoint::default(), 10.0);
        assert!(!g.is_connected(None));
        assert_eq!(g.component_count(None), 2);
        g.add_peering(AsId(1), lonely, 1_000, 100.0);
        assert!(g.is_connected(None));
    }

    #[test]
    fn dead_link_mask_cuts_graph() {
        let g = triangle();
        // Kill both transit links: AS0 is isolated, AS1-AS2 stay peered.
        let mask = vec![true, true, false];
        assert_eq!(g.component_count(Some(&mask)), 2);
    }

    #[test]
    fn validate_catches_bad_links() {
        let mut g = triangle();
        g.links[0].latency_us = 0;
        assert!(g.validate().unwrap_err().contains("zero latency"));
    }

    #[test]
    fn empty_graph() {
        let g = AsGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.component_count(None), 0);
        assert!(g.is_connected(None));
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_panics() {
        let mut g = AsGraph::new();
        let a = g.add_as(Tier::Tier3, GeoPoint::default(), 10.0);
        g.add_peering(a, a, 1_000, 100.0);
    }
}
