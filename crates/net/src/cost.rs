//! The ISP cost model of Figure 2.
//!
//! From §2.1: "transit traffic costs per Mbps are almost fixed resulting in
//! a proportional increase of costs with more traffic. […] However, between
//! local or so-called peering ISPs, the cost is just that of maintaining the
//! direct link between the two ISPs and is therefore constant. This results
//! in a cost per Mbps that is inversely proportional to the total exchanged
//! traffic." (after Norton's peering business case \[24\])
//!
//! [`CostParams`] captures the two tariffs; [`IspBill`] applies them to a
//! run's [`TrafficAccounting`].

use crate::asgraph::{AsGraph, LinkKind};
use crate::ids::AsId;
use crate::traffic::TrafficAccounting;
use uap_sim::SimTime;

/// Tariff parameters (monthly, USD).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Transit price per Mbps of 95th-percentile rate, per month.
    pub transit_usd_per_mbps: f64,
    /// Flat monthly cost of maintaining one peering link (port, cross-
    /// connect, amortized equipment).
    pub peering_flat_usd: f64,
}

impl Default for CostParams {
    /// Norton-era defaults: ~$20/Mbps transit, ~$2 000/month per peering
    /// port.
    fn default() -> Self {
        CostParams {
            transit_usd_per_mbps: 20.0,
            peering_flat_usd: 2_000.0,
        }
    }
}

impl CostParams {
    /// Monthly transit cost at a given 95th-percentile rate — the *linear*
    /// curve of Figure 2.
    pub fn transit_cost(&self, p95_mbps: f64) -> f64 {
        self.transit_usd_per_mbps * p95_mbps.max(0.0)
    }

    /// Monthly cost of `n` peering links — *constant* in traffic.
    pub fn peering_cost(&self, n_links: usize) -> f64 {
        self.peering_flat_usd * n_links as f64
    }

    /// Transit cost per Mbps — constant (Figure 2, upper curve).
    pub fn transit_cost_per_mbps(&self, _traffic_mbps: f64) -> f64 {
        self.transit_usd_per_mbps
    }

    /// Peering cost per Mbps for one link — inversely proportional to the
    /// exchanged traffic (Figure 2, lower curve).
    pub fn peering_cost_per_mbps(&self, traffic_mbps: f64) -> f64 {
        if traffic_mbps <= 0.0 {
            f64::INFINITY
        } else {
            self.peering_flat_usd / traffic_mbps
        }
    }

    /// Traffic level at which peering becomes cheaper per Mbps than transit
    /// (the crossover in Figure 2).
    pub fn crossover_mbps(&self) -> f64 {
        self.peering_flat_usd / self.transit_usd_per_mbps
    }
}

/// One AS's monthly bill under the cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IspBill {
    /// The billed AS.
    pub asn: AsId,
    /// 95th-percentile transit rate in Mbps.
    pub transit_p95_mbps: f64,
    /// Transit portion of the bill (USD/month).
    pub transit_usd: f64,
    /// Number of peering links this AS maintains.
    pub peering_links: usize,
    /// Peering portion of the bill (USD/month).
    pub peering_usd: f64,
}

impl IspBill {
    /// Total monthly cost.
    pub fn total_usd(&self) -> f64 {
        self.transit_usd + self.peering_usd
    }
}

/// Computes every AS's bill for a run that covered `horizon` of simulated
/// time. The measured p95 rate is assumed to be representative of the whole
/// billing month.
pub fn bill_all(
    graph: &AsGraph,
    traffic: &TrafficAccounting,
    params: &CostParams,
    horizon: SimTime,
) -> Vec<IspBill> {
    let bills: Vec<IspBill> = (0..graph.len())
        .map(|i| {
            let asn = AsId::from_index(i);
            let p95 = traffic.transit_p95_mbps(asn, horizon);
            let peering_links = graph
                .incident(asn)
                .iter()
                .filter(|&&li| graph.links[li as usize].kind == LinkKind::Peering)
                .count();
            IspBill {
                asn,
                transit_p95_mbps: p95,
                transit_usd: params.transit_cost(p95),
                peering_links,
                peering_usd: params.peering_cost(peering_links),
            }
        })
        .collect();
    #[cfg(debug_assertions)]
    if let Err(e) = crate::invariants::check_cost_non_negative(&bills) {
        // lint:allow(panic) — debug-only invariant guard
        panic!("cost model produced an invalid bill: {e}");
    }
    bills
}

/// Sum of all ASes' transit bills — the system-wide avoidable cost that
/// locality-aware P2P reduces.
pub fn total_transit_usd(bills: &[IspBill]) -> f64 {
    bills.iter().map(|b| b.transit_usd).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_is_linear() {
        let p = CostParams::default();
        assert_eq!(p.transit_cost(0.0), 0.0);
        assert_eq!(p.transit_cost(10.0), 200.0);
        assert_eq!(p.transit_cost(100.0), 2_000.0);
        // Per-Mbps price is flat.
        assert_eq!(
            p.transit_cost_per_mbps(1.0),
            p.transit_cost_per_mbps(1_000.0)
        );
    }

    #[test]
    fn peering_per_mbps_is_inverse() {
        let p = CostParams::default();
        let c10 = p.peering_cost_per_mbps(10.0);
        let c100 = p.peering_cost_per_mbps(100.0);
        assert!((c10 / c100 - 10.0).abs() < 1e-9);
        assert_eq!(p.peering_cost_per_mbps(0.0), f64::INFINITY);
        // Absolute peering cost does not depend on traffic at all.
        assert_eq!(p.peering_cost(3), 6_000.0);
    }

    #[test]
    fn crossover_matches_figure2_shape() {
        let p = CostParams::default();
        let x = p.crossover_mbps();
        assert_eq!(x, 100.0);
        // Below crossover transit is cheaper per Mbps, above it peering is.
        assert!(p.transit_cost_per_mbps(50.0) < p.peering_cost_per_mbps(50.0));
        assert!(p.transit_cost_per_mbps(200.0) > p.peering_cost_per_mbps(200.0));
    }

    #[test]
    fn negative_rate_clamps() {
        let p = CostParams::default();
        assert_eq!(p.transit_cost(-5.0), 0.0);
    }

    #[test]
    fn billing_integrates_traffic() {
        use crate::asgraph::Tier;
        use crate::geo::GeoPoint;
        use crate::routing::{Routing, RoutingMode};
        let mut g = AsGraph::new();
        let t1 = g.add_as(Tier::Tier1, GeoPoint::new(0.0, 0.0), 100.0);
        let a = g.add_as(Tier::Tier3, GeoPoint::new(10.0, 0.0), 10.0);
        let b = g.add_as(Tier::Tier3, GeoPoint::new(0.0, 10.0), 10.0);
        g.add_transit(t1, a, 1_000, 1_000.0);
        g.add_transit(t1, b, 1_000, 1_000.0);
        g.add_peering(a, b, 500, 100.0);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let mut tr = TrafficAccounting::new(&g);
        // Sustained transit: a -> t1 for the whole horizon.
        let path = r.path_links(AsId(1), AsId(0)).unwrap();
        let horizon = SimTime::from_hours(2);
        for m in 0..24 {
            tr.record(&g, SimTime::from_mins(m * 5), AsId(1), path, 37_500_000);
        }
        let bills = bill_all(&g, &tr, &CostParams::default(), horizon);
        // AS a (idx 1): 37.5 MB / 300 s = 1 Mbps p95 → $20 transit + one
        // peering link flat fee.
        let bill_a = &bills[1];
        assert!((bill_a.transit_p95_mbps - 1.0).abs() < 1e-9);
        assert!((bill_a.transit_usd - 20.0).abs() < 1e-9);
        assert_eq!(bill_a.peering_links, 1);
        assert_eq!(bill_a.peering_usd, 2_000.0);
        assert!((bill_a.total_usd() - 2_020.0).abs() < 1e-9);
        // The Tier-1 has no providers: zero transit bill, zero peering
        // links in this fixture... it peers with nobody here.
        assert_eq!(bills[0].transit_usd, 0.0);
        assert!(total_transit_usd(&bills) > 0.0);
    }
}
