//! Failure injection.
//!
//! §5.4 lists "robustness especially against churn" and overlay
//! connectivity as open issues for underlay awareness; the resilience rows
//! of Table 2 are measured by killing underlay links and checking what
//! survives. This module provides deterministic link-failure sampling and
//! the connectivity probes the experiments use.

use crate::asgraph::{AsGraph, LinkKind};
use crate::routing::{Routing, RoutingMode};
use uap_sim::SimRng;

/// A sampled set of failed links.
#[derive(Clone, Debug)]
pub struct FailureScenario {
    /// `mask[i]` is true if link `i` is down.
    pub mask: Vec<bool>,
}

impl FailureScenario {
    /// No failures.
    pub fn none(graph: &AsGraph) -> Self {
        FailureScenario {
            mask: vec![false; graph.links.len()],
        }
    }

    /// Fails each link independently with probability `p`.
    pub fn random(graph: &AsGraph, p: f64, rng: &mut SimRng) -> Self {
        FailureScenario {
            mask: (0..graph.links.len()).map(|_| rng.chance(p)).collect(),
        }
    }

    /// Fails each *transit* link with probability `p` (peering survives) —
    /// models provider outages.
    pub fn transit_only(graph: &AsGraph, p: f64, rng: &mut SimRng) -> Self {
        FailureScenario {
            mask: graph
                .links
                .iter()
                .map(|l| l.kind == LinkKind::Transit && rng.chance(p))
                .collect(),
        }
    }

    /// Number of failed links.
    pub fn failed_count(&self) -> usize {
        self.mask.iter().filter(|&&d| d).count()
    }
}

/// Result of a connectivity probe under failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectivityReport {
    /// Fraction of ordered AS pairs still mutually reachable.
    pub reachable_fraction: f64,
    /// Number of connected components of the surviving graph.
    pub components: usize,
}

/// Probes AS-level connectivity under a failure scenario, using the given
/// routing mode (valley-free reachability can be lower than raw
/// connectivity — policy can orphan an AS whose only surviving links are
/// peerings).
pub fn probe_connectivity(
    graph: &AsGraph,
    scenario: &FailureScenario,
    mode: RoutingMode,
) -> ConnectivityReport {
    let routing = Routing::compute_with_mask(graph, mode, Some(&scenario.mask));
    ConnectivityReport {
        reachable_fraction: routing.reachable_fraction(),
        components: graph.component_count(Some(&scenario.mask)),
    }
}

/// Sweeps failure probability and returns `(p, mean reachable fraction)`
/// over `trials` deterministic trials per point.
///
/// # Panics
///
/// Panics when `trials == 0` — averaging zero trials would emit NaN rows
/// that flow silently into results CSVs.
pub fn reachability_sweep(
    graph: &AsGraph,
    mode: RoutingMode,
    ps: &[f64],
    trials: usize,
    rng: &mut SimRng,
) -> Vec<(f64, f64)> {
    assert!(
        trials > 0,
        "reachability_sweep requires at least one trial per point"
    );
    ps.iter()
        .map(|&p| {
            let mut acc = 0.0;
            for _ in 0..trials {
                let sc = FailureScenario::random(graph, p, rng);
                acc += probe_connectivity(graph, &sc, mode).reachable_fraction;
            }
            (p, acc / trials as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TopologyKind, TopologySpec};

    fn graph() -> AsGraph {
        TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 3,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.5,
            tier3_peering_prob: 0.5,
        })
        .build(&mut SimRng::new(3))
    }

    #[test]
    fn no_failures_full_reachability() {
        let g = graph();
        let sc = FailureScenario::none(&g);
        let rep = probe_connectivity(&g, &sc, RoutingMode::ValleyFree);
        assert_eq!(rep.reachable_fraction, 1.0);
        assert_eq!(rep.components, 1);
        assert_eq!(sc.failed_count(), 0);
    }

    #[test]
    fn all_failed_isolates_everything() {
        let g = graph();
        let sc = FailureScenario {
            mask: vec![true; g.links.len()],
        };
        let rep = probe_connectivity(&g, &sc, RoutingMode::ShortestPath);
        assert_eq!(rep.reachable_fraction, 0.0);
        assert_eq!(rep.components, g.len());
    }

    #[test]
    fn reachability_degrades_monotonically_on_average() {
        let g = graph();
        let mut rng = SimRng::new(5);
        let sweep =
            reachability_sweep(&g, RoutingMode::ShortestPath, &[0.0, 0.3, 0.9], 5, &mut rng);
        assert_eq!(sweep[0].1, 1.0);
        assert!(sweep[0].1 >= sweep[1].1);
        assert!(sweep[1].1 >= sweep[2].1);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn reachability_sweep_rejects_zero_trials() {
        // Regression: `trials == 0` divided by zero and produced NaN rows
        // that flowed silently into results CSVs.
        let g = graph();
        let mut rng = SimRng::new(5);
        let _ = reachability_sweep(&g, RoutingMode::ShortestPath, &[0.1], 0, &mut rng);
    }

    #[test]
    fn transit_only_failures_spare_peerings() {
        let g = graph();
        let mut rng = SimRng::new(7);
        let sc = FailureScenario::transit_only(&g, 1.0, &mut rng);
        for (i, l) in g.links.iter().enumerate() {
            match l.kind {
                LinkKind::Transit => assert!(sc.mask[i]),
                LinkKind::Peering => assert!(!sc.mask[i]),
            }
        }
    }

    #[test]
    fn valley_free_reachability_not_above_raw_connectivity() {
        let g = graph();
        let mut rng = SimRng::new(11);
        for _ in 0..5 {
            let sc = FailureScenario::random(&g, 0.3, &mut rng);
            let vf = probe_connectivity(&g, &sc, RoutingMode::ValleyFree);
            let sp = probe_connectivity(&g, &sc, RoutingMode::ShortestPath);
            assert!(vf.reachable_fraction <= sp.reachable_fraction + 1e-12);
        }
    }
}
