//! Time-scheduled fault-injection campaigns.
//!
//! [`crate::failure`] provides *static* pre-run failure masks; this module
//! schedules them **over sim time**. A [`FaultPlan`] is a list of
//! [`FaultEpoch`]s — half-open `[start, end)` windows during which a fault
//! is active: link-down sets (explicit, random, or transit-only — the AS
//! partition model of the paper's resilience rows), latency inflation
//! episodes, and host crash windows. Plans are *compiled* against a
//! concrete [`AsGraph`] into per-epoch link masks, after which
//! [`CompiledFaultPlan::state_at`] answers "what is broken at time `t`?"
//! as a single [`FaultState`].
//!
//! Determinism: random masks are sampled at compile time from a dedicated
//! [`SimRng`] seeded by the epoch's own `salt`, so the sampled fault set is
//! a pure function of `(graph, plan)` — independent of the simulation's
//! RNG stream and of *when* the plan is compiled. Application is
//! sim-time-driven: the overlay worlds schedule one event per epoch
//! boundary and call [`crate::Underlay::apply_fault_state`], which
//! incrementally repairs routing under the epoch's mask (only sources
//! whose shortest-path forests touch a changed link recompute) and
//! invalidates the affected rows of the packed AS-pair route cache (see
//! `docs/DETERMINISM.md` and `docs/PERFORMANCE.md`).

use crate::asgraph::{AsGraph, LinkKind};
use crate::ids::HostId;
use uap_sim::{Fields, SimRng, SimTime};

/// What a fault epoch breaks while it is active.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// The listed link indices are down.
    LinkDown {
        /// Indices into `graph.links`.
        links: Vec<u32>,
    },
    /// Each link is down independently with probability `p`, sampled at
    /// compile time from a fresh `SimRng::new(salt)`.
    RandomLinkDown {
        /// Per-link failure probability.
        p: f64,
        /// Seed of the dedicated sampling RNG (keeps the mask independent
        /// of the simulation RNG stream).
        salt: u64,
    },
    /// Each *transit* link is down with probability `p` (peering
    /// survives) — provider outages partitioning the AS hierarchy.
    TransitDown {
        /// Per-transit-link failure probability.
        p: f64,
        /// Seed of the dedicated sampling RNG.
        salt: u64,
    },
    /// All inter-AS path metrics are inflated by this factor (congestion
    /// episode). Factors from overlapping epochs multiply.
    LatencyInflation {
        /// Multiplier applied to the combined inter-AS path metric
        /// (must be ≥ 1.0 to stay within the packed-entry range).
        factor: f64,
    },
    /// The listed hosts are crashed (offline regardless of churn state);
    /// they restart when the epoch ends.
    HostCrash {
        /// Hosts down for the duration of the epoch.
        hosts: Vec<HostId>,
    },
}

/// One fault window: `kind` is active during `[start, end)`.
#[derive(Clone, Debug)]
pub struct FaultEpoch {
    /// Epoch start (inclusive).
    pub start: SimTime,
    /// Epoch end (exclusive).
    pub end: SimTime,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic, time-scheduled fault campaign.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The scheduled epochs (may overlap; effects compose).
    pub epochs: Vec<FaultEpoch>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: appends an epoch.
    #[must_use]
    pub fn epoch(mut self, start: SimTime, end: SimTime, kind: FaultKind) -> FaultPlan {
        self.epochs.push(FaultEpoch { start, end, kind });
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Compiles the plan against a concrete graph: samples the random link
    /// masks (from each epoch's `salt`, never the simulation RNG) and
    /// precomputes the sorted set of epoch boundaries.
    ///
    /// # Panics
    ///
    /// Panics on malformed epochs: `end <= start`, a link index out of
    /// range, or a latency-inflation factor below 1.0.
    // lint:allow(alloc) — campaign compilation; runs once before the sim starts
    pub fn compile(&self, graph: &AsGraph) -> CompiledFaultPlan {
        let n_links = graph.links.len();
        let epochs: Vec<CompiledEpoch> = self
            .epochs
            .iter()
            .map(|e| {
                assert!(
                    e.start < e.end,
                    "fault epoch must have start < end (got {:?} >= {:?})",
                    e.start,
                    e.end
                );
                let mut mask = None;
                let mut latency_factor = 1.0;
                let mut crashed = Vec::new();
                match &e.kind {
                    FaultKind::LinkDown { links } => {
                        let mut m = vec![false; n_links];
                        for &li in links {
                            assert!(
                                (li as usize) < n_links,
                                "fault epoch names link {li} but the graph has {n_links} links"
                            );
                            m[li as usize] = true;
                        }
                        mask = Some(m);
                    }
                    FaultKind::RandomLinkDown { p, salt } => {
                        let mut rng = SimRng::new(*salt);
                        mask = Some((0..n_links).map(|_| rng.chance(*p)).collect());
                    }
                    FaultKind::TransitDown { p, salt } => {
                        let mut rng = SimRng::new(*salt);
                        mask = Some(
                            graph
                                .links
                                .iter()
                                .map(|l| l.kind == LinkKind::Transit && rng.chance(*p))
                                .collect(),
                        );
                    }
                    FaultKind::LatencyInflation { factor } => {
                        assert!(
                            *factor >= 1.0,
                            "latency inflation factor must be >= 1.0 (got {factor})"
                        );
                        latency_factor = *factor;
                    }
                    FaultKind::HostCrash { hosts } => {
                        crashed = hosts.clone();
                        crashed.sort_unstable_by_key(|h| h.0);
                        crashed.dedup();
                    }
                }
                CompiledEpoch {
                    start: e.start,
                    end: e.end,
                    mask,
                    latency_factor,
                    crashed,
                }
            })
            .collect();
        let mut boundaries: Vec<SimTime> = epochs.iter().flat_map(|e| [e.start, e.end]).collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        CompiledFaultPlan {
            epochs,
            boundaries,
            n_links,
        }
    }
}

/// One epoch after compilation: the sampled link mask plus scalar effects.
#[derive(Clone, Debug)]
struct CompiledEpoch {
    start: SimTime,
    end: SimTime,
    mask: Option<Vec<bool>>,
    latency_factor: f64,
    crashed: Vec<HostId>,
}

/// A [`FaultPlan`] compiled against a graph: per-epoch masks materialized,
/// boundaries sorted. Query with [`CompiledFaultPlan::state_at`].
#[derive(Clone, Debug)]
pub struct CompiledFaultPlan {
    epochs: Vec<CompiledEpoch>,
    boundaries: Vec<SimTime>,
    n_links: usize,
}

/// The union of all faults active at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultState {
    /// OR of the active epochs' link masks; `None` when no link is down.
    pub mask: Option<Vec<bool>>,
    /// Product of the active latency-inflation factors (1.0 = none).
    pub latency_factor: f64,
    /// Sorted, deduplicated set of crashed hosts.
    pub crashed: Vec<HostId>,
    /// Number of epochs active at the queried instant.
    pub active: usize,
}

impl FaultState {
    /// The fault-free state.
    // lint:allow(alloc) — constructs the returned state; per fault epoch, not per event
    pub fn clear() -> FaultState {
        FaultState {
            mask: None,
            latency_factor: 1.0,
            crashed: Vec::new(),
            active: 0,
        }
    }

    /// Number of links down under this state.
    pub fn links_down(&self) -> usize {
        self.mask
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&d| d).count())
    }

    /// Writes the canonical `net/fault.epoch` anchor fields. Every overlay
    /// that traces a fault boundary goes through this, so the cause-anchor
    /// events recovery chains point at carry one field shape everywhere.
    pub fn trace_fields(&self, f: &mut Fields) {
        f.u64("links_down", self.links_down() as u64)
            .f64("latency_factor", self.latency_factor)
            .u64("crashed", self.crashed.len() as u64);
    }
}

impl CompiledFaultPlan {
    /// The sorted, deduplicated epoch boundary times. The overlay worlds
    /// schedule one fault-application event at each of these.
    pub fn boundaries(&self) -> &[SimTime] {
        &self.boundaries
    }

    /// Whether the compiled plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The composed fault state at time `t`: epochs are active over the
    /// half-open window `[start, end)`; link masks OR together, latency
    /// factors multiply, crash sets union.
    // lint:allow(alloc) — composes the returned state; per fault epoch, not per event
    pub fn state_at(&self, t: SimTime) -> FaultState {
        let mut state = FaultState::clear();
        for e in &self.epochs {
            if t < e.start || t >= e.end {
                continue;
            }
            state.active += 1;
            if let Some(em) = &e.mask {
                let m = state.mask.get_or_insert_with(|| vec![false; self.n_links]);
                for (slot, &down) in m.iter_mut().zip(em) {
                    *slot |= down;
                }
            }
            state.latency_factor *= e.latency_factor;
            state.crashed.extend_from_slice(&e.crashed);
        }
        state.crashed.sort_unstable_by_key(|h| h.0);
        state.crashed.dedup();
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TopologyKind, TopologySpec};

    fn graph() -> AsGraph {
        TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 3,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.5,
            tier3_peering_prob: 0.5,
        })
        .build(&mut SimRng::new(3))
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_plan_is_always_clear() {
        let g = graph();
        let plan = FaultPlan::new().compile(&g);
        assert!(plan.is_empty());
        assert!(plan.boundaries().is_empty());
        assert_eq!(plan.state_at(secs(10)), FaultState::clear());
    }

    #[test]
    fn epoch_windows_are_half_open() {
        let g = graph();
        let plan = FaultPlan::new()
            .epoch(secs(10), secs(20), FaultKind::LinkDown { links: vec![0] })
            .compile(&g);
        assert_eq!(plan.boundaries(), &[secs(10), secs(20)]);
        assert_eq!(plan.state_at(secs(9)).active, 0);
        assert_eq!(plan.state_at(secs(10)).active, 1);
        assert_eq!(plan.state_at(secs(19)).links_down(), 1);
        assert_eq!(plan.state_at(secs(20)).active, 0);
    }

    #[test]
    fn overlapping_epochs_compose() {
        let g = graph();
        let plan = FaultPlan::new()
            .epoch(secs(0), secs(30), FaultKind::LinkDown { links: vec![0] })
            .epoch(secs(10), secs(20), FaultKind::LinkDown { links: vec![1] })
            .epoch(
                secs(10),
                secs(40),
                FaultKind::LatencyInflation { factor: 2.0 },
            )
            .epoch(
                secs(15),
                secs(40),
                FaultKind::LatencyInflation { factor: 3.0 },
            )
            .epoch(
                secs(0),
                secs(20),
                FaultKind::HostCrash {
                    hosts: vec![HostId(5), HostId(2), HostId(5)],
                },
            )
            .compile(&g);
        let s = plan.state_at(secs(15));
        assert_eq!(s.active, 5);
        assert_eq!(s.links_down(), 2);
        assert!((s.latency_factor - 6.0).abs() < 1e-12);
        assert_eq!(s.crashed, vec![HostId(2), HostId(5)]);
        // After the overlap window: only the long link epoch + inflations.
        let s = plan.state_at(secs(25));
        assert_eq!(s.links_down(), 1);
        assert!((s.latency_factor - 6.0).abs() < 1e-12);
        assert!(s.crashed.is_empty());
        // Past everything: clear.
        assert_eq!(plan.state_at(secs(40)), FaultState::clear());
    }

    #[test]
    fn random_masks_are_salt_deterministic() {
        let g = graph();
        let mk = |salt| {
            FaultPlan::new()
                .epoch(
                    secs(0),
                    secs(10),
                    FaultKind::RandomLinkDown { p: 0.5, salt },
                )
                .compile(&g)
                .state_at(secs(5))
        };
        assert_eq!(mk(7), mk(7), "same salt must sample the same mask");
        assert_ne!(mk(7), mk(8), "different salts should differ");
    }

    #[test]
    fn transit_down_spares_peerings() {
        let g = graph();
        let plan = FaultPlan::new()
            .epoch(
                secs(0),
                secs(10),
                FaultKind::TransitDown { p: 1.0, salt: 1 },
            )
            .compile(&g);
        let s = plan.state_at(secs(0));
        let mask = s.mask.expect("p=1.0 downs every transit link");
        for (i, l) in g.links.iter().enumerate() {
            match l.kind {
                LinkKind::Transit => assert!(mask[i]),
                LinkKind::Peering => assert!(!mask[i]),
            }
        }
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn rejects_inverted_epoch() {
        let g = graph();
        let _ = FaultPlan::new()
            .epoch(secs(10), secs(10), FaultKind::LinkDown { links: vec![] })
            .compile(&g);
    }

    #[test]
    #[should_panic(expected = "names link")]
    fn rejects_out_of_range_link() {
        let g = graph();
        let _ = FaultPlan::new()
            .epoch(
                secs(0),
                secs(1),
                FaultKind::LinkDown {
                    links: vec![u32::MAX],
                },
            )
            .compile(&g);
    }
}
