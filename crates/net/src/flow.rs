//! Flow-level max-min fair bandwidth allocation (progressive filling).
//!
//! The paper's quantitative claims — locality changes *where* bytes flow
//! and *how fast* swarms finish — need transfers that are bandwidth-bound,
//! not latency proxies. [`FlowAllocator`] models that: every active
//! transfer is a **flow** over a capacity graph of
//!
//! * per-host **access links** — each host contributes an uplink and a
//!   downlink resource sized from [`crate::host::Host::up_kbps`] /
//!   `down_kbps`;
//! * **inter-AS links** — each [`crate::asgraph::AsLink`] contributes one
//!   shared resource sized from its `capacity_mbps` link class, so
//!   cross-AS flows genuinely compete for transit/peering capacity (this
//!   replaces the retired `transit_congestion` per-path discount with real
//!   sharing).
//!
//! Rates come from **progressive filling** (Bertsekas & Gallager): every
//! unfrozen flow's rate rises at the same pace; when a resource
//! saturates, the flows crossing it freeze at the current rate; repeat
//! until every flow is frozen. The result is the unique max-min fair
//! allocation: no flow can gain rate without taking from a flow of equal
//! or smaller rate, and every flow is bottlenecked at some saturated
//! resource.
//!
//! # Determinism
//!
//! Callers register flows with explicit `u64` ids; [`allocate`] sorts by
//! id before filling, so the allocation is a pure function of the *flow
//! set* — two same-seed runs, or the same set inserted in a different
//! order, produce bit-identical rates (`f64` arithmetic is deterministic
//! once the iteration order is fixed). No RNG, wall clock, or hash map is
//! involved. The invariants are re-checked under `debug_assertions` by
//! [`crate::invariants::check_flow_capacity`],
//! [`check_flow_conservation`](crate::invariants::check_flow_conservation)
//! and [`check_flow_max_min`](crate::invariants::check_flow_max_min).
//!
//! # Reuse
//!
//! All working storage lives in the struct and is recycled across
//! [`begin`]/[`allocate`] cycles, so recomputing the allocation at flow
//! arrival/departure/fault epochs allocates nothing on the per-round hot
//! path (the alloc pass in `xtask analyze` ratchets this).
//!
//! [`allocate`]: FlowAllocator::allocate
//! [`begin`]: FlowAllocator::begin

use crate::ids::HostId;
use crate::underlay::Underlay;
use uap_sim::Metrics;

/// Relative slack used when deciding a resource is saturated: float
/// filling accumulates rounding, so "load reached capacity" is tested
/// with a tolerance proportional to the capacity plus one byte/second.
fn saturation_eps(cap: f64) -> f64 {
    cap * 1e-9 + 1.0
}

/// Deterministic max-min fair bandwidth allocator over host access links
/// and inter-AS links. See the module docs for the model and the
/// determinism contract.
#[derive(Debug)]
pub struct FlowAllocator {
    n_hosts: usize,
    /// Capacity per resource in bytes/second. Layout: `[0, n)` host
    /// uplinks, `[n, 2n)` host downlinks, `[2n, 2n + links)` AS links.
    cap: Vec<f64>,
    /// Registered flows: `(id, arena start, resource count)`; sorted by
    /// id inside [`FlowAllocator::allocate`].
    flows: Vec<(u64, u32, u32)>,
    /// Concatenated resource-index lists, one span per flow.
    arena: Vec<u32>,
    /// Allocated rate per flow (bytes/second), parallel to `flows`.
    rates: Vec<f64>,
    /// Current load per resource (only entries in `used` are meaningful).
    load: Vec<f64>,
    /// Unfrozen flows crossing each resource.
    users: Vec<u32>,
    /// Per-flow frozen flag, parallel to `flows`.
    frozen: Vec<bool>,
    /// Resources touched by the current flow set.
    used: Vec<u32>,
    /// Membership mask for `used`.
    in_used: Vec<bool>,
    /// Flows accepted by [`FlowAllocator::add_flow`] since construction.
    opened: u64,
    /// Flows rejected as unroutable since construction.
    rejected: u64,
}

impl FlowAllocator {
    /// Snapshots the capacity graph of `underlay`: host access links in
    /// kbit/s and AS links in Mbit/s, both converted to bytes/second.
    /// Host bandwidths and link classes are static for the life of a run;
    /// routing (and therefore each flow's AS-link span) is re-resolved on
    /// every [`FlowAllocator::add_flow`], so fault-epoch reroutes are
    /// picked up at the next recomputation.
    // lint:allow(alloc) — construction; runs once per experiment run
    pub fn new(underlay: &Underlay) -> FlowAllocator {
        let n = underlay.n_hosts();
        let n_links = underlay.graph.links.len();
        let mut cap = Vec::with_capacity(2 * n + n_links);
        for h in &underlay.hosts.hosts {
            cap.push(h.up_kbps as f64 * 1_000.0 / 8.0);
        }
        for h in &underlay.hosts.hosts {
            cap.push(h.down_kbps as f64 * 1_000.0 / 8.0);
        }
        for l in &underlay.graph.links {
            cap.push(l.capacity_mbps * 1_000_000.0 / 8.0);
        }
        let n_resources = cap.len();
        FlowAllocator {
            n_hosts: n,
            cap,
            flows: Vec::new(),
            arena: Vec::new(),
            rates: Vec::new(),
            load: vec![0.0; n_resources],
            users: vec![0; n_resources],
            frozen: Vec::new(),
            used: Vec::new(),
            in_used: vec![false; n_resources],
            opened: 0,
            rejected: 0,
        }
    }

    /// Starts a new flow set (the previous set's flows depart).
    pub fn begin(&mut self) {
        self.flows.clear();
        self.arena.clear();
    }

    /// Registers flow `id` from `src` to `dst`. Returns `false` (and
    /// registers nothing) when the pair is unroutable under the current
    /// routing tables — a fault partition stalls the flow until routing
    /// recovers. Ids must be unique within one [`FlowAllocator::begin`]
    /// cycle; the allocation depends only on the id *set*, not the
    /// insertion order.
    pub fn add_flow(&mut self, id: u64, src: HostId, dst: HostId, underlay: &Underlay) -> bool {
        // lint:allow(cast) — arena holds per-flow resource ids; far under u32::MAX
        let start = self.arena.len() as u32;
        let src_as = underlay.hosts.as_of(src);
        let dst_as = underlay.hosts.as_of(dst);
        if src_as != dst_as {
            // Resolved directly from the routing tables (CSR slice), never
            // through the AS-pair route cache — flow setup must not perturb
            // the cache counters the latency queries own.
            let Some(path) = underlay.routing.path_links(src_as, dst_as) else {
                self.rejected += 1;
                return false;
            };
            self.arena.push(src.0);
            // lint:allow(cast) — n_hosts is bounded by the u32 HostId width
            self.arena.push(self.n_hosts as u32 + dst.0);
            for &li in path {
                // lint:allow(cast) — same HostId-width bound; link ids are u32
                self.arena.push(2 * self.n_hosts as u32 + li);
            }
        } else {
            self.arena.push(src.0);
            // lint:allow(cast) — same HostId-width bound as above
            self.arena.push(self.n_hosts as u32 + dst.0);
        }
        // lint:allow(cast) — arena length bound as in `start` above
        let len = self.arena.len() as u32 - start;
        debug_assert!(
            self.flows.iter().all(|&(fid, _, _)| fid != id),
            "duplicate flow id {id}"
        );
        self.flows.push((id, start, len));
        self.opened += 1;
        true
    }

    /// Computes the max-min fair allocation for the registered flow set
    /// by progressive filling. Deterministic: flows are processed in
    /// sorted-id order, so the result is independent of insertion order.
    pub fn allocate(&mut self) {
        self.flows.sort_unstable_by_key(|&(id, _, _)| id);
        // Reset the resources the previous allocation touched, then build
        // this set's resource census in flow-id order.
        for &r in &self.used {
            self.in_used[r as usize] = false;
            self.load[r as usize] = 0.0;
            self.users[r as usize] = 0;
        }
        self.used.clear();
        self.rates.clear();
        self.rates.resize(self.flows.len(), 0.0);
        self.frozen.clear();
        self.frozen.resize(self.flows.len(), false);
        for &(_, start, len) in &self.flows {
            for &r in &self.arena[start as usize..(start + len) as usize] {
                let r = r as usize;
                if !self.in_used[r] {
                    self.in_used[r] = true;
                    // lint:allow(cast) — r indexes `cap`, sized 2n + links < u32::MAX
                    self.used.push(r as u32);
                }
                self.users[r] += 1;
            }
        }
        let mut active = self.flows.len();
        while active > 0 {
            // The uniform rate increment every unfrozen flow can absorb:
            // the tightest remaining headroom per unfrozen user.
            let mut inc = f64::INFINITY;
            for &r in &self.used {
                let r = r as usize;
                if self.users[r] > 0 {
                    let room = (self.cap[r] - self.load[r]).max(0.0) / self.users[r] as f64;
                    if room < inc {
                        inc = room;
                    }
                }
            }
            if inc > 0.0 && inc.is_finite() {
                for (fi, &(_, _, _)) in self.flows.iter().enumerate() {
                    if !self.frozen[fi] {
                        self.rates[fi] += inc;
                    }
                }
                for &r in &self.used {
                    let r = r as usize;
                    if self.users[r] > 0 {
                        self.load[r] += inc * self.users[r] as f64;
                    }
                }
            }
            // Freeze every unfrozen flow that now crosses a saturated
            // resource (the arg-min resource above is always saturated, so
            // at least one flow freezes and the loop terminates).
            let mut froze = false;
            for (fi, &(_, start, len)) in self.flows.iter().enumerate() {
                if self.frozen[fi] {
                    continue;
                }
                let span = &self.arena[start as usize..(start + len) as usize];
                let sat = span.iter().any(|&r| {
                    let r = r as usize;
                    self.load[r] + saturation_eps(self.cap[r]) >= self.cap[r]
                });
                if sat {
                    self.frozen[fi] = true;
                    froze = true;
                    active -= 1;
                    for &r in span {
                        self.users[r as usize] -= 1;
                    }
                }
            }
            if !froze {
                // Floating-point safety net: exact arithmetic always
                // saturates the arg-min resource; if rounding hid it,
                // freeze everything at the current (feasible) rates
                // rather than loop forever.
                for fi in 0..self.flows.len() {
                    if !self.frozen[fi] {
                        self.frozen[fi] = true;
                        let (_, start, len) = self.flows[fi];
                        for &r in &self.arena[start as usize..(start + len) as usize] {
                            self.users[r as usize] -= 1;
                        }
                    }
                }
                active = 0;
            }
        }
        #[cfg(debug_assertions)]
        {
            use crate::invariants;
            invariants::check_flow_capacity(&self.cap, &self.load, &self.used)
                .unwrap_or_else(|e| panic!("flow capacity invariant: {e}")); // lint:allow(panic) — debug-only invariant
            invariants::check_flow_conservation(&self.load, &self.rates, &self.flows, &self.arena)
                .unwrap_or_else(|e| panic!("flow conservation invariant: {e}")); // lint:allow(panic) — debug-only invariant
            invariants::check_flow_max_min(&self.cap, &self.load, &self.flows, &self.arena)
                .unwrap_or_else(|e| panic!("flow max-min invariant: {e}")); // lint:allow(panic) — debug-only invariant
        }
    }

    /// The allocated rate of flow `id` in bytes/second (`None` if the id
    /// was never registered — e.g. its [`FlowAllocator::add_flow`] was
    /// rejected as unroutable). Valid after [`FlowAllocator::allocate`].
    pub fn rate_of(&self, id: u64) -> Option<f64> {
        self.flows
            .binary_search_by_key(&id, |&(fid, _, _)| fid)
            .ok()
            .map(|fi| self.rates[fi])
    }

    /// Number of flows in the current set.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Exports lifetime counters (`net.flow.opened` / `net.flow.rejected`)
    /// into `metrics`, mirroring the route-cache export convention.
    pub fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.set_counter("net.flow.opened", self.opened);
        metrics.set_counter("net.flow.rejected", self.rejected);
    }

    /// Whole bytes flow `id` moves in `secs` seconds at its allocated
    /// rate, rounded down — flooring per flow keeps every per-resource
    /// byte sum under `capacity × secs`. Zero for unknown ids.
    pub fn bytes_of(&self, id: u64, secs: f64) -> u64 {
        match self.rate_of(id) {
            Some(rate) => (rate * secs) as u64,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::PopulationSpec;
    use crate::underlay::UnderlayConfig;
    use crate::{TopologyKind, TopologySpec};
    use uap_sim::SimRng;

    fn underlay(n_hosts: usize, seed: u64) -> Underlay {
        let mut rng = SimRng::new(seed);
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.4,
        })
        .build(&mut rng);
        Underlay::build(
            g,
            &PopulationSpec::leaf(n_hosts),
            UnderlayConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn single_flow_gets_the_access_bottleneck() {
        let u = underlay(20, 1);
        let mut a = FlowAllocator::new(&u);
        a.begin();
        assert!(a.add_flow(7, HostId(0), HostId(1), &u));
        a.allocate();
        let rate = a.rate_of(7).unwrap();
        let want = (u.host(HostId(0)).up_kbps as f64 * 125.0)
            .min(u.host(HostId(1)).down_kbps as f64 * 125.0);
        // A lone flow is bottlenecked by the narrower access link unless
        // some AS link on the path is narrower still.
        assert!(rate <= want + 1.0, "rate {rate} exceeds access {want}");
        assert!(rate > 0.0);
    }

    #[test]
    fn two_flows_share_an_uplink_evenly() {
        let mut u = underlay(20, 2);
        // Give the sender a narrow uplink and both receivers wide
        // downlinks so the uplink is the unique bottleneck.
        u.hosts.hosts[0].up_kbps = 800;
        u.hosts.hosts[1].down_kbps = 100_000;
        u.hosts.hosts[2].down_kbps = 100_000;
        let mut a = FlowAllocator::new(&u);
        a.begin();
        assert!(a.add_flow(1, HostId(0), HostId(1), &u));
        assert!(a.add_flow(2, HostId(0), HostId(2), &u));
        a.allocate();
        let (r1, r2) = (a.rate_of(1).unwrap(), a.rate_of(2).unwrap());
        let cap = 800.0 * 125.0;
        assert!((r1 - r2).abs() < 1.0, "equal shares: {r1} vs {r2}");
        assert!((r1 + r2 - cap).abs() <= saturation_eps(cap) + 1.0);
    }

    #[test]
    fn zero_capacity_uplink_freezes_at_zero() {
        let mut u = underlay(20, 3);
        u.hosts.hosts[0].up_kbps = 0;
        let mut a = FlowAllocator::new(&u);
        a.begin();
        assert!(a.add_flow(1, HostId(0), HostId(1), &u));
        assert!(a.add_flow(2, HostId(2), HostId(3), &u));
        a.allocate();
        assert_eq!(a.rate_of(1), Some(0.0));
        assert!(a.rate_of(2).unwrap() > 0.0, "other flows still progress");
        assert_eq!(a.bytes_of(1, 10.0), 0);
    }

    #[test]
    fn max_min_beats_equal_split_for_the_unbottlenecked() {
        let mut u = underlay(20, 4);
        // Two flows from one sender; one receiver throttled far below the
        // equal share. Max-min gives the leftover to the other flow.
        u.hosts.hosts[0].up_kbps = 8_000;
        u.hosts.hosts[1].down_kbps = 80; // 10 kB/s
        u.hosts.hosts[2].down_kbps = 100_000;
        let mut a = FlowAllocator::new(&u);
        a.begin();
        assert!(a.add_flow(1, HostId(0), HostId(1), &u));
        assert!(a.add_flow(2, HostId(0), HostId(2), &u));
        a.allocate();
        let (r1, r2) = (a.rate_of(1).unwrap(), a.rate_of(2).unwrap());
        assert!((r1 - 80.0 * 125.0).abs() < 2.0, "throttled flow: {r1}");
        let cap = 8_000.0 * 125.0;
        assert!(
            (r1 + r2 - cap).abs() <= saturation_eps(cap) + 1.0,
            "leftover goes to the open flow: {r1} + {r2} != {cap}"
        );
    }

    #[test]
    fn insertion_order_does_not_change_rates() {
        let u = underlay(40, 5);
        let pairs = [(0u32, 9u32), (3, 14), (22, 7), (8, 31), (17, 2)];
        let run = |order: &[usize]| {
            let mut a = FlowAllocator::new(&u);
            a.begin();
            for &k in order {
                let (s, d) = pairs[k];
                a.add_flow(k as u64, HostId(s), HostId(d), &u);
            }
            a.allocate();
            (0..pairs.len())
                .map(|k| a.rate_of(k as u64).unwrap().to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(&[0, 1, 2, 3, 4]), run(&[4, 2, 0, 3, 1]));
        assert_eq!(run(&[0, 1, 2, 3, 4]), run(&[1, 3, 4, 0, 2]));
    }

    #[test]
    fn unroutable_pairs_are_rejected_and_unknown_ids_have_no_rate() {
        let u = underlay(20, 6);
        let mut a = FlowAllocator::new(&u);
        a.begin();
        assert!(a.add_flow(1, HostId(0), HostId(1), &u));
        a.allocate();
        assert_eq!(a.rate_of(99), None);
        assert_eq!(a.bytes_of(99, 10.0), 0);
        let mut m = Metrics::default();
        a.export_metrics(&mut m);
        assert_eq!(m.counter("net.flow.opened"), 1);
        assert_eq!(m.counter("net.flow.rejected"), 0);
    }

    #[test]
    fn reuse_across_begin_cycles_is_clean() {
        let u = underlay(20, 7);
        let mut a = FlowAllocator::new(&u);
        for round in 0..5u64 {
            a.begin();
            a.add_flow(round, HostId(0), HostId(1), &u);
            a.add_flow(round + 100, HostId(4), HostId(9), &u);
            a.allocate();
            assert!(a.rate_of(round).unwrap() > 0.0);
            assert_eq!(a.n_flows(), 2);
        }
        // Ids from earlier cycles are gone.
        assert_eq!(a.rate_of(0), None);
    }
}
