//! Topology generators.
//!
//! Two families:
//!
//! * The **testlab topologies** of the oracle study the paper reprints in
//!   §5 of \[1\] — "four different 5-AS topologies: ring, star, tree and
//!   random mesh". These are flat graphs of peering links, routed with
//!   plain shortest paths (in the testlab a router *is* the AS boundary).
//! * **Internet-like topologies** — the hierarchical local/transit-ISP
//!   structure of the paper's Figure 1, and Barabási–Albert preferential
//!   attachment. These carry customer/provider semantics and are routed
//!   valley-free.

use crate::asgraph::{AsGraph, Tier};
use crate::geo::{propagation_delay_us, GeoPoint};
use crate::ids::AsId;
use crate::routing::RoutingMode;
use uap_sim::SimRng;

/// Which topology to generate.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyKind {
    /// `n` ASes in a cycle (testlab).
    Ring {
        /// Number of ASes.
        n: usize,
    },
    /// One hub AS with `n - 1` spokes (testlab).
    Star {
        /// Number of ASes including the hub (AS 0).
        n: usize,
    },
    /// Balanced tree with the given fanout (testlab). Parent links are
    /// transit links (parent is the provider).
    Tree {
        /// Number of ASes.
        n: usize,
        /// Children per node.
        fanout: usize,
    },
    /// Random connected mesh: a random spanning tree plus extra edges
    /// (testlab "random mesh").
    Mesh {
        /// Number of ASes.
        n: usize,
        /// Probability of adding each non-tree edge.
        extra_edge_prob: f64,
    },
    /// Hierarchical Internet per Figure 1: fully-meshed Tier-1 core,
    /// Tier-2 regionals multi-homed to Tier-1s, Tier-3 locals homed to
    /// Tier-2s, plus some same-tier peering.
    Hierarchical {
        /// Number of Tier-1 (global transit) ISPs.
        tier1: usize,
        /// Tier-2 ISPs per Tier-1.
        tier2_per_tier1: usize,
        /// Tier-3 (local) ISPs per Tier-2.
        tier3_per_tier2: usize,
        /// Probability that two Tier-2s under the same Tier-1 peer.
        tier2_peering_prob: f64,
        /// Probability that two sibling Tier-3s peer.
        tier3_peering_prob: f64,
    },
    /// Barabási–Albert preferential attachment; each new AS buys transit
    /// from `m` existing ASes chosen by degree.
    PreferentialAttachment {
        /// Number of ASes.
        n: usize,
        /// Links per new AS.
        m: usize,
    },
}

/// A topology request: kind plus world-scale parameters.
#[derive(Clone, Debug)]
pub struct TopologySpec {
    /// Which topology.
    pub kind: TopologyKind,
    /// Side length of the world box in kilometres.
    pub world_km: f64,
    /// Base per-link latency floor in microseconds (switching/queueing).
    pub base_link_latency_us: u64,
}

impl TopologySpec {
    /// A spec with default world scale (continental: 5 000 km box, 200 µs
    /// per-link floor).
    pub fn new(kind: TopologyKind) -> Self {
        TopologySpec {
            kind,
            world_km: 5_000.0,
            base_link_latency_us: 200,
        }
    }

    /// The routing mode this topology is meant to be used with.
    pub fn routing_mode(&self) -> RoutingMode {
        match self.kind {
            TopologyKind::Ring { .. } | TopologyKind::Star { .. } | TopologyKind::Mesh { .. } => {
                RoutingMode::ShortestPath
            }
            TopologyKind::Tree { .. }
            | TopologyKind::Hierarchical { .. }
            | TopologyKind::PreferentialAttachment { .. } => RoutingMode::ValleyFree,
        }
    }

    /// Generates the AS graph.
    pub fn build(&self, rng: &mut SimRng) -> AsGraph {
        let g = match self.kind {
            TopologyKind::Ring { n } => self.ring(n, rng),
            TopologyKind::Star { n } => self.star(n, rng),
            TopologyKind::Tree { n, fanout } => self.tree(n, fanout, rng),
            TopologyKind::Mesh { n, extra_edge_prob } => self.mesh(n, extra_edge_prob, rng),
            TopologyKind::Hierarchical {
                tier1,
                tier2_per_tier1,
                tier3_per_tier2,
                tier2_peering_prob,
                tier3_peering_prob,
            } => self.hierarchical(
                tier1,
                tier2_per_tier1,
                tier3_per_tier2,
                tier2_peering_prob,
                tier3_peering_prob,
                rng,
            ),
            TopologyKind::PreferentialAttachment { n, m } => self.preferential(n, m, rng),
        };
        debug_assert!(g.validate().is_ok(), "{:?}", g.validate());
        debug_assert!(g.is_connected(None), "generator produced split graph");
        g
    }

    fn random_point(&self, rng: &mut SimRng) -> GeoPoint {
        GeoPoint::new(
            rng.f64_range(0.0, self.world_km),
            rng.f64_range(0.0, self.world_km),
        )
    }

    fn link_latency(&self, g: &AsGraph, x: AsId, y: AsId) -> u64 {
        let km = g.nodes[x.idx()]
            .geo_center
            .distance_km(&g.nodes[y.idx()].geo_center);
        self.base_link_latency_us + propagation_delay_us(km)
    }

    fn ring(&self, n: usize, rng: &mut SimRng) -> AsGraph {
        assert!(n >= 3, "a ring needs at least 3 ASes");
        let mut g = AsGraph::new();
        // Place on a circle so link latencies reflect adjacency.
        let r = self.world_km / 2.5;
        let c = self.world_km / 2.0;
        for i in 0..n {
            let theta = std::f64::consts::TAU * i as f64 / n as f64;
            let p = GeoPoint::new(c + r * theta.cos(), c + r * theta.sin());
            g.add_as(Tier::Tier3, p, self.world_km / 20.0);
        }
        let _ = rng;
        for i in 0..n {
            let a = AsId::from_index(i);
            let b = AsId::from_index((i + 1) % n);
            let lat = self.link_latency(&g, a, b);
            g.add_peering(a, b, lat, 1_000.0);
        }
        g
    }

    fn star(&self, n: usize, rng: &mut SimRng) -> AsGraph {
        assert!(n >= 2, "a star needs at least 2 ASes");
        let mut g = AsGraph::new();
        let center = GeoPoint::new(self.world_km / 2.0, self.world_km / 2.0);
        g.add_as(Tier::Tier2, center, self.world_km / 10.0);
        for _ in 1..n {
            let p = self.random_point(rng);
            g.add_as(Tier::Tier3, p, self.world_km / 20.0);
        }
        for i in 1..n {
            let spoke = AsId::from_index(i);
            let lat = self.link_latency(&g, AsId(0), spoke);
            g.add_peering(AsId(0), spoke, lat, 1_000.0);
        }
        g
    }

    fn tree(&self, n: usize, fanout: usize, rng: &mut SimRng) -> AsGraph {
        assert!(n >= 1 && fanout >= 1);
        let mut g = AsGraph::new();
        g.add_as(
            Tier::Tier1,
            GeoPoint::new(self.world_km / 2.0, self.world_km / 2.0),
            self.world_km / 10.0,
        );
        for i in 1..n {
            let parent = AsId::from_index((i - 1) / fanout);
            // Children scatter near their parent.
            let pc = g.nodes[parent.idx()].geo_center;
            let p = GeoPoint::new(
                (pc.x_km + rng.f64_range(-0.15, 0.15) * self.world_km).clamp(0.0, self.world_km),
                (pc.y_km + rng.f64_range(-0.15, 0.15) * self.world_km).clamp(0.0, self.world_km),
            );
            let tier = if i <= fanout {
                Tier::Tier2
            } else {
                Tier::Tier3
            };
            let child = g.add_as(tier, p, self.world_km / 20.0);
            let lat = self.link_latency(&g, parent, child);
            g.add_transit(parent, child, lat, 5_000.0);
        }
        g
    }

    fn mesh(&self, n: usize, extra_edge_prob: f64, rng: &mut SimRng) -> AsGraph {
        assert!(n >= 2);
        let mut g = AsGraph::new();
        for _ in 0..n {
            let p = self.random_point(rng);
            g.add_as(Tier::Tier3, p, self.world_km / 20.0);
        }
        // Random spanning tree: connect each node to a random earlier one.
        for i in 1..n {
            let j = rng.index(i);
            let (a, b) = (AsId::from_index(j), AsId::from_index(i));
            let lat = self.link_latency(&g, a, b);
            g.add_peering(a, b, lat, 1_000.0);
        }
        // Extra edges.
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (AsId::from_index(i), AsId::from_index(j));
                if g.link_between(a, b).is_none() && rng.chance(extra_edge_prob) {
                    let lat = self.link_latency(&g, a, b);
                    g.add_peering(a, b, lat, 1_000.0);
                }
            }
        }
        g
    }

    fn hierarchical(
        &self,
        tier1: usize,
        tier2_per_tier1: usize,
        tier3_per_tier2: usize,
        tier2_peering_prob: f64,
        tier3_peering_prob: f64,
        rng: &mut SimRng,
    ) -> AsGraph {
        assert!(tier1 >= 1);
        let mut g = AsGraph::new();
        let mut t1_ids = Vec::new();
        for _ in 0..tier1 {
            let p = self.random_point(rng);
            t1_ids.push(g.add_as(Tier::Tier1, p, self.world_km / 8.0));
        }
        // Tier-1 full mesh of peering (the settlement-free core).
        for i in 0..t1_ids.len() {
            for j in (i + 1)..t1_ids.len() {
                let lat = self.link_latency(&g, t1_ids[i], t1_ids[j]);
                g.add_peering(t1_ids[i], t1_ids[j], lat, 100_000.0);
            }
        }
        let mut t2_by_parent: Vec<Vec<AsId>> = vec![Vec::new(); tier1];
        let mut t3_by_parent: Vec<Vec<AsId>> = Vec::new();
        for (pi, &t1) in t1_ids.iter().enumerate() {
            for _ in 0..tier2_per_tier1 {
                let pc = g.nodes[t1.idx()].geo_center;
                let p = GeoPoint::new(
                    (pc.x_km + rng.f64_range(-0.2, 0.2) * self.world_km).clamp(0.0, self.world_km),
                    (pc.y_km + rng.f64_range(-0.2, 0.2) * self.world_km).clamp(0.0, self.world_km),
                );
                let t2 = g.add_as(Tier::Tier2, p, self.world_km / 15.0);
                let lat = self.link_latency(&g, t1, t2);
                g.add_transit(t1, t2, lat, 40_000.0);
                // Multi-home ~40% of Tier-2s to a second Tier-1.
                if t1_ids.len() > 1 && rng.chance(0.4) {
                    let mut alt = rng.pick(&t1_ids).to_owned();
                    if alt == t1 {
                        alt = t1_ids[(pi + 1) % t1_ids.len()];
                    }
                    if g.link_between(alt, t2).is_none() {
                        let lat = self.link_latency(&g, alt, t2);
                        g.add_transit(alt, t2, lat, 40_000.0);
                    }
                }
                t2_by_parent[pi].push(t2);
            }
        }
        // Tier-2 sibling peering.
        for siblings in &t2_by_parent {
            for i in 0..siblings.len() {
                for j in (i + 1)..siblings.len() {
                    if g.link_between(siblings[i], siblings[j]).is_none()
                        && rng.chance(tier2_peering_prob)
                    {
                        let lat = self.link_latency(&g, siblings[i], siblings[j]);
                        g.add_peering(siblings[i], siblings[j], lat, 10_000.0);
                    }
                }
            }
        }
        // Tier-3 locals.
        let all_t2: Vec<AsId> = t2_by_parent.iter().flatten().copied().collect();
        for &t2 in &all_t2 {
            let mut children = Vec::new();
            for _ in 0..tier3_per_tier2 {
                let pc = g.nodes[t2.idx()].geo_center;
                let p = GeoPoint::new(
                    (pc.x_km + rng.f64_range(-0.08, 0.08) * self.world_km)
                        .clamp(0.0, self.world_km),
                    (pc.y_km + rng.f64_range(-0.08, 0.08) * self.world_km)
                        .clamp(0.0, self.world_km),
                );
                let t3 = g.add_as(Tier::Tier3, p, self.world_km / 40.0);
                let lat = self.link_latency(&g, t2, t3);
                g.add_transit(t2, t3, lat, 10_000.0);
                children.push(t3);
            }
            // Local ISPs in the same region sometimes peer (this is exactly
            // the peering-agreement incentive §2.1 discusses).
            for i in 0..children.len() {
                for j in (i + 1)..children.len() {
                    if rng.chance(tier3_peering_prob) {
                        let lat = self.link_latency(&g, children[i], children[j]);
                        g.add_peering(children[i], children[j], lat, 1_000.0);
                    }
                }
            }
            t3_by_parent.push(children);
        }
        g
    }

    fn preferential(&self, n: usize, m: usize, rng: &mut SimRng) -> AsGraph {
        assert!(n >= 2 && m >= 1);
        let mut g = AsGraph::new();
        let m = m.min(n - 1);
        // Seed clique of m+1 Tier-1s, peered.
        let seed = m + 1;
        for _ in 0..seed.min(n) {
            let p = self.random_point(rng);
            g.add_as(Tier::Tier1, p, self.world_km / 10.0);
        }
        for i in 0..seed.min(n) {
            for j in (i + 1)..seed.min(n) {
                let (a, b) = (AsId::from_index(i), AsId::from_index(j));
                let lat = self.link_latency(&g, a, b);
                g.add_peering(a, b, lat, 100_000.0);
            }
        }
        // Degree-proportional attachment; endpoint list doubles as the
        // sampling urn.
        let mut urn: Vec<u16> = Vec::new();
        for l in &g.links {
            urn.push(l.a.0);
            urn.push(l.b.0);
        }
        for i in seed..n {
            let p = self.random_point(rng);
            let tier = if i < n / 10 { Tier::Tier2 } else { Tier::Tier3 };
            let new = g.add_as(tier, p, self.world_km / 30.0);
            let mut chosen: Vec<AsId> = Vec::new();
            let mut guard = 0;
            while chosen.len() < m && guard < 10_000 {
                guard += 1;
                let pick = AsId(*rng.pick(&urn));
                if pick != new && !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for provider in chosen {
                let lat = self.link_latency(&g, provider, new);
                g.add_transit(provider, new, lat, 10_000.0);
                urn.push(provider.0);
                urn.push(new.0);
            }
        }
        g
    }
}

/// The exact 5-AS testlab spec of the reprinted study (§5 of \[1\]):
/// "Using 5 routers … we configure four different 5-AS topologies: ring,
/// star, tree and random mesh."
pub fn testlab_specs() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("ring", TopologySpec::new(TopologyKind::Ring { n: 5 })),
        ("star", TopologySpec::new(TopologyKind::Star { n: 5 })),
        (
            "tree",
            TopologySpec::new(TopologyKind::Tree { n: 5, fanout: 2 }),
        ),
        (
            "mesh",
            TopologySpec::new(TopologyKind::Mesh {
                n: 5,
                extra_edge_prob: 0.4,
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xBEEF)
    }

    #[test]
    fn ring_structure() {
        let g = TopologySpec::new(TopologyKind::Ring { n: 5 }).build(&mut rng());
        assert_eq!(g.len(), 5);
        assert_eq!(g.links.len(), 5);
        assert!(g.is_connected(None));
        for i in 0..5 {
            assert_eq!(g.incident(AsId(i)).len(), 2);
        }
    }

    #[test]
    fn star_structure() {
        let g = TopologySpec::new(TopologyKind::Star { n: 5 }).build(&mut rng());
        assert_eq!(g.links.len(), 4);
        assert_eq!(g.incident(AsId(0)).len(), 4);
        for i in 1..5 {
            assert_eq!(g.incident(AsId(i)).len(), 1);
        }
    }

    #[test]
    fn tree_structure() {
        let g = TopologySpec::new(TopologyKind::Tree { n: 7, fanout: 2 }).build(&mut rng());
        assert_eq!(g.links.len(), 6);
        assert!(g.is_connected(None));
        let (transit, peering) = g.link_counts();
        assert_eq!((transit, peering), (6, 0));
        // Root has no providers; leaves have exactly one.
        assert!(g.providers(AsId(0)).is_empty());
        assert_eq!(g.providers(AsId(6)), vec![AsId(2)]);
    }

    #[test]
    fn mesh_is_connected_with_zero_extras() {
        let g = TopologySpec::new(TopologyKind::Mesh {
            n: 30,
            extra_edge_prob: 0.0,
        })
        .build(&mut rng());
        assert_eq!(g.links.len(), 29); // exactly the spanning tree
        assert!(g.is_connected(None));
    }

    #[test]
    fn mesh_extras_increase_edges() {
        let g = TopologySpec::new(TopologyKind::Mesh {
            n: 30,
            extra_edge_prob: 0.3,
        })
        .build(&mut rng());
        assert!(g.links.len() > 29);
        assert!(g.is_connected(None));
    }

    #[test]
    fn hierarchical_structure() {
        let g = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 3,
            tier2_per_tier1: 4,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        })
        .build(&mut rng());
        assert_eq!(g.len(), 3 + 12 + 36);
        assert!(g.is_connected(None));
        // The Tier-1 core is a full peering mesh.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(
                    g.relationship(AsId(i), AsId(j)),
                    Some(crate::asgraph::Relationship::PeerWith)
                );
            }
        }
        // Every Tier-2/Tier-3 AS has at least one provider.
        for node in &g.nodes {
            if node.tier != Tier::Tier1 {
                assert!(
                    !g.providers(node.id).is_empty(),
                    "{} has no provider",
                    node.id
                );
            }
        }
    }

    #[test]
    fn preferential_attachment_degree_skew() {
        let g = TopologySpec::new(TopologyKind::PreferentialAttachment { n: 200, m: 2 })
            .build(&mut rng());
        assert!(g.is_connected(None));
        let mut degrees: Vec<usize> = (0..g.len())
            .map(|i| g.incident(AsId(i as u16)).len())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy-tailed: the max degree should far exceed the median.
        assert!(degrees[0] >= 4 * degrees[g.len() / 2]);
    }

    #[test]
    fn testlab_specs_build() {
        for (name, spec) in testlab_specs() {
            let g = spec.build(&mut rng());
            assert_eq!(g.len(), 5, "{name}");
            assert!(g.is_connected(None), "{name}");
        }
    }

    #[test]
    fn routing_mode_defaults() {
        assert_eq!(
            TopologySpec::new(TopologyKind::Ring { n: 5 }).routing_mode(),
            RoutingMode::ShortestPath
        );
        assert_eq!(
            TopologySpec::new(TopologyKind::Hierarchical {
                tier1: 2,
                tier2_per_tier1: 2,
                tier3_per_tier2: 2,
                tier2_peering_prob: 0.0,
                tier3_peering_prob: 0.0,
            })
            .routing_mode(),
            RoutingMode::ValleyFree
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 3,
            tier3_per_tier2: 2,
            tier2_peering_prob: 0.5,
            tier3_peering_prob: 0.5,
        });
        let a = spec.build(&mut SimRng::new(7));
        let b = spec.build(&mut SimRng::new(7));
        assert_eq!(a.links.len(), b.links.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!((la.a, la.b, la.latency_us), (lb.a, lb.b, lb.latency_us));
        }
    }
}
