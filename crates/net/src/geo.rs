//! Planar geolocation.
//!
//! The paper's geolocation information is "typically [represented in] the
//! UTM (Universal Transverse Mercator) coordinate system" — i.e. planar
//! kilometre coordinates. We model the world as a flat box in kilometres;
//! at continental scale the projection error is irrelevant to the overlay
//! algorithms under study.

/// A point in planar (UTM-like) kilometre coordinates.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct GeoPoint {
    /// Easting in kilometres.
    pub x_km: f64,
    /// Northing in kilometres.
    pub y_km: f64,
}

impl GeoPoint {
    /// Creates a point.
    pub fn new(x_km: f64, y_km: f64) -> Self {
        GeoPoint { x_km, y_km }
    }

    /// Euclidean distance in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let dx = self.x_km - other.x_km;
        let dy = self.y_km - other.y_km;
        (dx * dx + dy * dy).sqrt()
    }

    /// Midpoint between two points.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        GeoPoint {
            x_km: (self.x_km + other.x_km) / 2.0,
            y_km: (self.y_km + other.y_km) / 2.0,
        }
    }
}

/// Propagation delay in microseconds for a geodesic of `km` kilometres in
/// fibre (speed of light × ~0.67, i.e. ≈ 5 µs/km).
pub fn propagation_delay_us(km: f64) -> u64 {
    (km * 5.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(3.0, 4.0);
        assert_eq!(a.distance_km(&b), 5.0);
        assert_eq!(b.distance_km(&a), 5.0);
        assert_eq!(a.distance_km(&a), 0.0);
    }

    #[test]
    fn midpoint_is_centered() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, 20.0);
        assert_eq!(a.midpoint(&b), GeoPoint::new(5.0, 10.0));
    }

    #[test]
    fn propagation_scale() {
        // Transatlantic ~6000 km ≈ 30 ms one-way.
        assert_eq!(propagation_delay_us(6000.0), 30_000);
        assert_eq!(propagation_delay_us(0.0), 0);
    }
}
