//! End hosts (peers) attached to the AS graph.
//!
//! Each host carries exactly the four kinds of underlay information the
//! paper's taxonomy is about: its **ISP** (the AS it attaches to), its
//! contribution to **latency** (the access link), its **geolocation**
//! (a point inside the ISP's service area) and its **peer resources**
//! (bandwidth, CPU, storage, expected online time).

use crate::asgraph::AsGraph;
use crate::geo::GeoPoint;
use crate::ids::{AsId, HostId};
use uap_sim::SimRng;

/// Access-link technology profile; determines bandwidth and first-hop
/// latency. The mix mirrors a 2008-era broadband population, which is what
/// the surveyed measurement studies saw.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessProfile {
    /// ADSL: fast down, slow up, moderate latency.
    Dsl,
    /// Cable: faster down, slow up.
    Cable,
    /// Fibre/ethernet: symmetric and fast.
    Fiber,
    /// University/enterprise LAN: very fast, very low latency.
    Campus,
}

impl AccessProfile {
    /// `(down_kbps, up_kbps, access_latency_us)` for this profile.
    pub fn parameters(self) -> (u32, u32, u64) {
        match self {
            AccessProfile::Dsl => (6_000, 640, 15_000),
            AccessProfile::Cable => (16_000, 1_500, 10_000),
            AccessProfile::Fiber => (50_000, 25_000, 3_000),
            AccessProfile::Campus => (100_000, 100_000, 1_000),
        }
    }

    /// Draws a profile from the default 2008-ish mix
    /// (50 % DSL, 30 % cable, 15 % fibre, 5 % campus).
    pub fn sample(rng: &mut SimRng) -> AccessProfile {
        let u = rng.f64();
        if u < 0.50 {
            AccessProfile::Dsl
        } else if u < 0.80 {
            AccessProfile::Cable
        } else if u < 0.95 {
            AccessProfile::Fiber
        } else {
            AccessProfile::Campus
        }
    }
}

/// One end host.
#[derive(Clone, Debug)]
pub struct Host {
    /// Identifier (index into [`HostPopulation::hosts`]).
    pub id: HostId,
    /// The AS (ISP) this host connects through — its *ISP-location*.
    pub asn: AsId,
    /// IPv4 address, allocated from the ISP's prefix.
    pub ip: u32,
    /// Exact geolocation (what a GPS receiver would report).
    pub geo: GeoPoint,
    /// Access profile.
    pub access: AccessProfile,
    /// First-hop latency in microseconds.
    pub access_latency_us: u64,
    /// Downstream bandwidth in kbit/s.
    pub down_kbps: u32,
    /// Upstream bandwidth in kbit/s.
    pub up_kbps: u32,
    /// Relative CPU capacity (1.0 = baseline desktop).
    pub cpu: f64,
    /// Shared storage in gigabytes.
    pub storage_gb: f64,
    /// Long-run fraction of time this host is online (used by
    /// resource-aware superpeer selection).
    pub online_fraction: f64,
}

impl Host {
    /// A scalar capacity score combining bandwidth, CPU and stability —
    /// the quantity a SkyEye-style resource directory ranks peers by.
    pub fn capacity_score(&self) -> f64 {
        let bw = (self.up_kbps as f64 / 1_000.0).sqrt();
        bw * self.cpu * self.online_fraction
    }
}

/// How hosts are spread over the ASes.
#[derive(Clone, Debug)]
pub enum AttachmentDist {
    /// Every AS equally likely.
    Uniform,
    /// Only Tier-3 (local) ASes, equally likely — the realistic choice for
    /// residential peers.
    LeafOnly,
    /// Explicit per-AS weights (need not be normalized).
    Weighted(Vec<f64>),
}

/// Population request.
#[derive(Clone, Debug)]
pub struct PopulationSpec {
    /// Number of hosts.
    pub n: usize,
    /// Attachment distribution over ASes.
    pub attachment: AttachmentDist,
}

impl PopulationSpec {
    /// `n` hosts attached to leaf ASes.
    pub fn leaf(n: usize) -> Self {
        PopulationSpec {
            n,
            attachment: AttachmentDist::LeafOnly,
        }
    }

    /// `n` hosts attached uniformly to all ASes.
    pub fn uniform(n: usize) -> Self {
        PopulationSpec {
            n,
            attachment: AttachmentDist::Uniform,
        }
    }
}

/// The set of hosts attached to an AS graph.
#[derive(Clone, Debug, Default)]
pub struct HostPopulation {
    /// All hosts, indexed by [`HostId`].
    pub hosts: Vec<Host>,
    by_as: Vec<Vec<HostId>>,
}

impl HostPopulation {
    /// Builds a population over `graph` according to `spec`.
    pub fn build(graph: &AsGraph, spec: &PopulationSpec, rng: &mut SimRng) -> HostPopulation {
        let weights: Vec<f64> = match &spec.attachment {
            AttachmentDist::Uniform => vec![1.0; graph.len()],
            AttachmentDist::LeafOnly => graph
                .nodes
                .iter()
                .map(|n| {
                    if n.tier == crate::asgraph::Tier::Tier3 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect(),
            AttachmentDist::Weighted(w) => {
                assert_eq!(w.len(), graph.len(), "weight vector length mismatch");
                w.clone()
            }
        };
        // If LeafOnly found no Tier-3 AS (flat testlab graphs), fall back to
        // uniform so the testlab topologies still work.
        let weights = if weights.iter().all(|&w| w <= 0.0) {
            vec![1.0; graph.len()]
        } else {
            weights
        };
        let cdf: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, &w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let total = *cdf.last().expect("non-empty graph"); // lint:allow(expect)

        let mut hosts = Vec::with_capacity(spec.n);
        let mut by_as = vec![Vec::new(); graph.len()];
        let mut per_as_seq = vec![0u32; graph.len()];
        for i in 0..spec.n {
            let u = rng.f64() * total;
            let as_idx = cdf.partition_point(|&c| c <= u).min(graph.len() - 1);
            let asn = AsId::from_index(as_idx);
            let node = &graph.nodes[as_idx];
            // Scatter inside the ISP's service disc.
            let theta = rng.f64_range(0.0, std::f64::consts::TAU);
            let rad = node.service_radius_km * rng.f64().sqrt();
            let geo = GeoPoint::new(
                node.geo_center.x_km + rad * theta.cos(),
                node.geo_center.y_km + rad * theta.sin(),
            );
            let access = AccessProfile::sample(rng);
            let (down, up, acc_lat) = access.parameters();
            // Jitter the profile a bit so hosts are not identical.
            let jitter = rng.f64_range(0.8, 1.2);
            let seq = per_as_seq[as_idx];
            per_as_seq[as_idx] += 1;
            let id = HostId::from_index(i);
            hosts.push(Host {
                id,
                asn,
                // Synthetic allocation: each AS owns the /16 `10.<as>.0.0`.
                // lint:allow(cast) — as_idx < graph.len() <= u16::MAX (AsId width); fits the /16 octets
                ip: (10u32 << 24) | ((as_idx as u32) << 16) | (seq & 0xFFFF),
                geo,
                access,
                access_latency_us: (acc_lat as f64 * jitter) as u64,
                // lint:allow(cast) — profile kbps <= ~1e6 and jitter <= 1.2, far under u32::MAX
                down_kbps: (down as f64 * jitter) as u32,
                // lint:allow(cast) — same bound as down_kbps
                up_kbps: (up as f64 * jitter) as u32,
                cpu: rng.f64_range(0.5, 4.0),
                storage_gb: rng.f64_range(1.0, 500.0),
                online_fraction: rng.f64_range(0.05, 1.0),
            });
            by_as[as_idx].push(id);
        }
        HostPopulation { hosts, by_as }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The host record.
    #[inline]
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.idx()]
    }

    /// Hosts attached to `asn`.
    pub fn in_as(&self, asn: AsId) -> &[HostId] {
        &self.by_as[asn.idx()]
    }

    /// The AS a host attaches through.
    #[inline]
    pub fn as_of(&self, id: HostId) -> AsId {
        self.hosts[id.idx()].asn
    }

    /// Iterator over all host ids.
    pub fn ids(&self) -> impl Iterator<Item = HostId> {
        let n = HostId::from_index(self.hosts.len()).0;
        (0..n).map(HostId)
    }

    /// Moves a host to another AS (mobile peer support, §6): reassigns the
    /// attachment, allocates an IP from the new prefix, and places the
    /// host inside the new service area.
    pub fn migrate(&mut self, graph: &AsGraph, h: HostId, new_as: AsId, rng: &mut SimRng) {
        let old_as = self.hosts[h.idx()].asn;
        if old_as == new_as {
            return;
        }
        self.by_as[old_as.idx()].retain(|&x| x != h);
        let seq = HostId::from_index(self.by_as[new_as.idx()].len()).0;
        self.by_as[new_as.idx()].push(h);
        let node = &graph.nodes[new_as.idx()];
        let theta = rng.f64_range(0.0, std::f64::consts::TAU);
        let rad = node.service_radius_km * rng.f64().sqrt();
        let host = &mut self.hosts[h.idx()];
        host.asn = new_as;
        // lint:allow(cast) — idx() comes from a u16 AsId; fits the /16 octets
        host.ip = (10u32 << 24) | ((new_as.idx() as u32) << 16) | (seq & 0xFFFF);
        host.geo = GeoPoint::new(
            node.geo_center.x_km + rad * theta.cos(),
            node.geo_center.y_km + rad * theta.sin(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TopologyKind, TopologySpec};

    fn graph() -> AsGraph {
        TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.0,
            tier3_peering_prob: 0.2,
        })
        .build(&mut SimRng::new(1))
    }

    #[test]
    fn leaf_only_attaches_to_tier3() {
        let g = graph();
        let pop = HostPopulation::build(&g, &PopulationSpec::leaf(500), &mut SimRng::new(2));
        assert_eq!(pop.len(), 500);
        for h in &pop.hosts {
            assert_eq!(g.nodes[h.asn.idx()].tier, crate::asgraph::Tier::Tier3);
        }
    }

    #[test]
    fn by_as_index_is_consistent() {
        let g = graph();
        let pop = HostPopulation::build(&g, &PopulationSpec::uniform(300), &mut SimRng::new(3));
        let mut counted = 0;
        for a in 0..g.len() {
            for &h in pop.in_as(AsId(a as u16)) {
                assert_eq!(pop.as_of(h), AsId(a as u16));
                counted += 1;
            }
        }
        assert_eq!(counted, 300);
    }

    #[test]
    fn ips_encode_the_as() {
        let g = graph();
        let pop = HostPopulation::build(&g, &PopulationSpec::leaf(100), &mut SimRng::new(4));
        for h in &pop.hosts {
            assert_eq!((h.ip >> 16) & 0xFF, h.asn.0 as u32);
            assert_eq!(h.ip >> 24, 10);
        }
    }

    #[test]
    fn hosts_lie_within_service_area() {
        let g = graph();
        let pop = HostPopulation::build(&g, &PopulationSpec::leaf(200), &mut SimRng::new(5));
        for h in &pop.hosts {
            let node = &g.nodes[h.asn.idx()];
            let d = h.geo.distance_km(&node.geo_center);
            assert!(d <= node.service_radius_km + 1e-9, "{d} > radius");
        }
    }

    #[test]
    fn weighted_attachment() {
        let g = graph();
        let mut w = vec![0.0; g.len()];
        w[g.len() - 1] = 1.0;
        let pop = HostPopulation::build(
            &g,
            &PopulationSpec {
                n: 50,
                attachment: AttachmentDist::Weighted(w),
            },
            &mut SimRng::new(6),
        );
        assert!(pop
            .hosts
            .iter()
            .all(|h| h.asn == AsId((g.len() - 1) as u16)));
    }

    #[test]
    fn capacity_score_orders_sensibly() {
        let g = graph();
        let pop = HostPopulation::build(&g, &PopulationSpec::leaf(2), &mut SimRng::new(7));
        let mut strong = pop.hosts[0].clone();
        strong.up_kbps = 100_000;
        strong.cpu = 4.0;
        strong.online_fraction = 1.0;
        let mut weak = pop.hosts[1].clone();
        weak.up_kbps = 640;
        weak.cpu = 0.5;
        weak.online_fraction = 0.1;
        assert!(strong.capacity_score() > 10.0 * weak.capacity_score());
    }

    #[test]
    fn population_build_is_deterministic() {
        let g = graph();
        let a = HostPopulation::build(&g, &PopulationSpec::leaf(100), &mut SimRng::new(9));
        let b = HostPopulation::build(&g, &PopulationSpec::leaf(100), &mut SimRng::new(9));
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.up_kbps, y.up_kbps);
        }
    }
}
