//! Typed identifiers for underlay entities.

use std::fmt;

/// An Autonomous System (ISP) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AsId(pub u16);

impl AsId {
    /// The AS id as a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An end-host (peer) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct HostId(pub u32);

impl HostId {
    /// The host id as a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_idx() {
        assert_eq!(AsId(3).to_string(), "AS3");
        assert_eq!(AsId(3).idx(), 3);
        assert_eq!(HostId(42).to_string(), "h42");
        assert_eq!(HostId(42).idx(), 42);
    }
}
