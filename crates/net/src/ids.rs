//! Typed identifiers for underlay entities.

use std::fmt;

/// An Autonomous System (ISP) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AsId(pub u16);

impl AsId {
    /// The AS id as a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense `usize` index, checking the `u16` bound.
    ///
    /// Topology generators and sweeps iterate ASes by dense index; this
    /// is the single audited narrowing from that index to the id width,
    /// replacing scattered `as u16` truncations that would silently wrap
    /// past 65 535 ASes.
    pub fn from_index(i: usize) -> AsId {
        AsId(u16::try_from(i).expect("AS index exceeds u16::MAX")) // lint:allow(expect) — explicit bound check is the point
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An end-host (peer) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct HostId(pub u32);

impl HostId {
    /// The host id as a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense `usize` index, checking the `u32` bound.
    ///
    /// Million-host populations are indexed by `usize`; this is the
    /// single audited narrowing to the id width — a wrap here would
    /// alias two distinct hosts, so the bound is checked, not assumed.
    pub fn from_index(i: usize) -> HostId {
        HostId(u32::try_from(i).expect("host index exceeds u32::MAX")) // lint:allow(expect) — explicit bound check is the point
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_idx() {
        assert_eq!(AsId(3).to_string(), "AS3");
        assert_eq!(AsId(3).idx(), 3);
        assert_eq!(HostId(42).to_string(), "h42");
        assert_eq!(HostId(42).idx(), 42);
    }

    #[test]
    fn from_index_round_trips() {
        assert_eq!(AsId::from_index(7), AsId(7));
        assert_eq!(AsId::from_index(u16::MAX as usize), AsId(u16::MAX));
        assert_eq!(HostId::from_index(1_000_000), HostId(1_000_000));
        assert_eq!(HostId::from_index(u32::MAX as usize), HostId(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "AS index exceeds u16::MAX")]
    fn as_from_index_checks_the_bound() {
        let _ = AsId::from_index(u16::MAX as usize + 1);
    }

    #[test]
    #[should_panic(expected = "host index exceeds u32::MAX")]
    fn host_from_index_checks_the_bound() {
        let _ = HostId::from_index(u32::MAX as usize + 1);
    }
}
