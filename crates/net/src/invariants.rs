//! Runtime invariant checkers for the underlay model.
//!
//! Complements the static determinism lint (`cargo run -p xtask -- lint`):
//! where the lint bans nondeterminism *sources*, these checkers catch
//! *logic* corruption at the model's trust boundaries. Each checker
//! returns `Err(description)` rather than panicking so tests can assert
//! on the failure text; the call sites in [`crate::routing`],
//! [`crate::traffic`] and [`crate::cost`] run them under
//! `debug_assertions` only, so release experiment sweeps pay nothing.
//!
//! Checkers:
//!
//! * [`check_valley_free`] — an AS path obeys the Gao export rules
//!   (§2.1 / Figure 1): climb customer→provider links, cross at most one
//!   peering link, then descend provider→customer links; no valleys, no
//!   AS revisited.
//! * [`check_traffic_conservation`] — the per-link byte ledger of
//!   [`crate::traffic::TrafficAccounting`] sums to its per-category
//!   totals: bytes are neither created nor destroyed by classification.
//! * [`check_cost_non_negative`] — no bill contains a negative or
//!   non-finite charge (the cost model is a sum of non-negative tariffs).
//! * [`check_flow_capacity`] / [`check_flow_conservation`] /
//!   [`check_flow_max_min`] — the max-min fair allocation produced by
//!   [`crate::flow::FlowAllocator`] never overloads a resource, its
//!   per-resource loads equal the sum of the crossing flows' rates, and
//!   every flow is bottlenecked at some saturated resource (the defining
//!   property of max-min fairness).

use crate::asgraph::{AsGraph, LinkKind, Relationship};
use crate::cost::IspBill;
use crate::ids::AsId;
use crate::traffic::TrafficAccounting;

/// Validates that `path` (a sequence of ASes, as returned by
/// [`crate::routing::Routing::path_ases`]) is valley-free: the
/// relationship sequence matches `up* peer? down*`, every hop is a real
/// link, and no AS appears twice.
pub fn check_valley_free(graph: &AsGraph, path: &[AsId]) -> Result<(), String> {
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    enum Phase {
        Climbing,
        Descending,
    }
    let mut phase = Phase::Climbing;
    for (i, w) in path.windows(2).enumerate() {
        let (x, y) = (w[0], w[1]);
        let rel = graph
            .relationship(x, y)
            .ok_or_else(|| format!("hop {i}: {x} and {y} are not directly linked"))?;
        phase = match (phase, rel) {
            // Climbing: x buys transit from y (y is x's provider).
            (Phase::Climbing, Relationship::CustomerOf) => Phase::Climbing,
            // At most one peering crossing, only at the top of the climb.
            (Phase::Climbing, Relationship::PeerWith) => Phase::Descending,
            // Descending: x sells transit to y; allowed from either phase.
            (_, Relationship::ProviderOf) => Phase::Descending,
            (Phase::Descending, rel) => {
                return Err(format!(
                    "hop {i}: {x}->{y} is {rel:?} after the path started descending — a valley"
                ));
            }
        };
    }
    for (i, a) in path.iter().enumerate() {
        if path[i + 1..].contains(a) {
            return Err(format!("AS {a} appears twice — routing loop"));
        }
    }
    Ok(())
}

/// Validates byte conservation in `traffic` against `graph`: the sum of
/// per-link bytes over peering links must equal the peering total, and
/// likewise for transit links. (Intra-AS bytes never touch a link.)
// lint:allow(alloc) — invariant checker; allocates only error messages
pub fn check_traffic_conservation(
    graph: &AsGraph,
    traffic: &TrafficAccounting,
) -> Result<(), String> {
    let (_, peering_total, transit_total) = traffic.totals();
    let mut peering_sum = 0u64;
    let mut transit_sum = 0u64;
    for (li, link) in graph.links.iter().enumerate() {
        let li = u32::try_from(li).expect("link index exceeds u32::MAX"); // lint:allow(expect) — explicit bound check
        let b = traffic.link_bytes(li);
        match link.kind {
            LinkKind::Peering => peering_sum += b,
            LinkKind::Transit => transit_sum += b,
        }
    }
    if peering_sum != peering_total {
        return Err(format!(
            "peering bytes not conserved: per-link sum {peering_sum} != total {peering_total}"
        ));
    }
    if transit_sum != transit_total {
        return Err(format!(
            "transit bytes not conserved: per-link sum {transit_sum} != total {transit_total}"
        ));
    }
    Ok(())
}

/// Validates that every bill is composed of finite, non-negative charges.
pub fn check_cost_non_negative(bills: &[IspBill]) -> Result<(), String> {
    for b in bills {
        for (what, v) in [
            ("transit_p95_mbps", b.transit_p95_mbps),
            ("transit_usd", b.transit_usd),
            ("peering_usd", b.peering_usd),
            ("total_usd", b.total_usd()),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{}: {what} = {v} (negative or non-finite)", b.asn));
            }
        }
    }
    Ok(())
}

/// Tolerance for float comparisons on flow rates/loads (bytes/second):
/// proportional slack plus one byte/second of absolute slack, matching
/// the saturation test inside the progressive-filling loop.
fn flow_eps(scale: f64) -> f64 {
    scale.abs() * 1e-9 + 1.0
}

/// Validates that no resource the current flow set touches is loaded
/// beyond its capacity. `cap` and `load` are the allocator's per-resource
/// arrays; `used` lists the resource indices the flow set crosses.
// lint:allow(alloc) — invariant checker; debug-only, allocates only error messages
pub fn check_flow_capacity(cap: &[f64], load: &[f64], used: &[u32]) -> Result<(), String> {
    for &r in used {
        let r = r as usize;
        if !load[r].is_finite() || load[r] < 0.0 {
            return Err(format!("resource {r}: load {} is invalid", load[r]));
        }
        if load[r] > cap[r] + flow_eps(cap[r]) {
            return Err(format!(
                "resource {r}: load {} exceeds capacity {}",
                load[r], cap[r]
            ));
        }
    }
    Ok(())
}

/// Validates rate conservation: each resource's load equals the sum of
/// the rates of the flows crossing it (bytes/second are neither created
/// nor destroyed between the per-flow and per-resource views). `flows`
/// is the allocator's `(id, arena start, resource count)` table and
/// `arena` the concatenated resource spans; `rates` is parallel to
/// `flows`.
// lint:allow(alloc) — invariant checker; debug-only, allocates one scratch sum table
pub fn check_flow_conservation(
    load: &[f64],
    rates: &[f64],
    flows: &[(u64, u32, u32)],
    arena: &[u32],
) -> Result<(), String> {
    let mut sums = vec![0.0f64; load.len()];
    for (fi, &(_, start, len)) in flows.iter().enumerate() {
        for &r in &arena[start as usize..(start + len) as usize] {
            sums[r as usize] += rates[fi];
        }
    }
    for (r, (&s, &l)) in sums.iter().zip(load).enumerate() {
        if (s - l).abs() > flow_eps(l.max(s)) {
            return Err(format!(
                "resource {r}: flow-rate sum {s} != recorded load {l}"
            ));
        }
    }
    Ok(())
}

/// Validates the max-min property: every flow crosses at least one
/// saturated resource (its bottleneck). A flow with headroom on every
/// resource it touches could be raised without hurting anyone, so the
/// allocation would not be max-min fair.
// lint:allow(alloc) — invariant checker; debug-only, allocates only error messages
pub fn check_flow_max_min(
    cap: &[f64],
    load: &[f64],
    flows: &[(u64, u32, u32)],
    arena: &[u32],
) -> Result<(), String> {
    for &(id, start, len) in flows {
        let span = &arena[start as usize..(start + len) as usize];
        let bottlenecked = span.iter().any(|&r| {
            let r = r as usize;
            load[r] + flow_eps(cap[r]) >= cap[r]
        });
        if !bottlenecked {
            return Err(format!(
                "flow {id}: no saturated resource on its path — not max-min"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::Tier;
    use crate::cost::{bill_all, CostParams};
    use crate::geo::GeoPoint;
    use crate::routing::{Routing, RoutingMode};
    use uap_sim::SimTime;

    /// T1 over two T2s over two stubs each, stubs b/c peered.
    fn hierarchy() -> AsGraph {
        let mut g = AsGraph::new();
        let p = |x: f64| GeoPoint::new(x, 0.0);
        let t1 = g.add_as(Tier::Tier1, p(0.0), 100.0); // AS0
        let t2a = g.add_as(Tier::Tier2, p(-100.0), 50.0); // AS1
        let t2b = g.add_as(Tier::Tier2, p(100.0), 50.0); // AS2
        let a = g.add_as(Tier::Tier3, p(-150.0), 20.0); // AS3
        let b = g.add_as(Tier::Tier3, p(-50.0), 20.0); // AS4
        let c = g.add_as(Tier::Tier3, p(50.0), 20.0); // AS5
        g.add_transit(t1, t2a, 5_000, 40_000.0);
        g.add_transit(t1, t2b, 5_000, 40_000.0);
        g.add_transit(t2a, a, 2_000, 10_000.0);
        g.add_transit(t2a, b, 2_000, 10_000.0);
        g.add_transit(t2b, c, 2_000, 10_000.0);
        g.add_peering(b, c, 1_000, 1_000.0);
        g
    }

    #[test]
    fn computed_valley_free_paths_validate() {
        let g = hierarchy();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for src in 0..g.len() {
            for dst in 0..g.len() {
                if src == dst {
                    continue;
                }
                let path = r.path_ases(&g, AsId(src as u16), AsId(dst as u16)).unwrap();
                check_valley_free(&g, &path).unwrap_or_else(|e| panic!("path {path:?}: {e}"));
            }
        }
    }

    #[test]
    fn valley_is_rejected() {
        let g = hierarchy();
        // a -> t2a -> b -> c: descends t2a->b then crosses peering b~c.
        let valley = [AsId(3), AsId(1), AsId(4), AsId(5)];
        let err = check_valley_free(&g, &valley).unwrap_err();
        assert!(err.contains("valley"), "{err}");
        // Unlinked hop.
        let err = check_valley_free(&g, &[AsId(3), AsId(5)]).unwrap_err();
        assert!(err.contains("not directly linked"), "{err}");
        // Loop.
        let err = check_valley_free(&g, &[AsId(3), AsId(1), AsId(0), AsId(1)]).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn double_peering_is_a_valley() {
        let mut g = hierarchy();
        let d = g.add_as(Tier::Tier3, GeoPoint::new(80.0, 0.0), 20.0); // AS6
        g.add_peering(AsId(5), d, 1_000, 1_000.0);
        // b ~ c ~ d crosses two peering links.
        let err = check_valley_free(&g, &[AsId(4), AsId(5), AsId(6)]).unwrap_err();
        assert!(err.contains("valley"), "{err}");
    }

    #[test]
    fn traffic_ledger_conserves_bytes() {
        let g = hierarchy();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let mut t = TrafficAccounting::new(&g);
        let mut now = SimTime::ZERO;
        for src in 0..g.len() {
            for dst in 0..g.len() {
                if src == dst {
                    continue;
                }
                let path = r.path_links(AsId(src as u16), AsId(dst as u16)).unwrap();
                t.record(&g, now, AsId(src as u16), path, 10_000);
                now += SimTime::from_secs(1);
            }
        }
        check_traffic_conservation(&g, &t).unwrap();
    }

    #[test]
    fn bills_validate_non_negative() {
        let g = hierarchy();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let mut t = TrafficAccounting::new(&g);
        let path = r.path_links(AsId(3), AsId(5)).unwrap();
        t.record(&g, SimTime::from_secs(30), AsId(3), path, 1 << 20);
        let bills = bill_all(&g, &t, &CostParams::default(), SimTime::from_hours(1));
        check_cost_non_negative(&bills).unwrap();
    }

    #[test]
    fn flow_checkers_accept_a_consistent_allocation() {
        // Two flows over three resources; flow 0 uses {0, 2}, flow 1 uses
        // {1, 2}. Resource 2 is the shared bottleneck.
        let cap = [10.0, 10.0, 8.0];
        let load = [4.0, 4.0, 8.0];
        let flows = [(0u64, 0u32, 2u32), (1, 2, 2)];
        let arena = [0u32, 2, 1, 2];
        let rates = [4.0, 4.0];
        check_flow_capacity(&cap, &load, &[0, 1, 2]).unwrap();
        check_flow_conservation(&load, &rates, &flows, &arena).unwrap();
        check_flow_max_min(&cap, &load, &flows, &arena).unwrap();
    }

    #[test]
    fn flow_checkers_catch_violations() {
        let cap = [10.0, 10.0, 8.0];
        let flows = [(0u64, 0u32, 2u32), (1, 2, 2)];
        let arena = [0u32, 2, 1, 2];
        // Overload.
        let err = check_flow_capacity(&cap, &[4.0, 4.0, 12.0], &[0, 1, 2]).unwrap_err();
        assert!(err.contains("exceeds capacity"), "{err}");
        // Non-finite load.
        assert!(check_flow_capacity(&cap, &[f64::NAN, 0.0, 0.0], &[0]).is_err());
        // Rates that do not sum to the recorded loads.
        let err =
            check_flow_conservation(&[4.0, 4.0, 8.0], &[4.0, 1.0], &flows, &arena).unwrap_err();
        assert!(err.contains("!= recorded load"), "{err}");
        // A flow with headroom everywhere it goes is not max-min.
        let err = check_flow_max_min(&cap, &[1.0, 1.0, 2.0], &flows, &arena).unwrap_err();
        assert!(err.contains("not max-min"), "{err}");
    }

    #[test]
    fn corrupt_bill_is_caught() {
        let g = hierarchy();
        let t = TrafficAccounting::new(&g);
        let mut bills = bill_all(&g, &t, &CostParams::default(), SimTime::from_hours(1));
        bills[0].transit_usd = -1.0;
        let err = check_cost_non_negative(&bills).unwrap_err();
        assert!(err.contains("transit_usd"), "{err}");
        bills[0].transit_usd = f64::NAN;
        assert!(check_cost_non_negative(&bills).is_err());
    }
}
