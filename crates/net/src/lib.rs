//! # uap-net — the underlay network model
//!
//! The paper defines the *underlay* as "the substrate on which the overlay
//! resides", abstracting the physical, MAC, network and transport layers.
//! This crate is that substrate, simulated:
//!
//! * [`asgraph`] — an AS-level graph of ISPs with **transit** (customer →
//!   provider) and **peering** links, mirroring the Internet hierarchy of
//!   the paper's Figure 1;
//! * [`gen`] — topology generators: the four testlab topologies of the
//!   Aggarwal et al. study the paper reprints (ring, star, tree, random
//!   mesh), a hierarchical local/transit-ISP Internet, and preferential
//!   attachment;
//! * [`routing`] — inter-domain routing, either plain shortest-path or
//!   **valley-free** (Gao export rules);
//! * [`host`] — end hosts with ISP attachment, IP address, geolocation and
//!   access-link resources;
//! * [`underlay`] — the façade overlays talk to: latency, AS hops, path
//!   lookup and per-category traffic accounting;
//! * [`traffic`] + [`cost`] — the transit-vs-peering **cost model** of the
//!   paper's Figure 2: transit billed per Mbps at the 95th percentile,
//!   peering at a flat fee;
//! * [`failure`] — link/AS failure injection for resilience experiments;
//! * [`fault`] — time-scheduled fault campaigns ([`FaultPlan`]): epoch-based
//!   link-down windows, latency inflation and host crash/restart, applied
//!   through the event engine with route-cache invalidation;
//! * [`flow`] — deterministic max-min fair bandwidth allocation
//!   (progressive filling) over per-host access links and shared inter-AS
//!   link capacities — the flow-level model behind BitTorrent rounds and
//!   Gnutella downloads;
//! * [`invariants`] — runtime checkers (valley-free routes, traffic
//!   conservation, cost non-negativity) wired in under `debug_assertions`.

#![forbid(unsafe_code)]

pub mod asgraph;
pub mod cost;
pub mod failure;
pub mod fault;
pub mod flow;
pub mod gen;
pub mod geo;
pub mod host;
pub mod ids;
pub mod invariants;
pub mod routing;
pub mod traffic;
pub mod underlay;

pub use asgraph::{AsGraph, AsLink, AsNode, LinkKind, Relationship, Tier};
pub use cost::{CostParams, IspBill};
pub use fault::{CompiledFaultPlan, FaultEpoch, FaultKind, FaultPlan, FaultState};
pub use flow::FlowAllocator;
pub use gen::{TopologyKind, TopologySpec};
pub use geo::GeoPoint;
pub use host::{AccessProfile, Host, HostPopulation, PopulationSpec};
pub use ids::{AsId, HostId};
pub use routing::{ReferenceRouting, RepairIndex, RepairStats, RouteSummary, Routing, RoutingMode};
pub use traffic::{TrafficAccounting, TrafficCategory};
pub use underlay::{Underlay, UnderlayConfig};
