//! Inter-domain routing.
//!
//! Two modes:
//!
//! * [`RoutingMode::ShortestPath`] — minimum-hop routing over all links,
//!   used for the flat testlab topologies where "a router is taken as an
//!   abstraction of an AS boundary";
//! * [`RoutingMode::ValleyFree`] — policy routing with Gao export rules:
//!   a path climbs customer→provider links, optionally crosses one peering
//!   link, then descends provider→customer links. This is what makes the
//!   hierarchical topologies bill traffic the way Figure 1's monetary
//!   arrows say they do.
//!
//! Paths are selected by minimum AS-hop count, tie-broken by accumulated
//! link latency and then deterministically by state index, so two runs with
//! the same topology always route identically.
//!
//! ## Hot-path layout
//!
//! Every query overlays issue (`latency_us`, `as_hops`, `path_links`,
//! transit-link counts) is answered from a fully materialized route
//! table: one flat [`RouteSummary`] per ordered `(src, dst)` pair plus a
//! single CSR link-index arena shared by all paths, so [`Routing::route`]
//! is one indexed load and [`Routing::path_links`] returns a borrowed
//! `&[u32]` slice without allocating. The table is built in parallel
//! across source ASes with `std::thread::scope` (each source's Dijkstra
//! is independent); workers own contiguous source ranges and results are
//! assembled in source order, so the table is **byte-identical** to the
//! serial build regardless of thread count or scheduling — see
//! `docs/PERFORMANCE.md` for the determinism argument and the
//! `threads` lint boundary that keeps scoped threads quarantined here.

use crate::asgraph::{AsGraph, LinkKind};
use crate::ids::AsId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Routing policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingMode {
    /// Minimum-hop over all links, ignoring business relationships.
    ShortestPath,
    /// Valley-free policy routing (up* peer? down*).
    ValleyFree,
}

const INF: u64 = u64::MAX;

/// Per-source Dijkstra result over the 2-phase state graph.
struct SrcTable {
    /// `(hops, latency_us)` per state; `hops == u32::MAX` means unreachable.
    hops: Vec<u32>,
    latency: Vec<u64>,
    /// Predecessor `(state, link)` per state.
    pred: Vec<Option<(u32, u32)>>,
}

/// Route metrics and CSR path location for one ordered `(src, dst)` pair.
///
/// `hops == u32::MAX` encodes an unreachable pair; [`Routing::route`]
/// filters those out, so a summary obtained through it always describes a
/// real path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteSummary {
    /// AS-hop count (0 for `src == dst`).
    pub hops: u32,
    /// Accumulated inter-AS link latency along the path, in microseconds.
    pub latency_us: u64,
    /// Number of transit (customer–provider) links on the path,
    /// precomputed so no per-transfer path scan is needed (traced by
    /// `account_transfer_traced` and reported in trace analyses).
    pub transit_links: u32,
    /// Offset of this pair's path in the shared link-index arena.
    path_off: usize,
    /// Number of links in the path (equals `hops` for reachable pairs).
    path_len: u32,
}

const UNREACHABLE: RouteSummary = RouteSummary {
    hops: u32::MAX,
    latency_us: INF,
    transit_links: 0,
    path_off: 0,
    path_len: 0,
};

/// One worker's output: the rows for a contiguous range of source ASes,
/// with `path_off` relative to the chunk-local arena (shifted during
/// assembly).
struct Chunk {
    summaries: Vec<RouteSummary>,
    arena: Vec<u32>,
}

/// A [`Chunk`] plus the per-source repair bookkeeping extracted from the
/// same Dijkstra runs: final per-state costs and the deduplicated set of
/// links each source's predecessor tree uses.
struct IndexedChunk {
    chunk: Chunk,
    /// `(hi - lo) × 2n` per-state hop counts.
    hops: Vec<u32>,
    /// `(hi - lo) × 2n` per-state latencies.
    latency: Vec<u64>,
    /// Concatenated sorted/deduped tree-link lists, one segment per source.
    tree_links: Vec<u32>,
    /// Per-source offsets into `tree_links` (`hi - lo + 1` entries).
    tree_off: Vec<usize>,
}

/// Telemetry from one [`Routing::repair_with_mask`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Links whose up/down status differs between the two masks.
    pub changed_links: usize,
    /// Sources whose rows had to be recomputed (0 when nothing changed).
    pub dirty_sources: usize,
    /// Total sources in the table.
    pub sources_total: usize,
    /// Whether the >50%-dirty heuristic fell back to a full rebuild.
    pub full_rebuild: bool,
}

/// Per-source bookkeeping that makes fault-epoch routing repairs
/// incremental: the final per-state Dijkstra costs of every source and a
/// link → sources inverted index over predecessor trees.
///
/// Built by [`Routing::compute_indexed`] alongside the table and updated
/// in place by [`Routing::repair_with_mask`] for the sources it
/// recomputes. Dirty detection is asymmetric:
///
/// * **Link removed** (masked): a source's row can only change if its
///   shortest-path tree uses the link — exact, via the inverted index.
///   (Non-tree links never carry a final predecessor, and with
///   strict-improvement relaxation the tree edge is always the
///   earliest-popping final-cost candidate, so deleting a non-tree link
///   leaves the row byte-identical.)
/// * **Link restored** (unmasked): the tree rule cannot apply (a masked
///   link is in no tree), so the per-state candidate test marks a source
///   dirty when the link could offer a path at most as costly as the
///   current per-state cost of either endpoint — `≤`, not `<`, because an
///   equal-cost candidate can change the deterministic tie-break winner.
///   Per-state (not best-phase) costs matter: in valley-free mode a
///   restored link can improve the *worse* phase of an endpoint and
///   propagate new descents downstream. If every restored link fails the
///   test against the old costs strictly, induction over path prefixes
///   shows no path through restored links reaches any state at ≤ its old
///   cost, so unmarked rows stay byte-identical even when several links
///   come back in the same epoch.
///
/// Scratch buffers (`dirty`, `dirty_list`, `arena_scratch`) are
/// struct-owned and reused across repairs per the allocation discipline.
pub struct RepairIndex {
    n: usize,
    n_links: usize,
    /// Bitset words per link row (`ceil(n / 64)`).
    words: usize,
    /// `n × 2n` per-state hop counts, row-major by source.
    hops: Vec<u32>,
    /// `n × 2n` per-state latencies, row-major by source.
    latency: Vec<u64>,
    /// Link → sources whose predecessor tree uses it (`n_links` bitset
    /// rows of `words` words each).
    link_sources: Vec<u64>,
    /// Scratch: dirty-source bitset for the repair in progress.
    dirty: Vec<u64>,
    /// Scratch: sorted dirty-source list of the most recent repair.
    dirty_list: Vec<u32>,
    /// Scratch: splice target for the rebuilt arena.
    arena_scratch: Vec<u32>,
}

impl RepairIndex {
    // lint:allow(alloc) — index construction; runs once per full routing (re)build
    fn new(n: usize, n_links: usize) -> RepairIndex {
        let words = n.div_ceil(64).max(1);
        RepairIndex {
            n,
            n_links,
            words,
            hops: Vec::with_capacity(n * 2 * n),
            latency: Vec::with_capacity(n * 2 * n),
            link_sources: vec![0; n_links * words],
            dirty: vec![0; words],
            dirty_list: Vec::new(),
            arena_scratch: Vec::new(),
        }
    }

    /// The sources recomputed by the most recent
    /// [`Routing::repair_with_mask`] call, ascending. Drives delta
    /// route-cache invalidation (only these rows changed).
    pub fn dirty_sources(&self) -> &[u32] {
        &self.dirty_list
    }

    #[inline]
    fn is_dirty(&self, s: usize) -> bool {
        self.dirty[s / 64] & (1 << (s % 64)) != 0
    }

    #[inline]
    fn set_dirty(&mut self, s: usize) {
        self.dirty[s / 64] |= 1 << (s % 64);
    }

    /// Installs one source's fresh per-state costs and tree links.
    fn apply_row(&mut self, s: usize, row: &RepairedRow) {
        let ns = self.n * 2;
        self.hops[s * ns..(s + 1) * ns].copy_from_slice(&row.hops);
        self.latency[s * ns..(s + 1) * ns].copy_from_slice(&row.latency);
        let w = s / 64;
        let bit = 1u64 << (s % 64);
        for li in 0..self.n_links {
            self.link_sources[li * self.words + w] &= !bit;
        }
        for &li in &row.tree_links {
            self.link_sources[li as usize * self.words + w] |= bit;
        }
    }

    /// Marks sources for which restoring link `li` could offer a path at
    /// most as costly as their current cost at either endpoint state (the
    /// conservative candidate test documented on [`RepairIndex`]).
    fn mark_link_up_candidates(&mut self, graph: &AsGraph, mode: RoutingMode, li: usize) {
        let link = &graph.links[li];
        let (a, b) = (link.a.idx() * 2, link.b.idx() * 2);
        let w = link.latency_us;
        // The state transitions this link enables (see `dijkstra`).
        let mut trans = [(0usize, 0usize); 3];
        let trans = match mode {
            RoutingMode::ShortestPath => {
                trans[0] = (a, b);
                trans[1] = (b, a);
                &trans[..2]
            }
            RoutingMode::ValleyFree => match link.kind {
                LinkKind::Transit => {
                    // Climb customer→provider, descend provider→customer.
                    trans[0] = (b, a);
                    trans[1] = (a, b + 1);
                    trans[2] = (a + 1, b + 1);
                    &trans[..3]
                }
                LinkKind::Peering => {
                    trans[0] = (a, b + 1);
                    trans[1] = (b, a + 1);
                    &trans[..2]
                }
            },
        };
        let ns = self.n * 2;
        for s in 0..self.n {
            if self.is_dirty(s) {
                continue;
            }
            let base = s * ns;
            for &(u, v) in trans {
                let hu = self.hops[base + u];
                if hu == u32::MAX {
                    continue;
                }
                let cand = (hu + 1, self.latency[base + u] + w);
                if cand <= (self.hops[base + v], self.latency[base + v]) {
                    self.set_dirty(s);
                    break;
                }
            }
        }
    }
}

/// One recomputed source row: summaries with chunk-local offsets, its
/// arena segment, and the repair-index payload.
struct RepairedRow {
    summaries: Vec<RouteSummary>,
    arena: Vec<u32>,
    hops: Vec<u32>,
    latency: Vec<u64>,
    tree_links: Vec<u32>,
}

/// All-pairs routing with precomputed per-pair summaries and CSR paths.
#[derive(PartialEq, Eq)]
pub struct Routing {
    mode: RoutingMode,
    n: usize,
    /// `n × n` summaries, row-major by source AS.
    summaries: Vec<RouteSummary>,
    /// All path link indices, one CSR arena shared by every pair.
    arena: Vec<u32>,
}

impl Routing {
    /// Computes routing tables for every source AS, fanning the per-source
    /// Dijkstra runs out over scoped threads. The result is byte-identical
    /// to [`Routing::compute_serial`] for any thread count.
    pub fn compute(graph: &AsGraph, mode: RoutingMode) -> Routing {
        Self::compute_with_mask(graph, mode, None)
    }

    /// Computes routing tables excluding links marked dead in `mask`
    /// (indexed by link index). Used by failure-injection experiments.
    pub fn compute_with_mask(graph: &AsGraph, mode: RoutingMode, mask: Option<&[bool]>) -> Routing {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::compute_with_mask_threads(graph, mode, mask, threads)
    }

    /// Like [`Routing::compute_with_mask`] with an explicit worker count
    /// (the differential tests sweep this to prove scheduling cannot leak
    /// into the table).
    // lint:allow(alloc) — table construction; runs once per routing (re)build
    pub fn compute_with_mask_threads(
        graph: &AsGraph,
        mode: RoutingMode,
        mask: Option<&[bool]>,
        threads: usize,
    ) -> Routing {
        let n = graph.len();
        let threads = threads.clamp(1, n.max(1));
        if n == 0 || threads == 1 {
            return Self::assemble(
                graph,
                mode,
                vec![Self::build_chunk(graph, mode, mask, 0, n)],
            );
        }
        // Contiguous source ranges, one per worker. Workers return their
        // chunks through join handles collected in spawn order, so the
        // assembled table depends only on (graph, mode, mask) — never on
        // which worker finished first.
        let per = n.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|w| (w * per, ((w + 1) * per).min(n)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        // The routing-build boundary: deterministic fork-join over
        // disjoint source ranges, joined in source order. lint:allow(threads)
        let chunks: Vec<Chunk> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| s.spawn(move || Self::build_chunk(graph, mode, mask, lo, hi)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("routing worker panicked")) // lint:allow(expect)
                .collect()
        });
        Self::assemble(graph, mode, chunks)
    }

    /// The serial reference build: same output as [`Routing::compute`],
    /// no threads. Retained so tests can assert the parallel build is
    /// byte-identical, and as the readable specification of the table.
    // lint:allow(alloc) — reference build; tests and debug-only differential checks
    pub fn compute_serial(graph: &AsGraph, mode: RoutingMode, mask: Option<&[bool]>) -> Routing {
        let n = graph.len();
        Self::assemble(
            graph,
            mode,
            vec![Self::build_chunk(graph, mode, mask, 0, n)],
        )
    }

    /// Like [`Routing::compute_with_mask`], additionally returning the
    /// [`RepairIndex`] that makes subsequent fault epochs repairable via
    /// [`Routing::repair_with_mask`] instead of full rebuilds.
    pub fn compute_indexed(
        graph: &AsGraph,
        mode: RoutingMode,
        mask: Option<&[bool]>,
    ) -> (Routing, RepairIndex) {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::compute_indexed_threads(graph, mode, mask, threads)
    }

    /// [`Routing::compute_indexed`] with an explicit worker count. Byte-
    /// identical output for any thread count, same argument as
    /// [`Routing::compute_with_mask_threads`].
    // lint:allow(alloc) — table + index construction; runs once per routing (re)build
    pub fn compute_indexed_threads(
        graph: &AsGraph,
        mode: RoutingMode,
        mask: Option<&[bool]>,
        threads: usize,
    ) -> (Routing, RepairIndex) {
        let n = graph.len();
        let threads = threads.clamp(1, n.max(1));
        let chunks: Vec<IndexedChunk> = if n == 0 || threads == 1 {
            vec![Self::build_chunk_indexed(graph, mode, mask, 0, n)]
        } else {
            let per = n.div_ceil(threads);
            let ranges: Vec<(usize, usize)> = (0..threads)
                .map(|w| (w * per, ((w + 1) * per).min(n)))
                .filter(|&(lo, hi)| lo < hi)
                .collect();
            // Same deterministic fork-join as the plain build: disjoint
            // source ranges, joined in source order. lint:allow(threads)
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        s.spawn(move || Self::build_chunk_indexed(graph, mode, mask, lo, hi))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("routing worker panicked")) // lint:allow(expect)
                    .collect()
            })
        };
        let mut index = RepairIndex::new(n, graph.links.len());
        let mut src = 0usize;
        for c in &chunks {
            let rows = c.tree_off.len() - 1;
            index.hops.extend_from_slice(&c.hops);
            index.latency.extend_from_slice(&c.latency);
            for r in 0..rows {
                let w = src / 64;
                let bit = 1u64 << (src % 64);
                for &li in &c.tree_links[c.tree_off[r]..c.tree_off[r + 1]] {
                    index.link_sources[li as usize * index.words + w] |= bit;
                }
                src += 1;
            }
        }
        debug_assert_eq!(src, n);
        let routing = Self::assemble(graph, mode, chunks.into_iter().map(|c| c.chunk).collect());
        (routing, index)
    }

    /// Incrementally repairs the table after a fault-mask transition from
    /// `old_mask` to `new_mask`, recomputing only the sources the change
    /// can affect (see [`RepairIndex`] for the dirty rules) and splicing
    /// their rows back into the CSR arena in source order — byte-identical
    /// to a full rebuild under `new_mask`, which a debug-build assertion
    /// re-derives after every repair.
    ///
    /// Falls back to a full [`Routing::compute_indexed_threads`] rebuild
    /// when more than half the sources are dirty (the incremental path's
    /// bookkeeping would cost more than it saves).
    // lint:allow(alloc) — fault-epoch repair; runs once per epoch, scratch reused via RepairIndex
    pub fn repair_with_mask(
        &mut self,
        index: &mut RepairIndex,
        graph: &AsGraph,
        old_mask: Option<&[bool]>,
        new_mask: Option<&[bool]>,
        threads: usize,
    ) -> RepairStats {
        let n = self.n;
        debug_assert_eq!(index.n, n);
        debug_assert_eq!(index.n_links, graph.links.len());
        index.dirty.fill(0);
        index.dirty_list.clear();
        let mut changed = 0usize;
        for li in 0..index.n_links {
            let was = old_mask.is_some_and(|m| m[li]);
            let now = new_mask.is_some_and(|m| m[li]);
            if was == now {
                continue;
            }
            changed += 1;
            if now {
                // Link went down: exactly the sources whose tree uses it.
                for w in 0..index.words {
                    index.dirty[w] |= index.link_sources[li * index.words + w];
                }
            } else {
                index.mark_link_up_candidates(graph, self.mode, li);
            }
        }
        let mut stats = RepairStats {
            changed_links: changed,
            dirty_sources: 0,
            sources_total: n,
            full_rebuild: false,
        };
        if changed == 0 {
            return stats;
        }
        for s in 0..n {
            if index.is_dirty(s) {
                // lint:allow(cast) — s < n and n is bounded by the u16 AsId width
                index.dirty_list.push(s as u32);
            }
        }
        stats.dirty_sources = index.dirty_list.len();
        if stats.dirty_sources * 2 > n {
            // Majority dirty: a full rebuild is cheaper than row splicing.
            let (routing, fresh) =
                Self::compute_indexed_threads(graph, self.mode, new_mask, threads);
            *self = routing;
            let dirty_list = std::mem::take(&mut index.dirty_list);
            *index = fresh;
            index.dirty_list = dirty_list;
            stats.dirty_sources = n;
            stats.full_rebuild = true;
            return stats;
        }

        // Recompute dirty rows, fanned over contiguous ranges of the
        // sorted dirty list and joined in spawn (= source) order, so the
        // spliced table is independent of scheduling.
        let dirty = &index.dirty_list;
        let workers = threads.clamp(1, dirty.len().max(1));
        let rows: Vec<RepairedRow> = if workers == 1 {
            dirty
                .iter()
                .map(|&s| Self::repair_row(graph, self.mode, new_mask, s as usize))
                .collect()
        } else {
            let per = dirty.len().div_ceil(workers);
            let ranges: Vec<&[u32]> = dirty.chunks(per).collect();
            let mode = self.mode;
            // Deterministic fork-join over the dirty list. lint:allow(threads)
            std::thread::scope(|sc| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&range| {
                        sc.spawn(move || {
                            range
                                .iter()
                                .map(|&s| Self::repair_row(graph, mode, new_mask, s as usize))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("repair worker panicked")) // lint:allow(expect)
                    .collect()
            })
        };

        // Splice: walk sources in order, copying clean rows' arena
        // segments and substituting fresh segments for dirty rows, fixing
        // `path_off` as the cumulative base shifts.
        let scratch = &mut index.arena_scratch;
        scratch.clear();
        let mut old_base = 0usize;
        let mut next_dirty = 0usize;
        for s in 0..n {
            let old_len: usize = self.summaries[s * n..(s + 1) * n]
                .iter()
                .filter(|e| e.hops != u32::MAX)
                .map(|e| e.path_len as usize)
                .sum();
            let base = scratch.len();
            if next_dirty < index.dirty_list.len() && index.dirty_list[next_dirty] as usize == s {
                let fresh = &rows[next_dirty];
                next_dirty += 1;
                for (slot, &sum) in self.summaries[s * n..(s + 1) * n]
                    .iter_mut()
                    .zip(&fresh.summaries)
                {
                    let mut sum = sum;
                    if sum.hops != u32::MAX {
                        sum.path_off += base;
                    }
                    *slot = sum;
                }
                scratch.extend_from_slice(&fresh.arena);
            } else {
                if base != old_base {
                    for e in self.summaries[s * n..(s + 1) * n].iter_mut() {
                        if e.hops != u32::MAX {
                            e.path_off = e.path_off - old_base + base;
                        }
                    }
                }
                scratch.extend_from_slice(&self.arena[old_base..old_base + old_len]);
            }
            old_base += old_len;
        }
        std::mem::swap(&mut self.arena, scratch);

        for (i, row) in rows.iter().enumerate() {
            let s = index.dirty_list[i] as usize;
            index.apply_row(s, row);
        }

        #[cfg(debug_assertions)]
        {
            let full = Self::compute_serial(graph, self.mode, new_mask);
            debug_assert!(
                *self == full,
                "incremental repair diverged from full recompute \
                 ({changed} changed links, {} dirty sources)",
                stats.dirty_sources
            );
        }
        stats
    }

    /// Recomputes one source's row: summaries with row-local arena
    /// offsets plus the per-state costs and tree links for the index.
    // lint:allow(alloc) — fault-epoch repair; one row per dirty source
    fn repair_row(
        graph: &AsGraph,
        mode: RoutingMode,
        mask: Option<&[bool]>,
        src: usize,
    ) -> RepairedRow {
        let n = graph.len();
        let t = Self::dijkstra(graph, mode, AsId::from_index(src), mask);
        let mut arena = Vec::new();
        let mut summaries = Vec::with_capacity(n);
        for dst in 0..n {
            summaries.push(Self::summarize(graph, &t, dst, &mut arena));
        }
        let mut tree_links = Vec::new();
        Self::collect_tree_links(&t, &mut tree_links);
        RepairedRow {
            summaries,
            arena,
            hops: t.hops,
            latency: t.latency,
            tree_links,
        }
    }

    /// Appends the sorted, deduplicated set of predecessor-tree link
    /// indices of `t` to `out` (segment-local dedup: earlier segments in
    /// `out` are left untouched).
    fn collect_tree_links(t: &SrcTable, out: &mut Vec<u32>) {
        let start = out.len();
        for (_, li) in t.pred.iter().flatten() {
            out.push(*li);
        }
        out[start..].sort_unstable();
        let mut w = start;
        for r in start..out.len() {
            if w == start || out[w - 1] != out[r] {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
    }

    /// Builds rows and repair bookkeeping for sources `lo..hi`.
    // lint:allow(alloc) — table + index construction; runs once per routing (re)build
    fn build_chunk_indexed(
        graph: &AsGraph,
        mode: RoutingMode,
        mask: Option<&[bool]>,
        lo: usize,
        hi: usize,
    ) -> IndexedChunk {
        let n = graph.len();
        let mut summaries = Vec::with_capacity((hi - lo) * n);
        let mut arena = Vec::new();
        let mut hops = Vec::with_capacity((hi - lo) * 2 * n);
        let mut latency = Vec::with_capacity((hi - lo) * 2 * n);
        let mut tree_links = Vec::new();
        let mut tree_off = Vec::with_capacity(hi - lo + 1);
        tree_off.push(0);
        for src in lo..hi {
            let t = Self::dijkstra(graph, mode, AsId::from_index(src), mask);
            for dst in 0..n {
                summaries.push(Self::summarize(graph, &t, dst, &mut arena));
            }
            hops.extend_from_slice(&t.hops);
            latency.extend_from_slice(&t.latency);
            Self::collect_tree_links(&t, &mut tree_links);
            tree_off.push(tree_links.len());
        }
        IndexedChunk {
            chunk: Chunk { summaries, arena },
            hops,
            latency,
            tree_links,
            tree_off,
        }
    }

    /// Builds the rows for sources `lo..hi` with chunk-local arena offsets.
    // lint:allow(alloc) — table construction; runs once per routing (re)build
    fn build_chunk(
        graph: &AsGraph,
        mode: RoutingMode,
        mask: Option<&[bool]>,
        lo: usize,
        hi: usize,
    ) -> Chunk {
        let n = graph.len();
        let mut summaries = Vec::with_capacity((hi - lo) * n);
        let mut arena = Vec::new();
        for src in lo..hi {
            let t = Self::dijkstra(graph, mode, AsId::from_index(src), mask);
            for dst in 0..n {
                summaries.push(Self::summarize(graph, &t, dst, &mut arena));
            }
        }
        Chunk { summaries, arena }
    }

    /// Reduces one destination's Dijkstra states to a [`RouteSummary`],
    /// appending its path to `arena`.
    fn summarize(graph: &AsGraph, t: &SrcTable, dst: usize, arena: &mut Vec<u32>) -> RouteSummary {
        let s0 = dst * 2;
        let s1 = s0 + 1;
        let c0 = (t.hops[s0], t.latency[s0]);
        let c1 = (t.hops[s1], t.latency[s1]);
        if c0.0 == u32::MAX && c1.0 == u32::MAX {
            return UNREACHABLE;
        }
        let mut s = if c0 <= c1 { s0 } else { s1 };
        let (hops, latency_us) = if c0 <= c1 { c0 } else { c1 };
        let path_off = arena.len();
        while let Some((prev, li)) = t.pred[s] {
            arena.push(li);
            s = prev as usize;
        }
        arena[path_off..].reverse();
        let transit_links = arena[path_off..]
            .iter()
            .filter(|&&li| graph.links[li as usize].kind == LinkKind::Transit)
            .count() as u32; // lint:allow(cast) — a path visits < 2n states, n bounded by u16 AsId width
        RouteSummary {
            hops,
            latency_us,
            transit_links,
            path_off,
            // lint:allow(cast) — single-path segment length, < 2n (see transit_links bound)
            path_len: (arena.len() - path_off) as u32,
        }
    }

    /// Concatenates per-range chunks (in source order) into the flat table,
    /// shifting chunk-local arena offsets to global ones.
    // lint:allow(alloc) — table construction; runs once per routing (re)build
    fn assemble(graph: &AsGraph, mode: RoutingMode, chunks: Vec<Chunk>) -> Routing {
        let n = graph.len();
        let mut summaries = Vec::with_capacity(n * n);
        let mut arena = Vec::with_capacity(chunks.iter().map(|c| c.arena.len()).sum());
        for chunk in chunks {
            let base = arena.len();
            summaries.extend(chunk.summaries.into_iter().map(|mut s| {
                if s.hops != u32::MAX {
                    s.path_off += base;
                }
                s
            }));
            arena.extend(chunk.arena);
        }
        debug_assert_eq!(summaries.len(), n * n);
        Routing {
            mode,
            n,
            summaries,
            arena,
        }
    }

    /// The routing mode in effect.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    // lint:allow(alloc) — per-source table construction; build-time only
    fn dijkstra(graph: &AsGraph, mode: RoutingMode, src: AsId, mask: Option<&[bool]>) -> SrcTable {
        // State encoding: as_idx * 2 + phase. Phase 0: the valley-free
        // prefix (may still climb); phase 1: committed to descending.
        let n = graph.len();
        let ns = n * 2;
        let mut hops = vec![u32::MAX; ns];
        let mut latency = vec![INF; ns];
        let mut pred: Vec<Option<(u32, u32)>> = vec![None; ns];
        let start = src.idx() * 2;
        hops[start] = 0;
        latency[start] = 0;
        let mut heap: BinaryHeap<Reverse<(u32, u64, u32)>> = BinaryHeap::new();
        // lint:allow(cast) — state index < 2n, n bounded by the u16 AsId width
        heap.push(Reverse((0, 0, start as u32)));
        while let Some(Reverse((h, lat, s))) = heap.pop() {
            let s = s as usize;
            if (h, lat) != (hops[s], latency[s]) {
                continue; // stale entry
            }
            // lint:allow(cast) — s < 2n so s/2 < n <= u16::MAX + 1; per-pop hot path
            let x = AsId((s / 2) as u16);
            let phase = s % 2;
            for &li in graph.incident(x) {
                if let Some(m) = mask {
                    if m[li as usize] {
                        continue;
                    }
                }
                let link = &graph.links[li as usize];
                let y = link.other(x).expect("incident link"); // lint:allow(expect)
                let next_phase = match mode {
                    RoutingMode::ShortestPath => 0,
                    RoutingMode::ValleyFree => match (phase, link.kind) {
                        // Climbing: x must be the customer (link.b).
                        (0, LinkKind::Transit) if link.b == x => 0,
                        // Descending: x is the provider (link.a).
                        (_, LinkKind::Transit) if link.a == x => 1,
                        // One peering crossing, only from the climb phase.
                        (0, LinkKind::Peering) => 1,
                        _ => continue,
                    },
                };
                if mode == RoutingMode::ShortestPath && phase == 1 {
                    continue; // phase 1 unused in shortest-path mode
                }
                let t = y.idx() * 2 + next_phase;
                let nh = h + 1;
                let nlat = lat + link.latency_us;
                if (nh, nlat) < (hops[t], latency[t]) {
                    hops[t] = nh;
                    latency[t] = nlat;
                    // lint:allow(cast) — s and t are state indices < 2n (u16 AsId width bound)
                    pred[t] = Some((s as u32, li));
                    // lint:allow(cast) — same state-index bound as above
                    heap.push(Reverse((nh, nlat, t as u32)));
                }
            }
        }
        SrcTable {
            hops,
            latency,
            pred,
        }
    }

    /// The precomputed summary for `(src, dst)`: hops, latency and transit
    /// count in one table read. `None` if either id is out of range or the
    /// pair is unreachable.
    #[inline]
    pub fn route(&self, src: AsId, dst: AsId) -> Option<&RouteSummary> {
        if src.idx() >= self.n || dst.idx() >= self.n {
            return None;
        }
        let s = &self.summaries[src.idx() * self.n + dst.idx()];
        if s.hops == u32::MAX {
            None
        } else {
            Some(s)
        }
    }

    /// AS-hop distance (0 for `src == dst`), or `None` if unreachable.
    #[inline]
    pub fn as_hops(&self, src: AsId, dst: AsId) -> Option<u32> {
        Some(self.route(src, dst)?.hops)
    }

    /// Accumulated inter-AS link latency along the chosen path, in
    /// microseconds.
    #[inline]
    pub fn latency_us(&self, src: AsId, dst: AsId) -> Option<u64> {
        Some(self.route(src, dst)?.latency_us)
    }

    /// The link indices along the chosen path from `src` to `dst`, in
    /// traversal order, borrowed from the CSR arena (no allocation).
    /// Empty for `src == dst`.
    #[inline]
    pub fn path_links(&self, src: AsId, dst: AsId) -> Option<&[u32]> {
        let s = self.route(src, dst)?;
        Some(&self.arena[s.path_off..s.path_off + s.path_len as usize])
    }

    /// The AS sequence of the chosen path, starting at `src` and ending at
    /// `dst`.
    pub fn path_ases(&self, graph: &AsGraph, src: AsId, dst: AsId) -> Option<Vec<AsId>> {
        let links = self.path_links(src, dst)?;
        let mut out = vec![src];
        let mut cur = src;
        for &li in links {
            cur = graph.links[li as usize].other(cur).expect("path link"); // lint:allow(expect)
            out.push(cur);
        }
        debug_assert_eq!(out.last().copied(), Some(dst));
        #[cfg(debug_assertions)]
        if self.mode == RoutingMode::ValleyFree {
            if let Err(e) = crate::invariants::check_valley_free(graph, &out) {
                // lint:allow(panic) — debug-only invariant guard
                panic!("valley-free violation on {src}->{dst}: {e}");
            }
        }
        Some(out)
    }

    /// Fraction of ordered AS pairs that are mutually reachable.
    pub fn reachable_fraction(&self) -> f64 {
        if self.n <= 1 {
            return 1.0;
        }
        let reachable = self
            .summaries
            .iter()
            .filter(|s| s.hops != u32::MAX && s.hops != 0)
            .count();
        reachable as f64 / (self.n * (self.n - 1)) as f64
    }
}

/// The pre-CSR per-query implementation, retained as the differential
/// reference: it answers every query by probing the raw Dijkstra state
/// tables and walking predecessor links, exactly as the production code
/// did before the flat table existed. Tests assert [`Routing`] agrees
/// with it on hops, latency, paths and reachability for every pair.
pub struct ReferenceRouting {
    n: usize,
    tables: Vec<SrcTable>,
}

impl ReferenceRouting {
    /// Computes the per-source Dijkstra tables serially.
    pub fn compute(graph: &AsGraph, mode: RoutingMode, mask: Option<&[bool]>) -> ReferenceRouting {
        let n = graph.len();
        let tables = (0..n)
            .map(|src| Routing::dijkstra(graph, mode, AsId::from_index(src), mask))
            .collect();
        ReferenceRouting { n, tables }
    }

    fn best_state(&self, src: AsId, dst: AsId) -> Option<usize> {
        if src.idx() >= self.n || dst.idx() >= self.n {
            return None;
        }
        let t = &self.tables[src.idx()];
        let s0 = dst.idx() * 2;
        let s1 = s0 + 1;
        let c0 = (t.hops[s0], t.latency[s0]);
        let c1 = (t.hops[s1], t.latency[s1]);
        if c0.0 == u32::MAX && c1.0 == u32::MAX {
            return None;
        }
        Some(if c0 <= c1 { s0 } else { s1 })
    }

    /// AS-hop distance, or `None` if unreachable.
    pub fn as_hops(&self, src: AsId, dst: AsId) -> Option<u32> {
        let s = self.best_state(src, dst)?;
        Some(self.tables[src.idx()].hops[s])
    }

    /// Accumulated path latency in microseconds.
    pub fn latency_us(&self, src: AsId, dst: AsId) -> Option<u64> {
        let s = self.best_state(src, dst)?;
        Some(self.tables[src.idx()].latency[s])
    }

    /// The link indices along the chosen path (allocating, per query).
    // lint:allow(alloc) — reference oracle for differential tests; CSR path_links is the hot path
    pub fn path_links(&self, src: AsId, dst: AsId) -> Option<Vec<u32>> {
        let mut s = self.best_state(src, dst)?;
        let t = &self.tables[src.idx()];
        let mut links = Vec::new();
        while let Some((prev, li)) = t.pred[s] {
            links.push(li);
            s = prev as usize;
        }
        links.reverse();
        Some(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::Tier;
    use crate::geo::GeoPoint;

    /// Figure-1-like fixture:
    ///
    /// ```text
    ///        T1a ===== T1b          (peering)
    ///       /   \         \
    ///     T2a    T2b       T2c      (transit, T1 provider)
    ///    /   \     \       /  \
    ///  A       B    C     D    E    (transit, T2 provider)
    ///          B ~~~ C              (peering between locals)
    /// ```
    fn figure1() -> AsGraph {
        let mut g = AsGraph::new();
        let p = |x: f64| GeoPoint::new(x, 0.0);
        let t1a = g.add_as(Tier::Tier1, p(0.0), 100.0); // AS0
        let t1b = g.add_as(Tier::Tier1, p(1000.0), 100.0); // AS1
        let t2a = g.add_as(Tier::Tier2, p(-200.0), 50.0); // AS2
        let t2b = g.add_as(Tier::Tier2, p(200.0), 50.0); // AS3
        let t2c = g.add_as(Tier::Tier2, p(1200.0), 50.0); // AS4
        let a = g.add_as(Tier::Tier3, p(-300.0), 20.0); // AS5
        let b = g.add_as(Tier::Tier3, p(-100.0), 20.0); // AS6
        let c = g.add_as(Tier::Tier3, p(150.0), 20.0); // AS7
        let d = g.add_as(Tier::Tier3, p(1100.0), 20.0); // AS8
        let e = g.add_as(Tier::Tier3, p(1300.0), 20.0); // AS9
        g.add_peering(t1a, t1b, 10_000, 100_000.0);
        g.add_transit(t1a, t2a, 5_000, 40_000.0);
        g.add_transit(t1a, t2b, 5_000, 40_000.0);
        g.add_transit(t1b, t2c, 5_000, 40_000.0);
        g.add_transit(t2a, a, 2_000, 10_000.0);
        g.add_transit(t2a, b, 2_000, 10_000.0);
        g.add_transit(t2b, c, 2_000, 10_000.0);
        g.add_transit(t2c, d, 2_000, 10_000.0);
        g.add_transit(t2c, e, 2_000, 10_000.0);
        g.add_peering(b, c, 1_000, 1_000.0);
        g
    }

    #[test]
    fn same_as_is_zero_hops() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        assert_eq!(r.as_hops(AsId(5), AsId(5)), Some(0));
        assert_eq!(r.path_links(AsId(5), AsId(5)), Some(&[][..]));
    }

    #[test]
    fn siblings_route_via_common_provider() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> T2a -> B: up then down, 2 hops.
        assert_eq!(r.as_hops(AsId(5), AsId(6)), Some(2));
        let path = r.path_ases(&g, AsId(5), AsId(6)).unwrap();
        assert_eq!(path, vec![AsId(5), AsId(2), AsId(6)]);
    }

    #[test]
    fn local_peering_shortcut_is_used() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // B and C peer directly: 1 hop instead of B-T2a-T1a-T2b-C.
        assert_eq!(r.as_hops(AsId(6), AsId(7)), Some(1));
        let path = r.path_ases(&g, AsId(6), AsId(7)).unwrap();
        assert_eq!(path, vec![AsId(6), AsId(7)]);
    }

    #[test]
    fn cross_core_route_climbs_and_descends() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> T2a -> T1a -> T1b -> T2c -> D = 5 hops, crossing the core
        // peering link exactly once.
        assert_eq!(r.as_hops(AsId(5), AsId(8)), Some(5));
        let path = r.path_ases(&g, AsId(5), AsId(8)).unwrap();
        assert_eq!(
            path,
            vec![AsId(5), AsId(2), AsId(0), AsId(1), AsId(4), AsId(8)]
        );
    }

    #[test]
    fn no_valley_paths() {
        // A valley would be e.g. A -> T2a -> B -> C (descending into B then
        // crossing the B~C peering). Verify B~C peering is never used as a
        // second lateral move: route A->C must go up to T1a and down via T2b,
        // or A->B->C would be shorter but is a valley.
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let path = r.path_ases(&g, AsId(5), AsId(7)).unwrap();
        // Valley-free best: A,T2a,T1a,T2b,C (4 hops). The valley path
        // A,T2a,B,C would be 3 hops but is forbidden.
        assert_eq!(path.len(), 5);
        assert_eq!(path, vec![AsId(5), AsId(2), AsId(0), AsId(3), AsId(7)]);
    }

    #[test]
    fn shortest_path_mode_ignores_policy() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ShortestPath);
        // Without policy, A->C may cut through B's peering: A,T2a,B,C.
        assert_eq!(r.as_hops(AsId(5), AsId(7)), Some(3));
    }

    #[test]
    fn reachability_full_on_connected_graph() {
        let g = figure1();
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let r = Routing::compute(&g, mode);
            assert_eq!(r.reachable_fraction(), 1.0, "{mode:?}");
        }
    }

    #[test]
    fn peering_only_graph_unreachable_beyond_one_peer_hop_valley_free() {
        // Ring of 4 peering links: valley-free allows exactly one peering
        // crossing, so only direct neighbors are reachable.
        let mut g = AsGraph::new();
        for i in 0..4 {
            g.add_as(Tier::Tier3, GeoPoint::new(i as f64, 0.0), 10.0);
        }
        for i in 0..4u16 {
            g.add_peering(AsId(i), AsId((i + 1) % 4), 1_000, 100.0);
        }
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        assert_eq!(r.as_hops(AsId(0), AsId(1)), Some(1));
        assert_eq!(r.as_hops(AsId(0), AsId(2)), None);
        // Shortest-path mode reaches everything.
        let r2 = Routing::compute(&g, RoutingMode::ShortestPath);
        assert_eq!(r2.as_hops(AsId(0), AsId(2)), Some(2));
    }

    #[test]
    fn failure_mask_reroutes_or_disconnects() {
        let g = figure1();
        // Kill the B~C peering shortcut (link index 9): B->C re-routes via
        // the hierarchy.
        let mut mask = vec![false; g.links.len()];
        mask[9] = true;
        let r = Routing::compute_with_mask(&g, RoutingMode::ValleyFree, Some(&mask));
        assert_eq!(r.as_hops(AsId(6), AsId(7)), Some(4));
        // Kill the T1a=T1b core peering too: D becomes unreachable from A.
        mask[0] = true;
        let r2 = Routing::compute_with_mask(&g, RoutingMode::ValleyFree, Some(&mask));
        assert_eq!(r2.as_hops(AsId(5), AsId(8)), None);
    }

    #[test]
    fn latency_accumulates_along_path() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> T2a -> B: 2000 + 2000.
        assert_eq!(r.latency_us(AsId(5), AsId(6)), Some(4_000));
        // A -> ... -> D: 2000 + 5000 + 10000 + 5000 + 2000.
        assert_eq!(r.latency_us(AsId(5), AsId(8)), Some(24_000));
    }

    #[test]
    fn path_links_consistent_with_hops() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                if let Some(h) = r.as_hops(a, b) {
                    assert_eq!(r.path_links(a, b).unwrap().len() as u32, h);
                }
            }
        }
    }

    #[test]
    fn route_summary_combines_all_metrics() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> ... -> D crosses 4 transit links and the core peering.
        let s = r.route(AsId(5), AsId(8)).unwrap();
        assert_eq!(s.hops, 5);
        assert_eq!(s.latency_us, 24_000);
        assert_eq!(s.transit_links, 4);
        // B -> C is the pure peering shortcut.
        let s = r.route(AsId(6), AsId(7)).unwrap();
        assert_eq!((s.hops, s.transit_links), (1, 0));
        // Unreachable and out-of-range pairs yield None.
        assert!(r.route(AsId(0), AsId(99)).is_none());
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let g = figure1();
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let serial = Routing::compute_serial(&g, mode, None);
            for threads in [1, 2, 3, 7, 16] {
                let par = Routing::compute_with_mask_threads(&g, mode, None, threads);
                assert!(
                    serial == par,
                    "parallel table ({threads} threads, {mode:?}) diverged from serial"
                );
            }
        }
        // Masked builds must agree too.
        let mut mask = vec![false; g.links.len()];
        mask[0] = true;
        mask[9] = true;
        let serial = Routing::compute_serial(&g, RoutingMode::ValleyFree, Some(&mask));
        for threads in [2, 5] {
            let par = Routing::compute_with_mask_threads(
                &g,
                RoutingMode::ValleyFree,
                Some(&mask),
                threads,
            );
            assert!(serial == par, "masked parallel table diverged");
        }
    }

    #[test]
    fn indexed_build_matches_plain_build() {
        let g = figure1();
        let mut mask = vec![false; g.links.len()];
        mask[9] = true;
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            for m in [None, Some(&mask[..])] {
                let plain = Routing::compute_serial(&g, mode, m);
                for threads in [1, 3] {
                    let (indexed, _) = Routing::compute_indexed_threads(&g, mode, m, threads);
                    assert!(plain == indexed, "{mode:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn repair_matches_full_rebuild_across_mask_sequence() {
        let g = figure1();
        let nl = g.links.len();
        // Down B~C, then also the core peering, then heal B~C while the
        // core stays down, then full heal. Every step must agree with a
        // from-scratch masked build (repair also self-checks in debug).
        let mut steps: Vec<Vec<bool>> = vec![vec![false; nl]; 4];
        steps[0][9] = true;
        steps[1][9] = true;
        steps[1][0] = true;
        steps[2][0] = true;
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            for threads in [1, 3] {
                let (mut r, mut idx) = Routing::compute_indexed_threads(&g, mode, None, threads);
                let mut prev: Option<Vec<bool>> = None;
                for step in &steps {
                    let stats =
                        r.repair_with_mask(&mut idx, &g, prev.as_deref(), Some(step), threads);
                    let full = Routing::compute_serial(&g, mode, Some(step));
                    assert!(r == full, "{mode:?} threads={threads} mask={step:?}");
                    assert_eq!(stats.sources_total, g.len());
                    if stats.full_rebuild {
                        assert_eq!(stats.dirty_sources, g.len());
                    } else {
                        assert_eq!(stats.dirty_sources, idx.dirty_sources().len());
                    }
                    prev = Some(step.clone());
                }
            }
        }
    }

    #[test]
    fn repair_on_local_peering_fault_touches_subset_of_sources() {
        let g = figure1();
        let (mut r, mut idx) =
            Routing::compute_indexed_threads(&g, RoutingMode::ValleyFree, None, 1);
        // B~C (link 9) only appears in B's and C's shortest-path trees:
        // any other source crossing it would form a valley.
        let mut mask = vec![false; g.links.len()];
        mask[9] = true;
        let stats = r.repair_with_mask(&mut idx, &g, None, Some(&mask), 1);
        assert_eq!(stats.changed_links, 1);
        assert!(!stats.full_rebuild);
        assert_eq!(idx.dirty_sources(), &[6, 7]);
        assert_eq!(stats.dirty_sources, 2);
        assert_eq!(r.as_hops(AsId(6), AsId(7)), Some(4));
    }

    #[test]
    fn repair_after_heal_is_incremental_and_exact() {
        let g = figure1();
        let (mut r, mut idx) =
            Routing::compute_indexed_threads(&g, RoutingMode::ValleyFree, None, 1);
        let mut mask = vec![false; g.links.len()];
        mask[9] = true;
        r.repair_with_mask(&mut idx, &g, None, Some(&mask), 1);
        // Heal: the candidate test must mark (at least) B and C dirty and
        // restore the original table exactly.
        let stats = r.repair_with_mask(&mut idx, &g, Some(&mask), None, 1);
        assert_eq!(stats.changed_links, 1);
        assert!(!stats.full_rebuild);
        assert!(idx.dirty_sources().contains(&6));
        assert!(idx.dirty_sources().contains(&7));
        let pristine = Routing::compute_serial(&g, RoutingMode::ValleyFree, None);
        assert!(r == pristine);
        assert_eq!(r.as_hops(AsId(6), AsId(7)), Some(1));
    }

    #[test]
    fn repair_with_unchanged_mask_is_a_noop() {
        let g = figure1();
        let (mut r, mut idx) =
            Routing::compute_indexed_threads(&g, RoutingMode::ValleyFree, None, 1);
        let mask = vec![false; g.links.len()];
        // None vs all-false: no link changed status.
        let stats = r.repair_with_mask(&mut idx, &g, None, Some(&mask), 1);
        assert_eq!(
            stats,
            RepairStats {
                changed_links: 0,
                dirty_sources: 0,
                sources_total: g.len(),
                full_rebuild: false,
            }
        );
        assert!(idx.dirty_sources().is_empty());
    }

    #[test]
    fn repair_falls_back_to_full_rebuild_when_majority_dirty() {
        let g = figure1();
        let (mut r, mut idx) =
            Routing::compute_indexed_threads(&g, RoutingMode::ValleyFree, None, 1);
        // The T1a–T2a transit uplink (link 1) sits on most sources' trees;
        // downing it alongside the core peering dirties well over half.
        let mut mask = vec![false; g.links.len()];
        mask[0] = true;
        mask[1] = true;
        let stats = r.repair_with_mask(&mut idx, &g, None, Some(&mask), 1);
        assert!(stats.full_rebuild);
        assert_eq!(stats.dirty_sources, g.len());
        let full = Routing::compute_serial(&g, RoutingMode::ValleyFree, Some(&mask));
        assert!(r == full);
        // The rebuilt index keeps working for further epochs.
        let stats = r.repair_with_mask(&mut idx, &g, Some(&mask), None, 1);
        assert!(!stats.full_rebuild || stats.dirty_sources == g.len());
        let pristine = Routing::compute_serial(&g, RoutingMode::ValleyFree, None);
        assert!(r == pristine);
    }

    #[test]
    fn table_matches_reference_implementation() {
        let g = figure1();
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let table = Routing::compute(&g, mode);
            let refr = ReferenceRouting::compute(&g, mode, None);
            for a in 0..g.len() {
                for b in 0..g.len() {
                    let (a, b) = (AsId(a as u16), AsId(b as u16));
                    assert_eq!(table.as_hops(a, b), refr.as_hops(a, b), "{a}->{b}");
                    assert_eq!(table.latency_us(a, b), refr.latency_us(a, b), "{a}->{b}");
                    assert_eq!(
                        table.path_links(a, b).map(<[u32]>::to_vec),
                        refr.path_links(a, b),
                        "{a}->{b}"
                    );
                }
            }
        }
    }
}
