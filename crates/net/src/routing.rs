//! Inter-domain routing.
//!
//! Two modes:
//!
//! * [`RoutingMode::ShortestPath`] — minimum-hop routing over all links,
//!   used for the flat testlab topologies where "a router is taken as an
//!   abstraction of an AS boundary";
//! * [`RoutingMode::ValleyFree`] — policy routing with Gao export rules:
//!   a path climbs customer→provider links, optionally crosses one peering
//!   link, then descends provider→customer links. This is what makes the
//!   hierarchical topologies bill traffic the way Figure 1's monetary
//!   arrows say they do.
//!
//! Paths are selected by minimum AS-hop count, tie-broken by accumulated
//! link latency and then deterministically by state index, so two runs with
//! the same topology always route identically.

use crate::asgraph::{AsGraph, LinkKind};
use crate::ids::AsId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Routing policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingMode {
    /// Minimum-hop over all links, ignoring business relationships.
    ShortestPath,
    /// Valley-free policy routing (up* peer? down*).
    ValleyFree,
}

const INF: u64 = u64::MAX;

/// Per-source Dijkstra result over the 2-phase state graph.
struct SrcTable {
    /// `(hops, latency_us)` per state; `hops == u32::MAX` means unreachable.
    hops: Vec<u32>,
    latency: Vec<u64>,
    /// Predecessor `(state, link)` per state.
    pred: Vec<Option<(u32, u32)>>,
}

/// All-pairs routing tables with path reconstruction.
pub struct Routing {
    mode: RoutingMode,
    n: usize,
    tables: Vec<SrcTable>,
}

impl Routing {
    /// Computes routing tables for every source AS.
    pub fn compute(graph: &AsGraph, mode: RoutingMode) -> Routing {
        Self::compute_with_mask(graph, mode, None)
    }

    /// Computes routing tables excluding links marked dead in `mask`
    /// (indexed by link index). Used by failure-injection experiments.
    pub fn compute_with_mask(graph: &AsGraph, mode: RoutingMode, mask: Option<&[bool]>) -> Routing {
        let n = graph.len();
        let tables = (0..n)
            .map(|src| Self::dijkstra(graph, mode, AsId(src as u16), mask))
            .collect();
        Routing { mode, n, tables }
    }

    /// The routing mode in effect.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    fn dijkstra(graph: &AsGraph, mode: RoutingMode, src: AsId, mask: Option<&[bool]>) -> SrcTable {
        // State encoding: as_idx * 2 + phase. Phase 0: the valley-free
        // prefix (may still climb); phase 1: committed to descending.
        let n = graph.len();
        let ns = n * 2;
        let mut hops = vec![u32::MAX; ns];
        let mut latency = vec![INF; ns];
        let mut pred: Vec<Option<(u32, u32)>> = vec![None; ns];
        let start = src.idx() * 2;
        hops[start] = 0;
        latency[start] = 0;
        let mut heap: BinaryHeap<Reverse<(u32, u64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((0, 0, start as u32)));
        while let Some(Reverse((h, lat, s))) = heap.pop() {
            let s = s as usize;
            if (h, lat) != (hops[s], latency[s]) {
                continue; // stale entry
            }
            let x = AsId((s / 2) as u16);
            let phase = s % 2;
            for &li in graph.incident(x) {
                if let Some(m) = mask {
                    if m[li as usize] {
                        continue;
                    }
                }
                let link = &graph.links[li as usize];
                let y = link.other(x).expect("incident link"); // lint:allow(expect)
                let next_phase = match mode {
                    RoutingMode::ShortestPath => 0,
                    RoutingMode::ValleyFree => match (phase, link.kind) {
                        // Climbing: x must be the customer (link.b).
                        (0, LinkKind::Transit) if link.b == x => 0,
                        // Descending: x is the provider (link.a).
                        (_, LinkKind::Transit) if link.a == x => 1,
                        // One peering crossing, only from the climb phase.
                        (0, LinkKind::Peering) => 1,
                        _ => continue,
                    },
                };
                if mode == RoutingMode::ShortestPath && phase == 1 {
                    continue; // phase 1 unused in shortest-path mode
                }
                let t = y.idx() * 2 + next_phase;
                let nh = h + 1;
                let nlat = lat + link.latency_us;
                if (nh, nlat) < (hops[t], latency[t]) {
                    hops[t] = nh;
                    latency[t] = nlat;
                    pred[t] = Some((s as u32, li));
                    heap.push(Reverse((nh, nlat, t as u32)));
                }
            }
        }
        SrcTable {
            hops,
            latency,
            pred,
        }
    }

    fn best_state(&self, src: AsId, dst: AsId) -> Option<usize> {
        if src.idx() >= self.n || dst.idx() >= self.n {
            return None;
        }
        let t = &self.tables[src.idx()];
        let s0 = dst.idx() * 2;
        let s1 = s0 + 1;
        let c0 = (t.hops[s0], t.latency[s0]);
        let c1 = (t.hops[s1], t.latency[s1]);
        if c0.0 == u32::MAX && c1.0 == u32::MAX {
            return None;
        }
        Some(if c0 <= c1 { s0 } else { s1 })
    }

    /// AS-hop distance (0 for `src == dst`), or `None` if unreachable.
    pub fn as_hops(&self, src: AsId, dst: AsId) -> Option<u32> {
        let s = self.best_state(src, dst)?;
        Some(self.tables[src.idx()].hops[s])
    }

    /// Accumulated inter-AS link latency along the chosen path, in
    /// microseconds.
    pub fn latency_us(&self, src: AsId, dst: AsId) -> Option<u64> {
        let s = self.best_state(src, dst)?;
        Some(self.tables[src.idx()].latency[s])
    }

    /// The link indices along the chosen path from `src` to `dst`, in
    /// traversal order. Empty for `src == dst`.
    pub fn path_links(&self, src: AsId, dst: AsId) -> Option<Vec<u32>> {
        let mut s = self.best_state(src, dst)?;
        let t = &self.tables[src.idx()];
        let mut links = Vec::new();
        while let Some((prev, li)) = t.pred[s] {
            links.push(li);
            s = prev as usize;
        }
        links.reverse();
        Some(links)
    }

    /// The AS sequence of the chosen path, starting at `src` and ending at
    /// `dst`.
    pub fn path_ases(&self, graph: &AsGraph, src: AsId, dst: AsId) -> Option<Vec<AsId>> {
        let links = self.path_links(src, dst)?;
        let mut out = vec![src];
        let mut cur = src;
        for li in links {
            cur = graph.links[li as usize].other(cur).expect("path link"); // lint:allow(expect)
            out.push(cur);
        }
        debug_assert_eq!(out.last().copied(), Some(dst));
        #[cfg(debug_assertions)]
        if self.mode == RoutingMode::ValleyFree {
            if let Err(e) = crate::invariants::check_valley_free(graph, &out) {
                // lint:allow(panic) — debug-only invariant guard
                panic!("valley-free violation on {src}->{dst}: {e}");
            }
        }
        Some(out)
    }

    /// Fraction of ordered AS pairs that are mutually reachable.
    pub fn reachable_fraction(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        let mut ok = 0usize;
        let mut total = 0usize;
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                total += 1;
                if self.as_hops(AsId(a as u16), AsId(b as u16)).is_some() {
                    ok += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::Tier;
    use crate::geo::GeoPoint;

    /// Figure-1-like fixture:
    ///
    /// ```text
    ///        T1a ===== T1b          (peering)
    ///       /   \         \
    ///     T2a    T2b       T2c      (transit, T1 provider)
    ///    /   \     \       /  \
    ///  A       B    C     D    E    (transit, T2 provider)
    ///          B ~~~ C              (peering between locals)
    /// ```
    fn figure1() -> AsGraph {
        let mut g = AsGraph::new();
        let p = |x: f64| GeoPoint::new(x, 0.0);
        let t1a = g.add_as(Tier::Tier1, p(0.0), 100.0); // AS0
        let t1b = g.add_as(Tier::Tier1, p(1000.0), 100.0); // AS1
        let t2a = g.add_as(Tier::Tier2, p(-200.0), 50.0); // AS2
        let t2b = g.add_as(Tier::Tier2, p(200.0), 50.0); // AS3
        let t2c = g.add_as(Tier::Tier2, p(1200.0), 50.0); // AS4
        let a = g.add_as(Tier::Tier3, p(-300.0), 20.0); // AS5
        let b = g.add_as(Tier::Tier3, p(-100.0), 20.0); // AS6
        let c = g.add_as(Tier::Tier3, p(150.0), 20.0); // AS7
        let d = g.add_as(Tier::Tier3, p(1100.0), 20.0); // AS8
        let e = g.add_as(Tier::Tier3, p(1300.0), 20.0); // AS9
        g.add_peering(t1a, t1b, 10_000, 100_000.0);
        g.add_transit(t1a, t2a, 5_000, 40_000.0);
        g.add_transit(t1a, t2b, 5_000, 40_000.0);
        g.add_transit(t1b, t2c, 5_000, 40_000.0);
        g.add_transit(t2a, a, 2_000, 10_000.0);
        g.add_transit(t2a, b, 2_000, 10_000.0);
        g.add_transit(t2b, c, 2_000, 10_000.0);
        g.add_transit(t2c, d, 2_000, 10_000.0);
        g.add_transit(t2c, e, 2_000, 10_000.0);
        g.add_peering(b, c, 1_000, 1_000.0);
        g
    }

    #[test]
    fn same_as_is_zero_hops() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        assert_eq!(r.as_hops(AsId(5), AsId(5)), Some(0));
        assert_eq!(r.path_links(AsId(5), AsId(5)), Some(vec![]));
    }

    #[test]
    fn siblings_route_via_common_provider() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> T2a -> B: up then down, 2 hops.
        assert_eq!(r.as_hops(AsId(5), AsId(6)), Some(2));
        let path = r.path_ases(&g, AsId(5), AsId(6)).unwrap();
        assert_eq!(path, vec![AsId(5), AsId(2), AsId(6)]);
    }

    #[test]
    fn local_peering_shortcut_is_used() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // B and C peer directly: 1 hop instead of B-T2a-T1a-T2b-C.
        assert_eq!(r.as_hops(AsId(6), AsId(7)), Some(1));
        let path = r.path_ases(&g, AsId(6), AsId(7)).unwrap();
        assert_eq!(path, vec![AsId(6), AsId(7)]);
    }

    #[test]
    fn cross_core_route_climbs_and_descends() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> T2a -> T1a -> T1b -> T2c -> D = 5 hops, crossing the core
        // peering link exactly once.
        assert_eq!(r.as_hops(AsId(5), AsId(8)), Some(5));
        let path = r.path_ases(&g, AsId(5), AsId(8)).unwrap();
        assert_eq!(
            path,
            vec![AsId(5), AsId(2), AsId(0), AsId(1), AsId(4), AsId(8)]
        );
    }

    #[test]
    fn no_valley_paths() {
        // A valley would be e.g. A -> T2a -> B -> C (descending into B then
        // crossing the B~C peering). Verify B~C peering is never used as a
        // second lateral move: route A->C must go up to T1a and down via T2b,
        // or A->B->C would be shorter but is a valley.
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let path = r.path_ases(&g, AsId(5), AsId(7)).unwrap();
        // Valley-free best: A,T2a,T1a,T2b,C (4 hops). The valley path
        // A,T2a,B,C would be 3 hops but is forbidden.
        assert_eq!(path.len(), 5);
        assert_eq!(path, vec![AsId(5), AsId(2), AsId(0), AsId(3), AsId(7)]);
    }

    #[test]
    fn shortest_path_mode_ignores_policy() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ShortestPath);
        // Without policy, A->C may cut through B's peering: A,T2a,B,C.
        assert_eq!(r.as_hops(AsId(5), AsId(7)), Some(3));
    }

    #[test]
    fn reachability_full_on_connected_graph() {
        let g = figure1();
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let r = Routing::compute(&g, mode);
            assert_eq!(r.reachable_fraction(), 1.0, "{mode:?}");
        }
    }

    #[test]
    fn peering_only_graph_unreachable_beyond_one_peer_hop_valley_free() {
        // Ring of 4 peering links: valley-free allows exactly one peering
        // crossing, so only direct neighbors are reachable.
        let mut g = AsGraph::new();
        for i in 0..4 {
            g.add_as(Tier::Tier3, GeoPoint::new(i as f64, 0.0), 10.0);
        }
        for i in 0..4u16 {
            g.add_peering(AsId(i), AsId((i + 1) % 4), 1_000, 100.0);
        }
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        assert_eq!(r.as_hops(AsId(0), AsId(1)), Some(1));
        assert_eq!(r.as_hops(AsId(0), AsId(2)), None);
        // Shortest-path mode reaches everything.
        let r2 = Routing::compute(&g, RoutingMode::ShortestPath);
        assert_eq!(r2.as_hops(AsId(0), AsId(2)), Some(2));
    }

    #[test]
    fn failure_mask_reroutes_or_disconnects() {
        let g = figure1();
        // Kill the B~C peering shortcut (link index 9): B->C re-routes via
        // the hierarchy.
        let mut mask = vec![false; g.links.len()];
        mask[9] = true;
        let r = Routing::compute_with_mask(&g, RoutingMode::ValleyFree, Some(&mask));
        assert_eq!(r.as_hops(AsId(6), AsId(7)), Some(4));
        // Kill the T1a=T1b core peering too: D becomes unreachable from A.
        mask[0] = true;
        let r2 = Routing::compute_with_mask(&g, RoutingMode::ValleyFree, Some(&mask));
        assert_eq!(r2.as_hops(AsId(5), AsId(8)), None);
    }

    #[test]
    fn latency_accumulates_along_path() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        // A -> T2a -> B: 2000 + 2000.
        assert_eq!(r.latency_us(AsId(5), AsId(6)), Some(4_000));
        // A -> ... -> D: 2000 + 5000 + 10000 + 5000 + 2000.
        assert_eq!(r.latency_us(AsId(5), AsId(8)), Some(24_000));
    }

    #[test]
    fn path_links_consistent_with_hops() {
        let g = figure1();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                if let Some(h) = r.as_hops(a, b) {
                    assert_eq!(r.path_links(a, b).unwrap().len() as u32, h);
                }
            }
        }
    }
}
