//! Traffic accounting.
//!
//! The economics of §2.1 hinge on *where* bytes flow: traffic that stays
//! inside an AS is free, traffic over peering links costs only the link
//! upkeep, and traffic over transit links is billed per Mbps at the peak
//! rate "measured using samples over a months' time" (the industry-standard
//! 95th-percentile rule). [`TrafficAccounting`] classifies every transfer
//! accordingly and keeps the per-AS transit samples the billing needs.

use crate::asgraph::{AsGraph, LinkKind};
use crate::ids::AsId;
use uap_sim::SimTime;

/// Where a byte travelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficCategory {
    /// Source and destination host in the same AS.
    IntraAs,
    /// Crossed one or more peering links (but no transit link).
    InterAsPeering,
    /// Crossed at least one transit link.
    InterAsTransit,
}

impl TrafficCategory {
    /// Stable short name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficCategory::IntraAs => "intra",
            TrafficCategory::InterAsPeering => "peering",
            TrafficCategory::InterAsTransit => "transit",
        }
    }
}

/// Accumulated traffic statistics for one simulation run.
#[derive(Clone, Debug)]
pub struct TrafficAccounting {
    /// Width of a billing sample bucket (default 5 minutes).
    pub sample_width: SimTime,
    intra_bytes: u64,
    peering_bytes: u64,
    transit_bytes: u64,
    per_link_bytes: Vec<u64>,
    /// Per-AS transit bytes (what the AS pays its providers for), bucketed
    /// by sample window for 95th-percentile billing.
    per_as_transit_samples: Vec<Vec<u64>>,
    /// Per-AS total bytes that crossed any of its inter-AS links.
    per_as_external_bytes: Vec<u64>,
    transfers: u64,
}

impl TrafficAccounting {
    /// Creates an accounting ledger for `graph`.
    pub fn new(graph: &AsGraph) -> Self {
        TrafficAccounting {
            sample_width: SimTime::from_mins(5),
            intra_bytes: 0,
            peering_bytes: 0,
            transit_bytes: 0,
            per_link_bytes: vec![0; graph.links.len()],
            per_as_transit_samples: vec![Vec::new(); graph.len()],
            per_as_external_bytes: vec![0; graph.len()],
            transfers: 0,
        }
    }

    /// Records a transfer of `bytes` at time `now` along `path_links`
    /// (empty for an intra-AS transfer between `src_as == dst_as`).
    /// Returns the category the transfer was classified as.
    pub fn record(
        &mut self,
        graph: &AsGraph,
        now: SimTime,
        src_as: AsId,
        path_links: &[u32],
        bytes: u64,
    ) -> TrafficCategory {
        self.transfers += 1;
        if path_links.is_empty() {
            self.intra_bytes += bytes;
            return TrafficCategory::IntraAs;
        }
        let mut crossed_transit = false;
        let mut cur = src_as;
        for &li in path_links {
            let link = &graph.links[li as usize];
            self.per_link_bytes[li as usize] += bytes;
            let next = link.other(cur).expect("path follows links"); // lint:allow(expect)
            match link.kind {
                LinkKind::Peering => {
                    self.peering_bytes += bytes;
                    self.per_as_external_bytes[cur.idx()] += bytes;
                    self.per_as_external_bytes[next.idx()] += bytes;
                }
                LinkKind::Transit => {
                    crossed_transit = true;
                    self.transit_bytes += bytes;
                    self.per_as_external_bytes[cur.idx()] += bytes;
                    self.per_as_external_bytes[next.idx()] += bytes;
                    // The *customer* side pays for transit bytes.
                    let customer = link.b;
                    self.add_transit_sample(customer, now, bytes);
                }
            }
            cur = next;
        }
        #[cfg(debug_assertions)]
        if let Err(e) = crate::invariants::check_traffic_conservation(graph, self) {
            // lint:allow(panic) — debug-only invariant guard
            panic!("traffic ledger corrupted: {e}");
        }
        if crossed_transit {
            TrafficCategory::InterAsTransit
        } else {
            TrafficCategory::InterAsPeering
        }
    }

    fn add_transit_sample(&mut self, asn: AsId, now: SimTime, bytes: u64) {
        let idx = (now.as_micros() / self.sample_width.as_micros()) as usize;
        let buckets = &mut self.per_as_transit_samples[asn.idx()];
        if buckets.len() <= idx {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] += bytes;
    }

    /// Total bytes by category `(intra, peering, transit)`. Peering/transit
    /// totals count each crossed link once per transfer (a 5-link transit
    /// path adds 5 × bytes, reflecting the load each link carries).
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.intra_bytes, self.peering_bytes, self.transit_bytes)
    }

    /// Number of transfers recorded.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes carried by link `li`.
    pub fn link_bytes(&self, li: u32) -> u64 {
        self.per_link_bytes[li as usize]
    }

    /// Per-link byte totals, indexed by link id. Used by the trace layer
    /// to emit end-of-run per-link traffic events.
    pub fn per_link_bytes(&self) -> &[u64] {
        &self.per_link_bytes
    }

    /// Fraction of transfer bytes (weighted per-link) that stayed intra-AS.
    pub fn locality_fraction(&self) -> f64 {
        let total = self.intra_bytes + self.peering_bytes + self.transit_bytes;
        if total == 0 {
            return 0.0;
        }
        self.intra_bytes as f64 / total as f64
    }

    /// The 95th-percentile transit rate for `asn` in Mbit/s, computed over
    /// the billing sample buckets, padding with zero samples up to `horizon`
    /// (an AS that bursts briefly still pays for its busiest 5 % of windows).
    pub fn transit_p95_mbps(&self, asn: AsId, horizon: SimTime) -> f64 {
        let width_s = self.sample_width.as_secs_f64();
        let n_windows = horizon.as_micros().div_ceil(self.sample_width.as_micros()) as usize;
        if n_windows == 0 {
            return 0.0;
        }
        let mut rates: Vec<f64> = self.per_as_transit_samples[asn.idx()]
            .iter()
            .map(|&b| b as f64 * 8.0 / 1e6 / width_s)
            .collect();
        rates.resize(n_windows.max(rates.len()), 0.0);
        rates.sort_by(|a, b| a.total_cmp(b));
        // Nearest-rank 95th percentile.
        let rank = ((0.95 * rates.len() as f64).ceil() as usize).clamp(1, rates.len());
        rates[rank - 1]
    }

    /// Per-AS bytes that crossed any inter-AS link of that AS.
    pub fn external_bytes(&self, asn: AsId) -> u64 {
        self.per_as_external_bytes[asn.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::Tier;
    use crate::geo::GeoPoint;
    use crate::routing::{Routing, RoutingMode};

    fn graph() -> AsGraph {
        let mut g = AsGraph::new();
        let t1 = g.add_as(Tier::Tier1, GeoPoint::new(0.0, 0.0), 100.0);
        let a = g.add_as(Tier::Tier3, GeoPoint::new(10.0, 0.0), 10.0);
        let b = g.add_as(Tier::Tier3, GeoPoint::new(0.0, 10.0), 10.0);
        g.add_transit(t1, a, 1_000, 1_000.0); // link 0, customer = a
        g.add_transit(t1, b, 1_000, 1_000.0); // link 1, customer = b
        g.add_peering(a, b, 500, 100.0); // link 2
        g
    }

    #[test]
    fn intra_as_is_free_of_links() {
        let g = graph();
        let mut t = TrafficAccounting::new(&g);
        let cat = t.record(&g, SimTime::ZERO, AsId(1), &[], 1_000);
        assert_eq!(cat, TrafficCategory::IntraAs);
        assert_eq!(t.totals(), (1_000, 0, 0));
        assert_eq!(t.locality_fraction(), 1.0);
    }

    #[test]
    fn peering_path_classified() {
        let g = graph();
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let path = r.path_links(AsId(1), AsId(2)).unwrap();
        assert_eq!(path, vec![2]); // direct peering
        let mut t = TrafficAccounting::new(&g);
        let cat = t.record(&g, SimTime::ZERO, AsId(1), path, 500);
        assert_eq!(cat, TrafficCategory::InterAsPeering);
        assert_eq!(t.totals(), (0, 500, 0));
        assert_eq!(t.link_bytes(2), 500);
    }

    #[test]
    fn transit_path_bills_the_customers() {
        let g = graph();
        // Force the up-and-over path a -> t1 -> b by killing the peering.
        let mut mask = vec![false; g.links.len()];
        mask[2] = true;
        let r = Routing::compute_with_mask(&g, RoutingMode::ValleyFree, Some(&mask));
        let path = r.path_links(AsId(1), AsId(2)).unwrap();
        assert_eq!(path.len(), 2);
        let mut t = TrafficAccounting::new(&g);
        let cat = t.record(&g, SimTime::from_secs(10), AsId(1), path, 1_000);
        assert_eq!(cat, TrafficCategory::InterAsTransit);
        // Each transit link carries the bytes once.
        assert_eq!(t.totals(), (0, 0, 2_000));
        // Both customer ASes (a and b) accumulate a billing sample.
        assert!(t.transit_p95_mbps(AsId(1), SimTime::from_mins(5)) > 0.0);
        assert!(t.transit_p95_mbps(AsId(2), SimTime::from_mins(5)) > 0.0);
        // The Tier-1 provider pays nobody.
        assert_eq!(t.transit_p95_mbps(AsId(0), SimTime::from_mins(5)), 0.0);
    }

    #[test]
    fn p95_ignores_short_bursts() {
        let g = graph();
        let mut t = TrafficAccounting::new(&g);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        let path = r.path_links(AsId(1), AsId(0)).unwrap();
        // One huge burst in a single 5-minute window of a 10-hour horizon:
        // 1/120 of windows is way under the top 5 %, so p95 stays 0.
        t.record(&g, SimTime::from_mins(2), AsId(1), path, 1 << 30);
        let p95 = t.transit_p95_mbps(AsId(1), SimTime::from_hours(10));
        assert_eq!(p95, 0.0);
        // But a sustained rate shows up.
        let mut t2 = TrafficAccounting::new(&g);
        for m in 0..600 {
            t2.record(&g, SimTime::from_mins(m), AsId(1), path, 75_000_000);
        }
        let p95 = t2.transit_p95_mbps(AsId(1), SimTime::from_hours(10));
        // 75 MB / 5 min/window... each window gets 5 records of 75MB = 375MB
        // over 300 s = 10 Mbps.
        assert!((p95 - 10.0).abs() < 0.2, "p95 {p95}");
    }

    #[test]
    fn locality_fraction_mixes() {
        let g = graph();
        let mut t = TrafficAccounting::new(&g);
        t.record(&g, SimTime::ZERO, AsId(1), &[], 750);
        t.record(&g, SimTime::ZERO, AsId(1), &[2], 250);
        assert_eq!(t.locality_fraction(), 0.75);
        assert_eq!(t.transfers(), 2);
    }
}
