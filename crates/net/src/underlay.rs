//! The underlay façade.
//!
//! [`Underlay`] bundles the AS graph, its routing tables and the host
//! population into the single object overlays query: host-to-host latency,
//! AS-hop distance, path lookup, transfer-time estimation and traffic
//! accounting. It is the "substrate on which the overlay resides".

use crate::asgraph::AsGraph;
use crate::geo::propagation_delay_us;
use crate::host::{Host, HostPopulation, PopulationSpec};
use crate::ids::{AsId, HostId};
use crate::routing::{RepairIndex, RepairStats, Routing, RoutingMode};
use crate::traffic::{TrafficAccounting, TrafficCategory};
use std::cell::Cell;
use uap_sim::{Metrics, SimRng, SimTime, TraceLevel, Tracer};

/// Tunables for the latency model.
#[derive(Clone, Copy, Debug)]
pub struct UnderlayConfig {
    /// Routing policy.
    pub routing: RoutingMode,
    /// Extra per-AS traversal delay (router queueing) in microseconds.
    pub per_as_hop_us: u64,
    /// Multiplier applied to the reverse direction of each ordered host
    /// pair (1.0 = symmetric). Models the asymmetric-path problem of §6.
    pub asymmetry: f64,
    /// Relative jitter amplitude on measured RTTs (0.0 = noiseless).
    pub jitter: f64,
    /// TCP window for throughput estimation: achievable rate is capped at
    /// `window / RTT`, which is what makes low-latency (local) sources
    /// download faster in practice.
    ///
    /// Inter-domain congestion is no longer a per-path discount here: it
    /// emerges from real capacity sharing on the AS links in
    /// [`crate::flow::FlowAllocator`].
    pub tcp_window_bytes: u64,
}

impl Default for UnderlayConfig {
    fn default() -> Self {
        UnderlayConfig {
            routing: RoutingMode::ValleyFree,
            per_as_hop_us: 300,
            asymmetry: 1.0,
            jitter: 0.0,
            tcp_window_bytes: 256 * 1024,
        }
    }
}

/// Deterministic AS-pair route-metric cache: the combined
/// `path_latency + as_hops × per_as_hop_us` term of the host-latency
/// decomposition, materialized per ordered AS pair at build time so
/// [`Underlay::latency_us`] (and therefore `rtt_us`) does one indexed
/// read instead of probing the routing table twice per direction.
/// Each entry also carries the path's transit-link count in its upper
/// bits, so post-run analyses can read a path's transit crossing count
/// from the word the RTT computation already loaded instead of touching
/// the routing table a second time. `u64::MAX` marks unreachable pairs.
///
/// The cache is derived from the routing table, `per_as_hop_us` and the
/// active latency-inflation factor. Host migration cannot stale it
/// (migration changes which AS a host maps to, not any AS-pair metric),
/// but **swapping the routing table can**: whoever rebuilds `routing`
/// (fault epochs, manual masked rebuilds through the `pub` field) must go
/// through [`Underlay::rebuild_routing_with_mask`] /
/// [`Underlay::invalidate_route_cache`] so the cache is invalidated in
/// the same step. [`Underlay::assert_route_cache_coherent`] verifies the
/// invariant in debug builds after every invalidation.
///
/// Invalidation is **generation-stamped and per source row**: every
/// entry carries the generation of its `src` row at fill time and is
/// valid only while the two match, so bumping a row's generation lazily
/// invalidates its `n` entries in O(1). Incremental fault-epoch repairs
/// ([`Underlay::apply_fault_state`]) bump only the rows of sources whose
/// routing actually changed; untouched rows keep serving their filled
/// entries with no refill cost. Stale entries refill from the routing
/// table on next lookup (counted in `refills`).
///
/// Hit/miss counters use `Cell` so read-only latency queries (`&self`)
/// can record them; a "miss" is an intra-AS query answered by the
/// geographic model instead of the cache.
#[derive(Debug)]
struct RouteCache {
    n: usize,
    /// `n × n` packed entries, row-major by source AS:
    /// `transit_links << 48 | combined_us`. `Cell` so stale entries can
    /// refill during read-only lookups.
    entries: Vec<Cell<u64>>,
    /// Fill generation per entry; valid iff it matches `row_gen[src]`.
    entry_gen: Vec<Cell<u32>>,
    /// Current generation per source row; bumping it invalidates the row.
    row_gen: Vec<u32>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// Stale entries refilled on lookup since construction.
    refills: Cell<u64>,
}

/// Unreachable-pair sentinel (no real entry has all transit bits set).
const UNREACHABLE_ENTRY: u64 = u64::MAX;
/// Low 48 bits of a packed entry: combined microseconds (2^48 µs is over
/// eight simulated years — far beyond any path metric).
const COMBINED_MASK: u64 = (1 << 48) - 1;

impl RouteCache {
    /// Eagerly fills every entry (all generations valid at 0). The
    /// initial build is eager so coherence checks and first lookups never
    /// observe an unfilled cache; later invalidations are lazy.
    // lint:allow(alloc) — cache construction; runs once per full routing rebuild
    fn build(routing: &Routing, n: usize, per_as_hop_us: u64, latency_factor: f64) -> RouteCache {
        let mut entries = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                entries.push(Cell::new(Self::packed_entry(
                    routing,
                    AsId::from_index(s),
                    AsId::from_index(d),
                    per_as_hop_us,
                    latency_factor,
                )));
            }
        }
        RouteCache {
            n,
            entries,
            entry_gen: vec![Cell::new(0); n * n],
            row_gen: vec![0; n],
            hits: Cell::new(0),
            misses: Cell::new(0),
            refills: Cell::new(0),
        }
    }

    /// Carries the lookup counters over from the cache this one replaces,
    /// so a rebuild never resets observability counters.
    fn retain_stats_from(&self, prev: &RouteCache) {
        self.hits.set(prev.hits.get());
        self.misses.set(prev.misses.get());
        self.refills.set(prev.refills.get());
    }

    /// Invalidates every source row (full routing swap or a change to the
    /// latency factor folded into the entries).
    fn invalidate_all_rows(&mut self) {
        for g in &mut self.row_gen {
            *g = g.wrapping_add(1);
        }
    }

    /// Invalidates one source row: its entries refill lazily on lookup.
    fn invalidate_row(&mut self, src: usize) {
        self.row_gen[src] = self.row_gen[src].wrapping_add(1);
    }

    /// The packed entry for one ordered AS pair, straight from the routing
    /// table — the ground truth the cache materializes and the coherence
    /// assertion recomputes.
    fn packed_entry(
        routing: &Routing,
        src: AsId,
        dst: AsId,
        per_as_hop_us: u64,
        latency_factor: f64,
    ) -> u64 {
        match routing.route(src, dst) {
            None => UNREACHABLE_ENTRY,
            Some(r) => {
                let mut combined = r.latency_us + r.hops as u64 * per_as_hop_us;
                if (latency_factor - 1.0).abs() > f64::EPSILON {
                    combined = (combined as f64 * latency_factor) as u64;
                }
                debug_assert!(combined <= COMBINED_MASK);
                (r.transit_links as u64) << 48 | combined
            }
        }
    }

    /// Reads the packed entry for an ordered AS pair, counting a hit.
    /// A generation-stale entry refills from the routing table first.
    #[inline]
    fn lookup(
        &self,
        src: AsId,
        dst: AsId,
        routing: &Routing,
        per_as_hop_us: u64,
        latency_factor: f64,
    ) -> u64 {
        self.hits.set(self.hits.get() + 1);
        let i = src.idx() * self.n + dst.idx();
        let gen = self.row_gen[src.idx()];
        if self.entry_gen[i].get() == gen {
            return self.entries[i].get();
        }
        let entry = Self::packed_entry(routing, src, dst, per_as_hop_us, latency_factor);
        self.entries[i].set(entry);
        self.entry_gen[i].set(gen);
        self.refills.set(self.refills.get() + 1);
        entry
    }

    #[inline]
    fn note_miss(&self) {
        self.misses.set(self.misses.get() + 1);
    }
}

/// The assembled underlay: topology + routing + hosts.
pub struct Underlay {
    /// The AS graph.
    pub graph: AsGraph,
    /// All-pairs routing.
    pub routing: Routing,
    /// The attached hosts.
    pub hosts: HostPopulation,
    /// Configuration.
    pub config: UnderlayConfig,
    /// Traffic ledger for this run.
    pub traffic: TrafficAccounting,
    /// AS-pair route-metric cache (see [`RouteCache`]).
    route_cache: RouteCache,
    /// Repair bookkeeping for incremental fault-epoch routing updates
    /// (see [`RepairIndex`]). `None` after a direct `routing` write via
    /// [`Underlay::invalidate_route_cache`] — the next fault epoch then
    /// falls back to one full indexed rebuild and restores it.
    repair_index: Option<RepairIndex>,
    /// The link-failure mask the current routing table was built under
    /// (all-false = no faults), diffed against the next fault state's
    /// mask to find changed links.
    active_mask: Vec<bool>,
    /// Latency-inflation factor from the active fault state (1.0 = none),
    /// folded into the cache entries at (re)fill time.
    latency_factor: f64,
    /// How many times the route cache has been invalidated after a
    /// routing swap (fault epochs, manual invalidation).
    invalidations: u64,
    /// Stats of the most recent fault-epoch repair.
    last_repair: RepairStats,
    /// Running totals across fault epochs: sources recomputed vs the
    /// sources a full rebuild would have recomputed, and how often the
    /// majority-dirty heuristic forced a full rebuild.
    repair_sources_recomputed: u64,
    repair_sources_total: u64,
    repair_full_fallbacks: u64,
    /// Upper bound on any host pair's access bottleneck
    /// (`min(max uplink, max downlink)` over all hosts, in kbit/s).
    /// Host bandwidth is fixed at build time (migration moves a host
    /// without resampling its access profile), so this lets
    /// [`Underlay::transfer_time`] prove the TCP window/RTT cap cannot
    /// bind and skip the division on the fast path.
    bottleneck_bound_kbps: u64,
}

impl Underlay {
    /// Assembles an underlay from a generated graph and a population spec.
    pub fn build(
        graph: AsGraph,
        pop: &PopulationSpec,
        config: UnderlayConfig,
        rng: &mut SimRng,
    ) -> Underlay {
        let (routing, repair_index) = Routing::compute_indexed(&graph, config.routing, None);
        let hosts = HostPopulation::build(&graph, pop, rng);
        let traffic = TrafficAccounting::new(&graph);
        let route_cache = RouteCache::build(&routing, graph.len(), config.per_as_hop_us, 1.0);
        let max_up = hosts
            .ids()
            .map(|h| hosts.host(h).up_kbps as u64)
            .max()
            .unwrap_or(0);
        let max_down = hosts
            .ids()
            .map(|h| hosts.host(h).down_kbps as u64)
            .max()
            .unwrap_or(0);
        let n_links = graph.links.len();
        Underlay {
            graph,
            routing,
            hosts,
            config,
            traffic,
            route_cache,
            repair_index: Some(repair_index),
            active_mask: vec![false; n_links],
            latency_factor: 1.0,
            invalidations: 0,
            last_repair: RepairStats::default(),
            repair_sources_recomputed: 0,
            repair_sources_total: 0,
            repair_full_fallbacks: 0,
            bottleneck_bound_kbps: max_up.min(max_down).max(1),
        }
    }

    /// Rebuilds routing *from scratch* with a link-failure `mask`
    /// (`None` = all links up) and **invalidates the packed AS-pair route
    /// cache** in the same step, restoring the repair index so later
    /// fault epochs are incremental again. This is the sanctioned way to
    /// force a full table swap; fault epochs should go through
    /// [`Underlay::apply_fault_state`], which repairs incrementally.
    /// Writing `self.routing` directly leaves stale cached
    /// `latency_us`/`rtt_us`/`transfer_time` answers behind (see the
    /// `masked_rebuild_changes_cached_answers` golden test).
    pub fn rebuild_routing_with_mask(&mut self, mask: Option<&[bool]>) {
        let (routing, index) = Routing::compute_indexed(&self.graph, self.config.routing, mask);
        self.routing = routing;
        match mask {
            Some(m) => self.active_mask.copy_from_slice(m),
            None => self.active_mask.fill(false),
        }
        self.invalidate_route_cache();
        // Set after invalidate_route_cache, which clears the index to
        // protect against direct routing writes.
        self.repair_index = Some(index);
    }

    /// Applies one composed fault state: the link mask drives an
    /// **incremental routing repair** (only sources whose shortest-path
    /// trees the changed links touch are recomputed — see
    /// [`Routing::repair_with_mask`]), and only those sources' route-cache
    /// rows are invalidated; a changed latency-inflation factor
    /// invalidates every row since it is folded into each entry. Host
    /// crashes are overlay-level (the worlds take peers offline); the
    /// underlay only carries the path effects.
    ///
    /// Returns the repair stats for telemetry
    /// (`net.routing.sources_recomputed` et al. via
    /// [`Underlay::export_repair_metrics`], `routing.repair` trace
    /// events at fault boundaries).
    pub fn apply_fault_state(&mut self, state: &crate::fault::FaultState) -> RepairStats {
        let factor_changed = (state.latency_factor - self.latency_factor).abs() > f64::EPSILON;
        self.latency_factor = state.latency_factor;
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let stats = match &mut self.repair_index {
            Some(index) => self.routing.repair_with_mask(
                index,
                &self.graph,
                Some(&self.active_mask),
                state.mask.as_deref(),
                threads,
            ),
            None => {
                // The index was dropped by a direct-write invalidation;
                // one full rebuild restores it.
                let (routing, index) = Routing::compute_indexed(
                    &self.graph,
                    self.config.routing,
                    state.mask.as_deref(),
                );
                self.routing = routing;
                self.repair_index = Some(index);
                RepairStats {
                    changed_links: 0,
                    dirty_sources: self.graph.len(),
                    sources_total: self.graph.len(),
                    full_rebuild: true,
                }
            }
        };
        match state.mask.as_deref() {
            Some(m) => self.active_mask.copy_from_slice(m),
            None => self.active_mask.fill(false),
        }
        if stats.full_rebuild || factor_changed {
            self.route_cache.invalidate_all_rows();
        } else if let Some(index) = &self.repair_index {
            for &s in index.dirty_sources() {
                self.route_cache.invalidate_row(s as usize);
            }
        }
        self.invalidations += 1;
        self.last_repair = stats;
        self.repair_sources_recomputed += stats.dirty_sources as u64;
        self.repair_sources_total += stats.sources_total as u64;
        if stats.full_rebuild {
            self.repair_full_fallbacks += 1;
        }
        #[cfg(debug_assertions)]
        self.assert_route_cache_coherent();
        stats
    }

    /// Rebuilds the route cache eagerly from the *current* routing table,
    /// preserving the lookup counters across the swap
    /// ([`RouteCache::retain_stats_from`]) and bumping the invalidation
    /// counter. Call after any direct `routing` write; since such a write
    /// bypasses the repair bookkeeping, the repair index is dropped and
    /// the next fault epoch performs one full rebuild to restore it. In
    /// debug builds the rebuilt cache is immediately checked for
    /// coherence.
    pub fn invalidate_route_cache(&mut self) {
        self.repair_index = None;
        let fresh = RouteCache::build(
            &self.routing,
            self.graph.len(),
            self.config.per_as_hop_us,
            self.latency_factor,
        );
        fresh.retain_stats_from(&self.route_cache);
        self.route_cache = fresh;
        self.invalidations += 1;
        #[cfg(debug_assertions)]
        self.assert_route_cache_coherent();
    }

    /// Verifies every *generation-valid* packed cache entry against a
    /// fresh routing-table computation — the debug-mode coherence
    /// assertion guarding fault epoch switches. Generation-stale entries
    /// are skipped: they refill from the live table on next lookup, so
    /// they cannot serve wrong answers. O(n²) route loads; debug builds
    /// only (called after every invalidation/repair) plus tests.
    ///
    /// # Panics
    ///
    /// Panics when any valid cached entry disagrees with the routing
    /// table.
    pub fn assert_route_cache_coherent(&self) {
        let n = self.graph.len();
        for s in 0..n {
            for d in 0..n {
                let i = s * self.route_cache.n + d;
                if self.route_cache.entry_gen[i].get() != self.route_cache.row_gen[s] {
                    continue; // lazily invalidated; refills on next lookup
                }
                let (src, dst) = (AsId::from_index(s), AsId::from_index(d));
                let want = RouteCache::packed_entry(
                    &self.routing,
                    src,
                    dst,
                    self.config.per_as_hop_us,
                    self.latency_factor,
                );
                let got = self.route_cache.entries[i].get();
                assert_eq!(
                    got, want,
                    "route cache stale for AS pair ({s}, {d}): \
                     cached {got:#x}, routing table says {want:#x} — \
                     was `routing` swapped without invalidate_route_cache()?"
                );
            }
        }
    }

    /// Number of route-cache invalidations (routing rebuilds) so far.
    pub fn route_cache_invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of ASes.
    pub fn n_ases(&self) -> usize {
        self.graph.len()
    }

    /// The host record.
    pub fn host(&self, h: HostId) -> &Host {
        self.hosts.host(h)
    }

    /// Whether two hosts attach through the same ISP.
    #[inline]
    pub fn same_as(&self, a: HostId, b: HostId) -> bool {
        self.hosts.as_of(a) == self.hosts.as_of(b)
    }

    /// AS-hop distance between two hosts (0 if same AS).
    #[inline]
    pub fn as_hops(&self, a: HostId, b: HostId) -> Option<u32> {
        self.routing
            .as_hops(self.hosts.as_of(a), self.hosts.as_of(b))
    }

    /// One-way latency from `a` to `b` in microseconds: both access links,
    /// the inter-AS path, per-AS-hop queueing, and intra-AS propagation
    /// between geographic positions. The inter-AS term
    /// (`path latency + hops × per_as_hop_us`) is served by the AS-pair
    /// route cache in a single indexed read.
    #[inline]
    pub fn latency_us(&self, a: HostId, b: HostId) -> Option<u64> {
        if a == b {
            return Some(0);
        }
        let ha = self.hosts.host(a);
        let hb = self.hosts.host(b);
        let base = ha.access_latency_us + hb.access_latency_us;
        if ha.asn == hb.asn {
            // Intra-AS: propagation across the ISP's metro network — the
            // cache does not apply.
            self.route_cache.note_miss();
            return Some(base + propagation_delay_us(ha.geo.distance_km(&hb.geo)));
        }
        match self.route_cache.lookup(
            ha.asn,
            hb.asn,
            &self.routing,
            self.config.per_as_hop_us,
            self.latency_factor,
        ) {
            UNREACHABLE_ENTRY => None,
            entry => Some(base + (entry & COMBINED_MASK)),
        }
    }

    /// Fused round-trip computation: one host fetch per endpoint, both
    /// directional latencies from the already-loaded records, and the
    /// forward packed cache entry returned alongside so `transfer_time`
    /// can read the transit count without a second table access. Returns
    /// `(rtt_us, forward_entry)`; the entry is [`UNREACHABLE_ENTRY`] for
    /// same-host or intra-AS pairs (where no cache entry applies).
    ///
    /// Byte-for-byte equivalent to
    /// `latency_directional_us(a, b)? + latency_directional_us(b, a)?`,
    /// including hit/miss counter effects and their ordering.
    #[inline]
    fn rtt_fused(&self, a: HostId, b: HostId, ha: &Host, hb: &Host) -> Option<(u64, u64)> {
        if a == b {
            return Some((0, UNREACHABLE_ENTRY));
        }
        let base = ha.access_latency_us + hb.access_latency_us;
        let (lat_ab, lat_ba, fwd) = if ha.asn == hb.asn {
            self.route_cache.note_miss();
            self.route_cache.note_miss();
            // Geographic distance is symmetric, so both directions share
            // the same base latency.
            let l = base + propagation_delay_us(ha.geo.distance_km(&hb.geo));
            (l, l, UNREACHABLE_ENTRY)
        } else {
            let fwd = self.route_cache.lookup(
                ha.asn,
                hb.asn,
                &self.routing,
                self.config.per_as_hop_us,
                self.latency_factor,
            );
            if fwd == UNREACHABLE_ENTRY {
                return None;
            }
            let rev = self.route_cache.lookup(
                hb.asn,
                ha.asn,
                &self.routing,
                self.config.per_as_hop_us,
                self.latency_factor,
            );
            if rev == UNREACHABLE_ENTRY {
                return None;
            }
            (
                base + (fwd & COMBINED_MASK),
                base + (rev & COMBINED_MASK),
                fwd,
            )
        };
        if (self.config.asymmetry - 1.0).abs() < f64::EPSILON {
            return Some((lat_ab + lat_ba, fwd));
        }
        // Replicate latency_directional_us exactly: the larger-id →
        // smaller-id direction is scaled.
        let dir_ab = if a.0 > b.0 {
            (lat_ab as f64 * self.config.asymmetry) as u64
        } else {
            lat_ab
        };
        let dir_ba = if b.0 > a.0 {
            (lat_ba as f64 * self.config.asymmetry) as u64
        } else {
            lat_ba
        };
        Some((dir_ab + dir_ba, fwd))
    }

    /// Hit/miss counters of the AS-pair route cache: `(hits, misses)`.
    /// A hit is an inter-AS latency query served from the cache; a miss
    /// is an intra-AS query answered by the geographic model.
    pub fn route_cache_stats(&self) -> (u64, u64) {
        (self.route_cache.hits.get(), self.route_cache.misses.get())
    }

    /// Stale route-cache entries refilled on lookup so far (grows only
    /// after lazy invalidations, i.e. incremental fault-epoch repairs).
    pub fn route_cache_refills(&self) -> u64 {
        self.route_cache.refills.get()
    }

    /// Stats of the most recent [`Underlay::apply_fault_state`] repair.
    pub fn last_repair_stats(&self) -> RepairStats {
        self.last_repair
    }

    /// Running `(sources_recomputed, sources_total, full_fallbacks)`
    /// totals across all fault epochs applied so far.
    pub fn repair_totals(&self) -> (u64, u64, u64) {
        (
            self.repair_sources_recomputed,
            self.repair_sources_total,
            self.repair_full_fallbacks,
        )
    }

    /// Exports the route-cache counters into `metrics` as
    /// `net.route_cache.hit` / `net.route_cache.miss` /
    /// `net.route_cache.invalidations` absolute values.
    /// Opt-in (call at end of run) so existing experiment reports keep
    /// their byte-identical metric sets unless they ask for these.
    pub fn export_route_cache_metrics(&self, metrics: &mut Metrics) {
        let (hits, misses) = self.route_cache_stats();
        metrics.set_counter("net.route_cache.hit", hits);
        metrics.set_counter("net.route_cache.miss", misses);
        metrics.set_counter("net.route_cache.invalidations", self.invalidations);
    }

    /// Exports the incremental-repair counters into `metrics` as
    /// `net.routing.sources_recomputed` / `net.routing.sources_total` /
    /// `net.routing.repair_full_fallbacks` absolute values. Opt-in, like
    /// [`Underlay::export_route_cache_metrics`]; the recomputed/total
    /// ratio is the fraction of per-source Dijkstra work fault epochs
    /// actually paid versus full rebuilds.
    pub fn export_repair_metrics(&self, metrics: &mut Metrics) {
        metrics.set_counter(
            "net.routing.sources_recomputed",
            self.repair_sources_recomputed,
        );
        metrics.set_counter("net.routing.sources_total", self.repair_sources_total);
        metrics.set_counter(
            "net.routing.repair_full_fallbacks",
            self.repair_full_fallbacks,
        );
    }

    /// Emits one `net`/`route_cache` trace event (Debug level) with the
    /// current hit/miss counters. Opt-in, like
    /// [`Underlay::export_route_cache_metrics`].
    pub fn trace_route_cache(&self, now: SimTime, tracer: &mut Tracer) {
        if !tracer.is_enabled("net", TraceLevel::Debug) {
            return;
        }
        let (hits, misses) = self.route_cache_stats();
        tracer.emit(now, "net", TraceLevel::Debug, "route_cache", |f| {
            f.u64("hits", hits).u64("misses", misses);
        });
    }

    /// Directional latency including the asymmetry factor: the `a -> b`
    /// direction is the base latency, `b -> a` is scaled. Asymmetry is
    /// keyed on host-id order so it is consistent across calls.
    #[inline]
    pub fn latency_directional_us(&self, from: HostId, to: HostId) -> Option<u64> {
        let base = self.latency_us(from, to)?;
        if (self.config.asymmetry - 1.0).abs() < f64::EPSILON {
            return Some(base);
        }
        // The "high" direction is from the larger id to the smaller.
        if from.0 > to.0 {
            Some((base as f64 * self.config.asymmetry) as u64)
        } else {
            Some(base)
        }
    }

    /// Round-trip time in microseconds (sum of both directions).
    #[inline]
    pub fn rtt_us(&self, a: HostId, b: HostId) -> Option<u64> {
        let (rtt, _) = self.rtt_fused(a, b, self.hosts.host(a), self.hosts.host(b))?;
        Some(rtt)
    }

    /// An RTT *measurement*: the true RTT plus multiplicative jitter. This
    /// is what a ping observes; coordinate systems embed these noisy values.
    pub fn measured_rtt_us(&self, a: HostId, b: HostId, rng: &mut SimRng) -> Option<u64> {
        let rtt = self.rtt_us(a, b)?;
        if self.config.jitter <= 0.0 {
            return Some(rtt);
        }
        let f = 1.0 + rng.f64_range(0.0, self.config.jitter);
        Some((rtt as f64 * f) as u64)
    }

    /// Estimated time to transfer `bytes` from `a` to `b`: one RTT of
    /// handshake plus serialization at the bottleneck of `a`'s uplink,
    /// `b`'s downlink, and the TCP window/RTT throughput cap — the cap is
    /// what makes nearby (low-RTT) sources genuinely faster, not just
    /// cheaper for the ISP.
    #[inline]
    pub fn transfer_time(&self, a: HostId, b: HostId, bytes: u64) -> Option<SimTime> {
        let ha = self.hosts.host(a);
        let hb = self.hosts.host(b);
        let (rtt, _) = self.rtt_fused(a, b, ha, hb)?;
        let mut bottleneck_kbps = ha.up_kbps.min(hb.down_kbps).max(1) as u64;
        // window bytes per RTT → kbit/s. When the RTT is small enough that
        // `window / RTT` provably exceeds every host's line rate
        // (`rtt × bound ≤ window_kbits`, floor-division-exact), the cap
        // cannot bind and the division is skipped entirely.
        let window_kbits = self
            .config
            .tcp_window_bytes
            .saturating_mul(8)
            .saturating_mul(1_000);
        if rtt.saturating_mul(self.bottleneck_bound_kbps) > window_kbits {
            if let Some(tcp_cap_kbps) = window_kbits.checked_div(rtt) {
                bottleneck_kbps = bottleneck_kbps.min(tcp_cap_kbps.max(1));
            }
        }
        let ser_us = bytes.saturating_mul(8).saturating_mul(1_000) / bottleneck_kbps;
        Some(SimTime::from_micros(rtt + ser_us))
    }

    /// Records a transfer in the traffic ledger and returns its category.
    pub fn account_transfer(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
    ) -> TrafficCategory {
        let src_as = self.hosts.as_of(from);
        let dst_as = self.hosts.as_of(to);
        if src_as == dst_as {
            return self.traffic.record(&self.graph, now, src_as, &[], bytes);
        }
        match self.routing.path_links(src_as, dst_as) {
            Some(path) => self.traffic.record(&self.graph, now, src_as, path, bytes),
            // Unroutable pair (disconnected graph, or valley-free policy
            // with no compliant path): the transfer cannot happen, so no
            // link carries the bytes — but it must NOT be mistaken for
            // local traffic.
            None => TrafficCategory::InterAsTransit,
        }
    }

    /// Like [`Underlay::account_transfer`], but also emits a `net`/`transfer`
    /// trace event (Debug level) recording the routing decision: endpoint
    /// hosts and ASes, byte count, traffic category, and the number of
    /// links / transit links the valley-free path crossed. The route is
    /// resolved once — the trace fields come from the same precomputed
    /// summary the accounting used, not a second path walk.
    pub fn account_transfer_traced(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
        tracer: &mut Tracer,
    ) -> TrafficCategory {
        let cat = self.account_transfer(now, from, to, bytes);
        if tracer.is_enabled("net", TraceLevel::Debug) {
            let src_as = self.hosts.as_of(from);
            let dst_as = self.hosts.as_of(to);
            let (links, transit) = if src_as == dst_as {
                (0, 0)
            } else {
                match self.routing.route(src_as, dst_as) {
                    Some(r) => (r.hops, r.transit_links),
                    None => (0, 0),
                }
            };
            tracer.emit(now, "net", TraceLevel::Debug, "transfer", |f| {
                f.u64("from", from.0 as u64)
                    .u64("to", to.0 as u64)
                    .u64("src_as", src_as.idx() as u64)
                    .u64("dst_as", dst_as.idx() as u64)
                    .u64("bytes", bytes)
                    .str("cat", cat.name())
                    .u64("links", links as u64)
                    .u64("transit", transit as u64);
            });
        }
        cat
    }

    /// Emits one `net`/`link.total` trace event (Debug level) per link
    /// that carried traffic, capturing the per-link byte distribution at
    /// the moment of the call (typically end of run).
    pub fn trace_link_totals(&self, now: SimTime, tracer: &mut Tracer) {
        if !tracer.is_enabled("net", TraceLevel::Debug) {
            return;
        }
        let per_link = self.traffic.per_link_bytes();
        for (li, (link, &bytes)) in self.graph.links.iter().zip(per_link).enumerate() {
            if bytes == 0 {
                continue;
            }
            tracer.emit(now, "net", TraceLevel::Debug, "link.total", |f| {
                f.u64("link", li as u64)
                    .str(
                        "kind",
                        match link.kind {
                            crate::asgraph::LinkKind::Peering => "peering",
                            crate::asgraph::LinkKind::Transit => "transit",
                        },
                    )
                    .u64("a", link.a.idx() as u64)
                    .u64("b", link.b.idx() as u64)
                    .u64("bytes", bytes);
            });
        }
    }

    /// Geographic distance between two hosts in kilometres.
    pub fn geo_distance_km(&self, a: HostId, b: HostId) -> f64 {
        self.hosts.host(a).geo.distance_km(&self.hosts.host(b).geo)
    }

    /// Resets the traffic ledger (e.g. between experiment phases).
    pub fn reset_traffic(&mut self) {
        self.traffic = TrafficAccounting::new(&self.graph);
    }

    /// Moves a host to another AS (mobility, §6 challenge). Cached
    /// underlay information held by services built earlier becomes stale —
    /// which is precisely what experiment E11c measures.
    pub fn migrate_host(&mut self, h: HostId, new_as: crate::ids::AsId, rng: &mut SimRng) {
        self.hosts.migrate(&self.graph, h, new_as, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TopologyKind, TopologySpec};

    fn underlay(asym: f64) -> Underlay {
        let mut rng = SimRng::new(42);
        let spec = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        });
        let graph = spec.build(&mut rng);
        Underlay::build(
            graph,
            &PopulationSpec::leaf(200),
            UnderlayConfig {
                asymmetry: asym,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn self_latency_is_zero() {
        let u = underlay(1.0);
        assert_eq!(u.latency_us(HostId(0), HostId(0)), Some(0));
    }

    #[test]
    fn latency_is_symmetric_by_default() {
        let u = underlay(1.0);
        for i in 0..10u32 {
            let (a, b) = (HostId(i), HostId(i + 50));
            assert_eq!(u.latency_us(a, b), u.latency_us(b, a));
            assert_eq!(u.rtt_us(a, b).unwrap(), 2 * u.latency_us(a, b).unwrap());
        }
    }

    #[test]
    fn same_as_pairs_are_much_closer() {
        let u = underlay(1.0);
        // Find an intra-AS pair and an inter-AS pair with the same access
        // profiles would be ideal; statistically intra < inter on average.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..50u32 {
            for b in (a + 1)..50u32 {
                let (a, b) = (HostId(a), HostId(b));
                let l = u.latency_us(a, b).unwrap() as f64;
                if u.same_as(a, b) {
                    intra.push(l);
                } else {
                    inter.push(l);
                }
            }
        }
        assert!(!intra.is_empty() && !inter.is_empty());
        let mi = intra.iter().sum::<f64>() / intra.len() as f64;
        let me = inter.iter().sum::<f64>() / inter.len() as f64;
        assert!(mi < me, "intra {mi} not < inter {me}");
    }

    #[test]
    fn asymmetry_skews_directions() {
        let u = underlay(1.5);
        let (a, b) = (HostId(3), HostId(120));
        let ab = u.latency_directional_us(a, b).unwrap();
        let ba = u.latency_directional_us(b, a).unwrap();
        assert!(ba > ab);
        assert!((ba as f64 / ab as f64 - 1.5).abs() < 0.01);
    }

    #[test]
    fn measured_rtt_jitter_bounds() {
        let mut rng = SimRng::new(9);
        let mut u = underlay(1.0);
        u.config.jitter = 0.2;
        let (a, b) = (HostId(1), HostId(2));
        let truth = u.rtt_us(a, b).unwrap();
        for _ in 0..100 {
            let m = u.measured_rtt_us(a, b, &mut rng).unwrap();
            assert!(m >= truth && m as f64 <= truth as f64 * 1.2 + 1.0);
        }
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let u = underlay(1.0);
        let (a, b) = (HostId(0), HostId(1));
        let t1 = u.transfer_time(a, b, 100_000).unwrap();
        let t2 = u.transfer_time(a, b, 1_000_000).unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn unroutable_transfer_is_not_counted_as_local() {
        // Peering-only ring under valley-free policy: hosts more than one
        // peering hop apart are mutually unreachable. Their (impossible)
        // transfer must not inflate the intra-AS locality figure.
        let mut rng = SimRng::new(77);
        let graph =
            crate::gen::TopologySpec::new(crate::gen::TopologyKind::Ring { n: 5 }).build(&mut rng);
        let mut u = Underlay::build(
            graph,
            &crate::host::PopulationSpec::uniform(10),
            UnderlayConfig {
                routing: crate::routing::RoutingMode::ValleyFree,
                ..Default::default()
            },
            &mut rng,
        );
        let far = u
            .hosts
            .ids()
            .find(|&h| u.as_hops(HostId(0), h).is_none())
            .expect("ring has unreachable pairs under valley-free policy");
        let cat = u.account_transfer(SimTime::ZERO, HostId(0), far, 1_000);
        assert_eq!(cat, TrafficCategory::InterAsTransit);
        let (intra, _, _) = u.traffic.totals();
        assert_eq!(intra, 0);
    }

    #[test]
    fn traced_transfer_records_routing_decision() {
        let mut u = underlay(1.0);
        let mut tracer = uap_sim::Tracer::buffered(uap_sim::TraceLevel::Debug);
        // Find an inter-AS pair.
        let (a, b) = (0..200u32)
            .flat_map(|a| ((a + 1)..200u32).map(move |b| (HostId(a), HostId(b))))
            .find(|&(a, b)| !u.same_as(a, b))
            .unwrap();
        let cat = u.account_transfer_traced(SimTime::ZERO, a, b, 5_000, &mut tracer);
        u.trace_link_totals(SimTime::ZERO, &mut tracer);
        let events = tracer.events();
        let transfer = events.iter().find(|e| e.kind == "transfer").unwrap();
        assert_eq!(transfer.component, "net");
        assert!(transfer
            .fields
            .iter()
            .any(|(k, v)| k == "cat" && *v == uap_sim::trace::Value::Str(cat.name().into())));
        assert!(
            events.iter().any(|e| e.kind == "link.total"),
            "an inter-AS transfer must leave per-link totals"
        );
        // A disabled tracer records nothing and costs no path inspection.
        let mut off = uap_sim::Tracer::disabled();
        u.account_transfer_traced(SimTime::ZERO, a, b, 5_000, &mut off);
        assert_eq!(off.len(), 0);
    }

    /// First inter-AS host pair of the fixture (the route cache applies
    /// only to inter-AS queries).
    fn inter_as_pair(u: &Underlay) -> (HostId, HostId) {
        (0..200u32)
            .flat_map(|a| ((a + 1)..200u32).map(move |b| (HostId(a), HostId(b))))
            .find(|&(a, b)| !u.same_as(a, b))
            .expect("hierarchical fixture has inter-AS pairs")
    }

    #[test]
    fn masked_rebuild_changes_cached_answers() {
        // Golden test for the cache-staleness bug: swapping the routing
        // table without invalidation keeps serving pre-swap answers; the
        // sanctioned rebuild path must change them.
        let mut u = underlay(1.0);
        let (a, b) = inter_as_pair(&u);
        let lat0 = u.latency_us(a, b);
        assert!(lat0.is_some());
        let all_down = vec![true; u.graph.links.len()];

        // The buggy pattern: write `routing` directly. Every inter-AS pair
        // is now unroutable, but the stale cache still answers.
        u.routing = Routing::compute_with_mask(&u.graph, u.config.routing, Some(&all_down));
        assert_eq!(
            u.latency_us(a, b),
            lat0,
            "direct routing swap left the cache serving stale answers \
             (this is the bug the invalidation hook exists for)"
        );

        // Invalidation brings the cache back in line with the table.
        u.invalidate_route_cache();
        assert_eq!(
            u.latency_us(a, b),
            None,
            "masked rebuild must change cached answers"
        );
        assert_eq!(u.rtt_us(a, b), None);
        assert_eq!(u.transfer_time(a, b, 100_000), None);

        // The one-step sanctioned path restores the original answers.
        u.rebuild_routing_with_mask(None);
        assert_eq!(u.latency_us(a, b), lat0);
        assert_eq!(u.route_cache_invalidations(), 2);
    }

    #[test]
    #[should_panic(expected = "route cache stale")]
    fn coherence_assertion_catches_direct_routing_swap() {
        let mut u = underlay(1.0);
        let all_down = vec![true; u.graph.links.len()];
        u.routing = Routing::compute_with_mask(&u.graph, u.config.routing, Some(&all_down));
        u.assert_route_cache_coherent();
    }

    #[test]
    fn fault_state_latency_inflation_scales_inter_as_paths() {
        let mut u = underlay(1.0);
        let (a, b) = inter_as_pair(&u);
        let lat0 = u.latency_us(a, b).unwrap();
        let mut state = crate::fault::FaultState::clear();
        state.latency_factor = 3.0;
        u.apply_fault_state(&state);
        let lat1 = u.latency_us(a, b).unwrap();
        assert!(
            lat1 > lat0,
            "inflation must slow inter-AS paths ({lat1} vs {lat0})"
        );
        // Clearing the fault restores the exact pre-fault metric.
        u.apply_fault_state(&crate::fault::FaultState::clear());
        assert_eq!(u.latency_us(a, b), Some(lat0));
        assert_eq!(u.route_cache_invalidations(), 2);
    }

    #[test]
    fn invalidation_with_zero_prior_lookups_keeps_zero_stats() {
        // Edge case for the retain_stats_from plumbing: invalidating a
        // cache that was never queried must carry the (0, 0) counters
        // over, not reset or corrupt them.
        let mut u = underlay(1.0);
        assert_eq!(u.route_cache_stats(), (0, 0));
        u.invalidate_route_cache();
        assert_eq!(u.route_cache_stats(), (0, 0));
        assert_eq!(u.route_cache_refills(), 0);
        assert_eq!(u.route_cache_invalidations(), 1);
        // Counters accumulated later survive the next invalidation.
        let (a, b) = inter_as_pair(&u);
        u.latency_us(a, b);
        let (hits, _) = u.route_cache_stats();
        u.invalidate_route_cache();
        assert_eq!(u.route_cache_stats().0, hits);
    }

    /// A deeper hierarchy than `underlay()` so localized faults dirty a
    /// small fraction of sources, plus a tier3–tier3 peering link to down.
    fn deep_underlay() -> (Underlay, usize) {
        let mut rng = SimRng::new(7);
        let spec = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 3,
            tier2_per_tier1: 4,
            tier3_per_tier2: 4,
            tier2_peering_prob: 0.4,
            tier3_peering_prob: 0.4,
        });
        let graph = spec.build(&mut rng);
        let li = graph
            .links
            .iter()
            .position(|l| {
                l.kind == crate::asgraph::LinkKind::Peering
                    && graph.nodes[l.a.idx()].tier == crate::asgraph::Tier::Tier3
                    && graph.nodes[l.b.idx()].tier == crate::asgraph::Tier::Tier3
            })
            .expect("fixture seed yields a tier3 peering link");
        let u = Underlay::build(
            graph,
            &PopulationSpec::leaf(300),
            UnderlayConfig::default(),
            &mut rng,
        );
        (u, li)
    }

    #[test]
    fn fault_epoch_on_leaf_peering_repairs_subset_of_sources() {
        // A tier3–tier3 peering link can only sit on its two endpoints'
        // shortest-path trees (any other source crossing it would form a
        // valley), so downing it must dirty exactly those two sources —
        // far under the 25% bound the incremental path is judged by.
        let (mut u, li) = deep_underlay();
        let n = u.n_ases();
        let mut state = crate::fault::FaultState::clear();
        let mut mask = vec![false; u.graph.links.len()];
        mask[li] = true;
        state.mask = Some(mask);
        let stats = u.apply_fault_state(&state);
        assert_eq!(stats.changed_links, 1);
        assert!(!stats.full_rebuild);
        assert_eq!(stats.sources_total, n);
        assert_eq!(stats.dirty_sources, 2, "leaf peering trees span 2 sources");
        assert!(stats.dirty_sources * 4 <= n);
        assert_eq!(u.last_repair_stats(), stats);
        assert_eq!(u.repair_totals(), (2, n as u64, 0));
        // Healing is incremental too and restores the pristine table.
        let heal = u.apply_fault_state(&crate::fault::FaultState::clear());
        assert_eq!(heal.changed_links, 1);
        assert!(!heal.full_rebuild);
        assert!(heal.dirty_sources >= 2 && heal.dirty_sources * 2 <= n);
        let pristine = Routing::compute_serial(&u.graph, u.config.routing, None);
        assert!(u.routing == pristine);
        assert_eq!(u.route_cache_invalidations(), 2);
    }

    #[test]
    fn delta_invalidation_refills_only_dirty_rows() {
        let (mut u, li) = deep_underlay();
        let n = u.n_ases();
        // Warm every entry via the eager initial build, then repair.
        let mut state = crate::fault::FaultState::clear();
        let mut mask = vec![false; u.graph.links.len()];
        mask[li] = true;
        state.mask = Some(mask);
        let stats = u.apply_fault_state(&state);
        assert!(!stats.full_rebuild);
        let dirty: Vec<usize> = (0..n).filter(|&s| u.route_cache.row_gen[s] != 0).collect();
        assert_eq!(dirty.len(), stats.dirty_sources);
        // Scanning the whole AS-pair space refills exactly the dirty rows.
        assert_eq!(u.route_cache_refills(), 0);
        for s in 0..n {
            for d in 0..n {
                u.route_cache.lookup(
                    AsId(s as u16),
                    AsId(d as u16),
                    &u.routing,
                    u.config.per_as_hop_us,
                    u.latency_factor,
                );
            }
        }
        assert_eq!(u.route_cache_refills(), (dirty.len() * n) as u64);
        // A second scan is fully warm.
        for s in 0..n {
            for d in 0..n {
                u.route_cache.lookup(
                    AsId(s as u16),
                    AsId(d as u16),
                    &u.routing,
                    u.config.per_as_hop_us,
                    u.latency_factor,
                );
            }
        }
        assert_eq!(u.route_cache_refills(), (dirty.len() * n) as u64);
    }

    #[test]
    fn latency_only_epoch_invalidates_all_rows_lazily() {
        let (mut u, _) = deep_underlay();
        let (a, b) = inter_as_pair(&u);
        let lat0 = u.latency_us(a, b).unwrap();
        let mut state = crate::fault::FaultState::clear();
        state.latency_factor = 2.0;
        let stats = u.apply_fault_state(&state);
        // No link changed: zero sources recomputed, but the factor is
        // folded into entries, so every row must be invalidated.
        assert_eq!((stats.changed_links, stats.dirty_sources), (0, 0));
        let refills0 = u.route_cache_refills();
        let lat1 = u.latency_us(a, b).unwrap();
        assert!(lat1 > lat0);
        assert!(u.route_cache_refills() > refills0, "must refill lazily");
    }

    #[test]
    fn export_repair_metrics_reports_running_totals() {
        let (mut u, li) = deep_underlay();
        let mut state = crate::fault::FaultState::clear();
        let mut mask = vec![false; u.graph.links.len()];
        mask[li] = true;
        state.mask = Some(mask);
        u.apply_fault_state(&state);
        u.apply_fault_state(&crate::fault::FaultState::clear());
        let mut metrics = Metrics::new();
        u.export_repair_metrics(&mut metrics);
        let (recomputed, total, fallbacks) = u.repair_totals();
        assert_eq!(
            metrics.counter("net.routing.sources_recomputed"),
            recomputed
        );
        assert_eq!(metrics.counter("net.routing.sources_total"), total);
        assert_eq!(
            metrics.counter("net.routing.repair_full_fallbacks"),
            fallbacks
        );
        assert!(
            recomputed < total / 4,
            "localized faults must stay incremental"
        );
    }

    #[test]
    fn direct_write_invalidation_drops_and_restores_repair_index() {
        // invalidate_route_cache after a direct routing write cannot trust
        // the repair bookkeeping; the next fault epoch takes one full
        // rebuild and is incremental again afterwards.
        let (mut u, li) = deep_underlay();
        u.routing = Routing::compute_with_mask(&u.graph, u.config.routing, None);
        u.invalidate_route_cache();
        let mut state = crate::fault::FaultState::clear();
        let mut mask = vec![false; u.graph.links.len()];
        mask[li] = true;
        state.mask = Some(mask.clone());
        let stats = u.apply_fault_state(&state);
        assert!(
            stats.full_rebuild,
            "first epoch after direct write rebuilds"
        );
        let heal = u.apply_fault_state(&crate::fault::FaultState::clear());
        assert!(!heal.full_rebuild, "index restored: next epoch incremental");
    }

    #[test]
    fn accounting_classifies_intra_vs_inter() {
        let mut u = underlay(1.0);
        // Find an intra-AS pair.
        let mut intra_pair = None;
        let mut inter_pair = None;
        for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let (a, b) = (HostId(a), HostId(b));
                if u.same_as(a, b) && intra_pair.is_none() {
                    intra_pair = Some((a, b));
                }
                if !u.same_as(a, b) && inter_pair.is_none() {
                    inter_pair = Some((a, b));
                }
            }
        }
        let (ia, ib) = intra_pair.unwrap();
        let (ea, eb) = inter_pair.unwrap();
        assert_eq!(
            u.account_transfer(SimTime::ZERO, ia, ib, 1_000),
            TrafficCategory::IntraAs
        );
        let cat = u.account_transfer(SimTime::ZERO, ea, eb, 1_000);
        assert_ne!(cat, TrafficCategory::IntraAs);
        assert!(u.traffic.locality_fraction() > 0.0);
        u.reset_traffic();
        assert_eq!(u.traffic.transfers(), 0);
    }
}
