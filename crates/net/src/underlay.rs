//! The underlay façade.
//!
//! [`Underlay`] bundles the AS graph, its routing tables and the host
//! population into the single object overlays query: host-to-host latency,
//! AS-hop distance, path lookup, transfer-time estimation and traffic
//! accounting. It is the "substrate on which the overlay resides".

use crate::asgraph::AsGraph;
use crate::geo::propagation_delay_us;
use crate::host::{Host, HostPopulation, PopulationSpec};
use crate::ids::HostId;
use crate::routing::{Routing, RoutingMode};
use crate::traffic::{TrafficAccounting, TrafficCategory};
use uap_sim::{SimRng, SimTime, TraceLevel, Tracer};

/// Tunables for the latency model.
#[derive(Clone, Copy, Debug)]
pub struct UnderlayConfig {
    /// Routing policy.
    pub routing: RoutingMode,
    /// Extra per-AS traversal delay (router queueing) in microseconds.
    pub per_as_hop_us: u64,
    /// Multiplier applied to the reverse direction of each ordered host
    /// pair (1.0 = symmetric). Models the asymmetric-path problem of §6.
    pub asymmetry: f64,
    /// Relative jitter amplitude on measured RTTs (0.0 = noiseless).
    pub jitter: f64,
    /// TCP window for throughput estimation: achievable rate is capped at
    /// `window / RTT`, which is what makes low-latency (local) sources
    /// download faster in practice.
    pub tcp_window_bytes: u64,
    /// Per-transit-link throughput discount modelling inter-domain
    /// congestion (§2.1: inter-AS traffic suffers "congestion and
    /// jitter"): effective bandwidth is divided by
    /// `1 + transit_congestion × (transit links on the path)`.
    pub transit_congestion: f64,
}

impl Default for UnderlayConfig {
    fn default() -> Self {
        UnderlayConfig {
            routing: RoutingMode::ValleyFree,
            per_as_hop_us: 300,
            asymmetry: 1.0,
            jitter: 0.0,
            tcp_window_bytes: 256 * 1024,
            transit_congestion: 0.5,
        }
    }
}

/// The assembled underlay: topology + routing + hosts.
pub struct Underlay {
    /// The AS graph.
    pub graph: AsGraph,
    /// All-pairs routing.
    pub routing: Routing,
    /// The attached hosts.
    pub hosts: HostPopulation,
    /// Configuration.
    pub config: UnderlayConfig,
    /// Traffic ledger for this run.
    pub traffic: TrafficAccounting,
}

impl Underlay {
    /// Assembles an underlay from a generated graph and a population spec.
    pub fn build(
        graph: AsGraph,
        pop: &PopulationSpec,
        config: UnderlayConfig,
        rng: &mut SimRng,
    ) -> Underlay {
        let routing = Routing::compute(&graph, config.routing);
        let hosts = HostPopulation::build(&graph, pop, rng);
        let traffic = TrafficAccounting::new(&graph);
        Underlay {
            graph,
            routing,
            hosts,
            config,
            traffic,
        }
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of ASes.
    pub fn n_ases(&self) -> usize {
        self.graph.len()
    }

    /// The host record.
    pub fn host(&self, h: HostId) -> &Host {
        self.hosts.host(h)
    }

    /// Whether two hosts attach through the same ISP.
    pub fn same_as(&self, a: HostId, b: HostId) -> bool {
        self.hosts.as_of(a) == self.hosts.as_of(b)
    }

    /// AS-hop distance between two hosts (0 if same AS).
    pub fn as_hops(&self, a: HostId, b: HostId) -> Option<u32> {
        self.routing
            .as_hops(self.hosts.as_of(a), self.hosts.as_of(b))
    }

    /// One-way latency from `a` to `b` in microseconds: both access links,
    /// the inter-AS path, per-AS-hop queueing, and intra-AS propagation
    /// between geographic positions.
    pub fn latency_us(&self, a: HostId, b: HostId) -> Option<u64> {
        if a == b {
            return Some(0);
        }
        let ha = self.hosts.host(a);
        let hb = self.hosts.host(b);
        let base = ha.access_latency_us + hb.access_latency_us;
        let (path_lat, hops) = if ha.asn == hb.asn {
            // Intra-AS: propagation across the ISP's metro network.
            (propagation_delay_us(ha.geo.distance_km(&hb.geo)), 0)
        } else {
            let lat = self.routing.latency_us(ha.asn, hb.asn)?;
            let hops = self.routing.as_hops(ha.asn, hb.asn)? as u64;
            (lat, hops)
        };
        Some(base + path_lat + hops * self.config.per_as_hop_us)
    }

    /// Directional latency including the asymmetry factor: the `a -> b`
    /// direction is the base latency, `b -> a` is scaled. Asymmetry is
    /// keyed on host-id order so it is consistent across calls.
    pub fn latency_directional_us(&self, from: HostId, to: HostId) -> Option<u64> {
        let base = self.latency_us(from, to)?;
        if (self.config.asymmetry - 1.0).abs() < f64::EPSILON {
            return Some(base);
        }
        // The "high" direction is from the larger id to the smaller.
        if from.0 > to.0 {
            Some((base as f64 * self.config.asymmetry) as u64)
        } else {
            Some(base)
        }
    }

    /// Round-trip time in microseconds (sum of both directions).
    pub fn rtt_us(&self, a: HostId, b: HostId) -> Option<u64> {
        Some(self.latency_directional_us(a, b)? + self.latency_directional_us(b, a)?)
    }

    /// An RTT *measurement*: the true RTT plus multiplicative jitter. This
    /// is what a ping observes; coordinate systems embed these noisy values.
    pub fn measured_rtt_us(&self, a: HostId, b: HostId, rng: &mut SimRng) -> Option<u64> {
        let rtt = self.rtt_us(a, b)?;
        if self.config.jitter <= 0.0 {
            return Some(rtt);
        }
        let f = 1.0 + rng.f64_range(0.0, self.config.jitter);
        Some((rtt as f64 * f) as u64)
    }

    /// Estimated time to transfer `bytes` from `a` to `b`: one RTT of
    /// handshake plus serialization at the bottleneck of `a`'s uplink,
    /// `b`'s downlink, and the TCP window/RTT throughput cap — the cap is
    /// what makes nearby (low-RTT) sources genuinely faster, not just
    /// cheaper for the ISP.
    pub fn transfer_time(&self, a: HostId, b: HostId, bytes: u64) -> Option<SimTime> {
        let rtt = self.rtt_us(a, b)?;
        let ha = self.hosts.host(a);
        let hb = self.hosts.host(b);
        let mut bottleneck_kbps = ha.up_kbps.min(hb.down_kbps).max(1) as u64;
        // window bytes per RTT → kbit/s.
        if let Some(tcp_cap_kbps) = self
            .config
            .tcp_window_bytes
            .saturating_mul(8)
            .saturating_mul(1_000)
            .checked_div(rtt)
        {
            bottleneck_kbps = bottleneck_kbps.min(tcp_cap_kbps.max(1));
        }
        // Inter-domain congestion discount per transit link crossed.
        if self.config.transit_congestion > 0.0 && ha.asn != hb.asn {
            if let Some(links) = self.routing.path_links(ha.asn, hb.asn) {
                let transit_links = links
                    .iter()
                    .filter(|&&li| {
                        self.graph.links[li as usize].kind == crate::asgraph::LinkKind::Transit
                    })
                    .count() as f64;
                let factor = 1.0 + self.config.transit_congestion * transit_links;
                bottleneck_kbps = ((bottleneck_kbps as f64 / factor) as u64).max(1);
            }
        }
        let ser_us = bytes.saturating_mul(8).saturating_mul(1_000) / bottleneck_kbps;
        Some(SimTime::from_micros(rtt + ser_us))
    }

    /// Records a transfer in the traffic ledger and returns its category.
    pub fn account_transfer(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
    ) -> TrafficCategory {
        let src_as = self.hosts.as_of(from);
        let dst_as = self.hosts.as_of(to);
        if src_as == dst_as {
            return self.traffic.record(&self.graph, now, src_as, &[], bytes);
        }
        match self.routing.path_links(src_as, dst_as) {
            Some(path) => self.traffic.record(&self.graph, now, src_as, &path, bytes),
            // Unroutable pair (disconnected graph, or valley-free policy
            // with no compliant path): the transfer cannot happen, so no
            // link carries the bytes — but it must NOT be mistaken for
            // local traffic.
            None => TrafficCategory::InterAsTransit,
        }
    }

    /// Like [`Underlay::account_transfer`], but also emits a `net`/`transfer`
    /// trace event (Debug level) recording the routing decision: endpoint
    /// hosts and ASes, byte count, traffic category, and the number of
    /// links / transit links the valley-free path crossed. The extra path
    /// inspection only runs when the `net` component is enabled.
    pub fn account_transfer_traced(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
        tracer: &mut Tracer,
    ) -> TrafficCategory {
        let cat = self.account_transfer(now, from, to, bytes);
        if tracer.is_enabled("net", TraceLevel::Debug) {
            let src_as = self.hosts.as_of(from);
            let dst_as = self.hosts.as_of(to);
            let (links, transit) = if src_as == dst_as {
                (0, 0)
            } else {
                match self.routing.path_links(src_as, dst_as) {
                    Some(path) => {
                        let transit = path
                            .iter()
                            .filter(|&&li| {
                                self.graph.links[li as usize].kind
                                    == crate::asgraph::LinkKind::Transit
                            })
                            .count();
                        (path.len(), transit)
                    }
                    None => (0, 0),
                }
            };
            tracer.emit(now, "net", TraceLevel::Debug, "transfer", |f| {
                f.u64("from", from.0 as u64)
                    .u64("to", to.0 as u64)
                    .u64("src_as", src_as.idx() as u64)
                    .u64("dst_as", dst_as.idx() as u64)
                    .u64("bytes", bytes)
                    .str("cat", cat.name())
                    .u64("links", links as u64)
                    .u64("transit", transit as u64);
            });
        }
        cat
    }

    /// Emits one `net`/`link.total` trace event (Debug level) per link
    /// that carried traffic, capturing the per-link byte distribution at
    /// the moment of the call (typically end of run).
    pub fn trace_link_totals(&self, now: SimTime, tracer: &mut Tracer) {
        if !tracer.is_enabled("net", TraceLevel::Debug) {
            return;
        }
        for (li, &bytes) in self.traffic.per_link_bytes().iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let link = &self.graph.links[li];
            tracer.emit(now, "net", TraceLevel::Debug, "link.total", |f| {
                f.u64("link", li as u64)
                    .str(
                        "kind",
                        match link.kind {
                            crate::asgraph::LinkKind::Peering => "peering",
                            crate::asgraph::LinkKind::Transit => "transit",
                        },
                    )
                    .u64("a", link.a.idx() as u64)
                    .u64("b", link.b.idx() as u64)
                    .u64("bytes", bytes);
            });
        }
    }

    /// Geographic distance between two hosts in kilometres.
    pub fn geo_distance_km(&self, a: HostId, b: HostId) -> f64 {
        self.hosts.host(a).geo.distance_km(&self.hosts.host(b).geo)
    }

    /// Resets the traffic ledger (e.g. between experiment phases).
    pub fn reset_traffic(&mut self) {
        self.traffic = TrafficAccounting::new(&self.graph);
    }

    /// Moves a host to another AS (mobility, §6 challenge). Cached
    /// underlay information held by services built earlier becomes stale —
    /// which is precisely what experiment E11c measures.
    pub fn migrate_host(&mut self, h: HostId, new_as: crate::ids::AsId, rng: &mut SimRng) {
        self.hosts.migrate(&self.graph, h, new_as, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TopologyKind, TopologySpec};

    fn underlay(asym: f64) -> Underlay {
        let mut rng = SimRng::new(42);
        let spec = TopologySpec::new(TopologyKind::Hierarchical {
            tier1: 2,
            tier2_per_tier1: 2,
            tier3_per_tier2: 3,
            tier2_peering_prob: 0.3,
            tier3_peering_prob: 0.3,
        });
        let graph = spec.build(&mut rng);
        Underlay::build(
            graph,
            &PopulationSpec::leaf(200),
            UnderlayConfig {
                asymmetry: asym,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn self_latency_is_zero() {
        let u = underlay(1.0);
        assert_eq!(u.latency_us(HostId(0), HostId(0)), Some(0));
    }

    #[test]
    fn latency_is_symmetric_by_default() {
        let u = underlay(1.0);
        for i in 0..10u32 {
            let (a, b) = (HostId(i), HostId(i + 50));
            assert_eq!(u.latency_us(a, b), u.latency_us(b, a));
            assert_eq!(u.rtt_us(a, b).unwrap(), 2 * u.latency_us(a, b).unwrap());
        }
    }

    #[test]
    fn same_as_pairs_are_much_closer() {
        let u = underlay(1.0);
        // Find an intra-AS pair and an inter-AS pair with the same access
        // profiles would be ideal; statistically intra < inter on average.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..50u32 {
            for b in (a + 1)..50u32 {
                let (a, b) = (HostId(a), HostId(b));
                let l = u.latency_us(a, b).unwrap() as f64;
                if u.same_as(a, b) {
                    intra.push(l);
                } else {
                    inter.push(l);
                }
            }
        }
        assert!(!intra.is_empty() && !inter.is_empty());
        let mi = intra.iter().sum::<f64>() / intra.len() as f64;
        let me = inter.iter().sum::<f64>() / inter.len() as f64;
        assert!(mi < me, "intra {mi} not < inter {me}");
    }

    #[test]
    fn asymmetry_skews_directions() {
        let u = underlay(1.5);
        let (a, b) = (HostId(3), HostId(120));
        let ab = u.latency_directional_us(a, b).unwrap();
        let ba = u.latency_directional_us(b, a).unwrap();
        assert!(ba > ab);
        assert!((ba as f64 / ab as f64 - 1.5).abs() < 0.01);
    }

    #[test]
    fn measured_rtt_jitter_bounds() {
        let mut rng = SimRng::new(9);
        let mut u = underlay(1.0);
        u.config.jitter = 0.2;
        let (a, b) = (HostId(1), HostId(2));
        let truth = u.rtt_us(a, b).unwrap();
        for _ in 0..100 {
            let m = u.measured_rtt_us(a, b, &mut rng).unwrap();
            assert!(m >= truth && m as f64 <= truth as f64 * 1.2 + 1.0);
        }
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let u = underlay(1.0);
        let (a, b) = (HostId(0), HostId(1));
        let t1 = u.transfer_time(a, b, 100_000).unwrap();
        let t2 = u.transfer_time(a, b, 1_000_000).unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn unroutable_transfer_is_not_counted_as_local() {
        // Peering-only ring under valley-free policy: hosts more than one
        // peering hop apart are mutually unreachable. Their (impossible)
        // transfer must not inflate the intra-AS locality figure.
        let mut rng = SimRng::new(77);
        let graph =
            crate::gen::TopologySpec::new(crate::gen::TopologyKind::Ring { n: 5 }).build(&mut rng);
        let mut u = Underlay::build(
            graph,
            &crate::host::PopulationSpec::uniform(10),
            UnderlayConfig {
                routing: crate::routing::RoutingMode::ValleyFree,
                ..Default::default()
            },
            &mut rng,
        );
        let far = u
            .hosts
            .ids()
            .find(|&h| u.as_hops(HostId(0), h).is_none())
            .expect("ring has unreachable pairs under valley-free policy");
        let cat = u.account_transfer(SimTime::ZERO, HostId(0), far, 1_000);
        assert_eq!(cat, TrafficCategory::InterAsTransit);
        let (intra, _, _) = u.traffic.totals();
        assert_eq!(intra, 0);
    }

    #[test]
    fn traced_transfer_records_routing_decision() {
        let mut u = underlay(1.0);
        let mut tracer = uap_sim::Tracer::buffered(uap_sim::TraceLevel::Debug);
        // Find an inter-AS pair.
        let (a, b) = (0..200u32)
            .flat_map(|a| ((a + 1)..200u32).map(move |b| (HostId(a), HostId(b))))
            .find(|&(a, b)| !u.same_as(a, b))
            .unwrap();
        let cat = u.account_transfer_traced(SimTime::ZERO, a, b, 5_000, &mut tracer);
        u.trace_link_totals(SimTime::ZERO, &mut tracer);
        let events = tracer.events();
        let transfer = events.iter().find(|e| e.kind == "transfer").unwrap();
        assert_eq!(transfer.component, "net");
        assert!(transfer
            .fields
            .iter()
            .any(|(k, v)| k == "cat" && *v == uap_sim::trace::Value::Str(cat.name().into())));
        assert!(
            events.iter().any(|e| e.kind == "link.total"),
            "an inter-AS transfer must leave per-link totals"
        );
        // A disabled tracer records nothing and costs no path inspection.
        let mut off = uap_sim::Tracer::disabled();
        u.account_transfer_traced(SimTime::ZERO, a, b, 5_000, &mut off);
        assert_eq!(off.len(), 0);
    }

    #[test]
    fn accounting_classifies_intra_vs_inter() {
        let mut u = underlay(1.0);
        // Find an intra-AS pair.
        let mut intra_pair = None;
        let mut inter_pair = None;
        for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let (a, b) = (HostId(a), HostId(b));
                if u.same_as(a, b) && intra_pair.is_none() {
                    intra_pair = Some((a, b));
                }
                if !u.same_as(a, b) && inter_pair.is_none() {
                    inter_pair = Some((a, b));
                }
            }
        }
        let (ia, ib) = intra_pair.unwrap();
        let (ea, eb) = inter_pair.unwrap();
        assert_eq!(
            u.account_transfer(SimTime::ZERO, ia, ib, 1_000),
            TrafficCategory::IntraAs
        );
        let cat = u.account_transfer(SimTime::ZERO, ea, eb, 1_000);
        assert_ne!(cat, TrafficCategory::IntraAs);
        assert!(u.traffic.locality_fraction() > 0.0);
        u.reset_traffic();
        assert_eq!(u.traffic.transfers(), 0);
    }
}
